"""Shared plumbing for the standalone performance benchmarks.

The ``bench_perf_*.py`` scripts are plain executables (not pytest
modules): they time the vectorized kernels against the seed reference
implementations in :mod:`repro.ml._reference` and merge their results
into the machine-readable ``BENCH_perf.json`` at the repository root.
``check_perf_regression.py`` replays the quick variants in CI and fails
on large regressions against the committed baseline.
"""

from __future__ import annotations

import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")

#: Default location of the committed benchmark baseline.
BENCH_JSON = os.path.join(_REPO_ROOT, "BENCH_perf.json")


def ensure_src_on_path() -> None:
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)


def timed(fn, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time in seconds plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def merge_section(section: str, payload: dict, path: str = BENCH_JSON) -> dict:
    """Read-modify-write one top-level section of the benchmark JSON."""
    doc: dict = {"schema": 1}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc[section] = payload
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def round_floats(obj, digits: int = 6):
    """Round every float in a nested structure (stable committed JSON)."""
    if isinstance(obj, float):
        return round(obj, digits)
    if isinstance(obj, dict):
        return {k: round_floats(v, digits) for k, v in obj.items()}
    if isinstance(obj, list):
        return [round_floats(v, digits) for v in obj]
    return obj
