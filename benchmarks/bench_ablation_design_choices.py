"""Ablations of design choices beyond the paper's figures.

* balancing on/off — the paper argues imbalance wrecks the minority class;
* methodology embedding on/off — how much does filing text add;
* GBDT vs a single depth-limited tree — does boosting matter.
"""

import numpy as np
from conftest import once

from repro.core import NBMIntegrityModel
from repro.core import build_dataset
from repro.dataset import state_holdout_split
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.metrics import f1_score, roc_auc_score
from repro.utils import format_table


def test_ablation_balancing(benchmark, world, builder, record):
    def run():
        rows = []
        for name, balance in (("balanced (paper)", True), ("unbalanced", False)):
            ds = build_dataset(world, balance=balance)
            split = state_holdout_split(ds)
            model = NBMIntegrityModel(builder, params=world.config.model).fit(
                ds, split.train_idx
            )
            result = model.evaluate(ds, split)
            rows.append([name, len(ds), ds.class_balance(), result.auc, result.f1])
        return rows

    rows = once(benchmark, run)
    record(
        "ablation_balancing",
        format_table(
            ["dataset", "n", "unserved frac", "AUC", "F1"],
            rows,
            floatfmt=".3f",
            title="Ablation — per-provider/state balancing (paper §4.3)",
        ),
    )
    balanced_f1 = rows[0][4]
    unbalanced_f1 = rows[1][4]
    assert balanced_f1 >= unbalanced_f1 - 0.05


def test_ablation_embedding_and_single_tree(benchmark, world, dataset, builder, record):
    split = state_holdout_split(dataset)
    train = split.train(dataset)
    test = split.test(dataset)
    X_train, y_train = builder.vectorize(train), builder.labels(train)
    X_test, y_test = builder.vectorize(test), builder.labels(test)
    n_embed = builder.embedder.dim

    def run():
        rows = []
        for name, Xtr, Xte, params in (
            ("full model", X_train, X_test, world.config.model),
            (
                "no methodology embedding",
                X_train[:, :-n_embed],
                X_test[:, :-n_embed],
                world.config.model,
            ),
            (
                "single tree (depth 6)",
                X_train,
                X_test,
                GBDTParams(n_estimators=1, learning_rate=1.0, max_depth=6),
            ),
        ):
            clf = GradientBoostedClassifier(params).fit(Xtr, y_train)
            scores = clf.predict_proba(Xte)
            rows.append(
                [name, roc_auc_score(y_test, scores), f1_score(y_test, (scores >= 0.5).astype(int))]
            )
        return rows

    rows = once(benchmark, run)
    record(
        "ablation_embedding_and_single_tree",
        format_table(
            ["variant", "AUC", "F1"],
            rows,
            floatfmt=".3f",
            title="Ablation — methodology embedding and boosting depth",
        ),
    )
    full_auc = rows[0][1]
    single_tree_auc = rows[2][1]
    assert full_auc >= single_tree_auc - 0.01
