"""Section 6.1: crosswalk groupings vs as2org+ (mean Jaccard ~0.9)."""

from conftest import once

from repro.asn import build_as2org, compare_groupings
from repro.utils import format_kv


def test_as2org_agreement(benchmark, world, record):
    comparison = once(
        benchmark,
        lambda: compare_groupings(world.crosswalk, build_as2org(world.registry)),
    )
    record(
        "as2org_agreement",
        "Section 6.1 — agreement with as2org+-style groupings\n"
        + format_kv(
            [
                ("mean Jaccard (paper ~0.9)", comparison.mean_jaccard),
                ("exact groupings", comparison.exact_matches),
                ("total groupings", comparison.total_groupings),
                ("exact rate (paper 1243/1562 = 0.80)", comparison.exact_match_rate),
            ]
        ),
    )
    assert comparison.mean_jaccard > 0.75
    assert comparison.exact_match_rate > 0.5
