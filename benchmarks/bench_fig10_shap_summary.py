"""Figure 10: SHAP summary — which features drive suspicion verdicts."""

import numpy as np
from conftest import once

from repro.ml.shap import summary_ranking
from repro.utils import format_table


def test_fig10_shap_summary(benchmark, dataset, model_random, record):
    model, split = model_random
    sample = split.test(dataset)[:150]

    ranking = once(
        benchmark, lambda: summary_ranking(model.explain(sample), top_k=12)
    )
    rows = [
        [name, mean_abs, "suspicious" if signed > 0 else "valid"]
        for name, mean_abs, signed in ranking
    ]
    record(
        "fig10_shap_summary",
        format_table(
            ["Feature", "mean |SHAP|", "mean direction"],
            rows,
            floatfmt=".3f",
            title=(
                "Figure 10 — SHAP summary (top features by mean |SHAP|)\n"
                "(paper: Ookla Dev/Loc and MLab Test Counts dominate; high\n"
                " values of both push predictions toward the valid class)"
            ),
        ),
    )
    top_names = {name for name, _, _ in ranking[:4]}
    assert "Ookla (Dev/Loc)" in top_names
    assert "MLab Test Counts" in top_names
