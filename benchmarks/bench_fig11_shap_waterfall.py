"""Figure 11: SHAP waterfall for one randomly selected prediction."""

import numpy as np
from conftest import once

from repro.ml.shap import waterfall
from repro.utils import format_table


def test_fig11_shap_waterfall(benchmark, dataset, model_random, record):
    model, split = model_random
    test = split.test(dataset)
    # The paper walks through a single positive (suspicious) prediction.
    scores = model.predict_proba(test[:200])
    row = int(np.argmax(scores))
    sample = test[: row + 1]

    def build():
        expl = model.explain([sample[row]])
        return expl, waterfall(expl, 0, top_k=10)

    expl, rows = once(benchmark, build)
    margin = expl.margin(0)
    record(
        "fig11_shap_waterfall",
        format_table(
            ["Feature", "contribution (margin)"],
            rows,
            floatfmt="+.3f",
            title=(
                "Figure 11 — SHAP waterfall for one prediction\n"
                f"E[f(x)] = {expl.expected_value:+.3f}; f(x) = {margin:+.3f} "
                f"(P(suspicious) = {1 / (1 + np.exp(-margin)):.3f})"
            ),
        ),
    )
    total = expl.expected_value + sum(v for _, v in rows)
    assert abs(total - margin) < 1e-6
