"""Figure 1: challenge volume per major NBM release (~2 orders of magnitude drop)."""

from collections import Counter

from conftest import once

from repro.utils import format_table


def test_fig1_challenges_over_time(benchmark, world, record):
    def build():
        by_release = Counter(c.major_release for c in world.challenges)
        resolved = Counter(
            c.resolved_release for c in world.challenges if c.major_release == 0
        )
        return by_release, resolved

    by_release, resolved = once(benchmark, build)
    rows = [
        ["initial release (2022-06-30 filing)", by_release.get(0, 0)],
        ["next major release", by_release.get(1, 0)],
    ]
    ratio = by_release.get(0, 0) / max(1, by_release.get(1, 0))
    timeline_rows = [[f"minor release {t}", n] for t, n in sorted(resolved.items())]
    record(
        "fig1_challenges_over_time",
        format_table(["NBM release", "challenges"], rows,
                     title="Figure 1 — challenges per major release "
                           f"(measured ratio {ratio:.0f}x; paper ~100x)")
        + "\n\nResolution timing across bi-weekly minor releases:\n"
        + format_table(["resolved at", "count"], timeline_rows),
    )
    assert ratio > 20  # same order-of-magnitude collapse the paper shows
