"""Figure 2: state-by-state challenge volume (top-10 states ~90%, NE highest)."""

from collections import Counter

from conftest import once

from repro.utils import format_table


def test_fig2_state_challenges(benchmark, world, record):
    counts = once(
        benchmark,
        lambda: Counter(
            c.state for c in world.challenges if c.major_release == 0
        ),
    )
    total = sum(counts.values())
    rows = [
        [state, n, 100.0 * n / total]
        for state, n in counts.most_common(15)
    ]
    top10 = sum(n for _, n in counts.most_common(10)) / total
    record(
        "fig2_state_challenges",
        format_table(
            ["State", "challenges", "% of total"],
            rows,
            floatfmt=".1f",
            title=(
                "Figure 2 — challenges by state (top 15 shown)\n"
                f"top-10 share: measured {100 * top10:.0f}%  (paper ~90%)"
            ),
        ),
    )
    assert top10 > 0.75
