"""Figure 3: mean Jaccard index matrix for provider-ASN mappings by method."""

import numpy as np
from conftest import once

from repro.utils import format_table


def test_fig3_jaccard_matrix(benchmark, world, record):
    methods, matrix = once(benchmark, world.crosswalk.jaccard_matrix)
    labels = [m.value for m in methods]
    rows = []
    for i, label in enumerate(labels):
        rows.append([label] + [
            "-" if np.isnan(matrix[i, j]) else f"{matrix[i, j]:.2f}"
            for j in range(len(labels))
        ])
    record(
        "fig3_jaccard_matrix",
        format_table(
            ["method"] + [l[:12] for l in labels],
            rows,
            title=(
                "Figure 3 — mean Jaccard of per-provider ASN sets across methods\n"
                "(paper: high off-diagonal agreement, diagonal = 1)"
            ),
        ),
    )
    n = len(labels)
    off_diag = [
        matrix[i, j]
        for i in range(n)
        for j in range(n)
        if i != j and not np.isnan(matrix[i, j])
    ]
    assert off_diag and float(np.mean(off_diag)) > 0.6
