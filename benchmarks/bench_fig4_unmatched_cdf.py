"""Figure 4: CDF of locations claimed — unmatched vs all providers."""

import numpy as np
from conftest import once

from repro.utils import format_table


def test_fig4_unmatched_cdf(benchmark, world, record):
    def build():
        counts = world.table.provider_location_counts()
        matched = world.crosswalk.matched_providers
        unmatched = [
            counts.get(p.provider_id, 0)
            for p in world.universe.terrestrial
            if p.provider_id not in matched
        ]
        everyone = [
            counts.get(p.provider_id, 0) for p in world.universe.terrestrial
        ]
        return np.array(unmatched), np.array(everyone)

    unmatched, everyone = once(benchmark, build)
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    rows = [
        [f"p{int(q * 100)}", float(np.quantile(unmatched, q)), float(np.quantile(everyone, q))]
        for q in quantiles
    ]
    ratio = float(np.median(everyone)) / max(1.0, float(np.median(unmatched)))
    record(
        "fig4_unmatched_cdf",
        format_table(
            ["quantile", "unmatched providers", "all providers"],
            rows,
            floatfmt=".0f",
            title=(
                "Figure 4 — locations claimed in the NBM (quantiles of CDF)\n"
                f"median ratio all/unmatched: measured {ratio:.1f}x (paper ~3x)"
            ),
        ),
    )
    assert np.median(unmatched) <= np.median(everyone)
