"""Figure 5a: ROC on the random observation holdout (paper AUC 0.99, F1 0.93)."""

import numpy as np
from conftest import once

from repro.utils import format_series


def test_fig5a_roc_random_holdout(benchmark, dataset, model_random, record):
    model, split = model_random
    result = once(benchmark, lambda: model.evaluate(dataset, split))
    # Sample the ROC curve at fixed FPR grid points for the series output.
    grid = np.linspace(0.0, 1.0, 11)
    tpr_at = np.interp(grid, result.fpr, result.tpr)
    record(
        "fig5a_roc_random_holdout",
        f"Figure 5a — random observation holdout (n={result.n_test})\n"
        f"AUC: measured {result.auc:.3f}   paper 0.99\n"
        f"F1 : measured {result.f1:.3f}   paper 0.93\n\n"
        + format_series(np.round(grid, 2), tpr_at, "FPR", "TPR"),
    )
    assert result.auc > 0.9
