"""Figure 5b: ROC on the FCC-adjudicated holdout (paper AUC 0.92, F1 ~0.84)."""

import numpy as np
from conftest import once

from repro.utils import format_series


def test_fig5b_roc_fcc_adjudicated(benchmark, dataset, model_fcc, record):
    model, split = model_fcc
    result = once(benchmark, lambda: model.evaluate(dataset, split))
    grid = np.linspace(0.0, 1.0, 11)
    tpr_at = np.interp(grid, result.fpr, result.tpr)
    record(
        "fig5b_roc_fcc_adjudicated",
        f"Figure 5b — FCC-adjudicated holdout (n={result.n_test})\n"
        f"AUC: measured {result.auc:.3f}   paper 0.92\n"
        f"F1 : measured {result.f1:.3f}   paper ~0.84\n"
        f"precision (valid class): measured {result.report.precision_neg:.2f}  paper 0.78\n\n"
        + format_series(np.round(grid, 2), tpr_at, "FPR", "TPR"),
    )
    assert result.auc > 0.6
