"""Figure 5c: ROC on the stratified state holdout (paper AUC 0.98)."""

import numpy as np
from conftest import once

from repro.dataset import PAPER_HOLDOUT_STATES
from repro.utils import format_series


def test_fig5c_roc_state_holdout(benchmark, dataset, model_state, record):
    model, split = model_state
    result = once(benchmark, lambda: model.evaluate(dataset, split))
    grid = np.linspace(0.0, 1.0, 11)
    tpr_at = np.interp(grid, result.fpr, result.tpr)
    record(
        "fig5c_roc_state_holdout",
        f"Figure 5c — held-out states {PAPER_HOLDOUT_STATES} (n={result.n_test})\n"
        f"AUC: measured {result.auc:.3f}   paper 0.98\n"
        f"F1 : measured {result.f1:.3f}\n\n"
        + format_series(np.round(grid, 2), tpr_at, "FPR", "TPR"),
    )
    assert result.auc > 0.85
