"""Figure 6: classification outcome mix for the eight major ISPs."""

from conftest import once

from repro.core import provider_reports
from repro.utils import format_table


def test_fig6_major_isps(benchmark, world, dataset, model_state, record):
    model, split = model_state
    majors = {p.provider_id: p.brand_name for p in world.universe.majors}
    reports = once(
        benchmark,
        lambda: provider_reports(model, dataset, split, majors, min_slice=5),
    )
    rows = [
        [
            r.slice_name,
            r.n,
            r.class_pct["TN"],
            r.class_pct["TP"],
            r.class_pct["FN"],
            r.class_pct["FP"],
            100.0 * r.accuracy,
        ]
        for r in reports
    ]
    record(
        "fig6_major_isps",
        format_table(
            ["ISP", "n", "TN%", "TP%", "FN%", "FP%", "acc%"],
            rows,
            floatfmt=".1f",
            title=(
                "Figure 6 — major-ISP outcome mix in held-out states\n"
                "(paper: high true rates across the majors; ~7% FP for Comcast)"
            ),
        ),
    )
    assert reports
    # The paper's qualitative claim: true cases dominate for majors.
    mean_true = sum(r.class_pct["TN"] + r.class_pct["TP"] for r in reports) / len(reports)
    assert mean_true > 60.0
