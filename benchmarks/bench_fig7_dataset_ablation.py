"""Figure 7: held-out-state AUC as label sources are added incrementally."""

from conftest import once

from repro.core import NBMIntegrityModel, build_dataset
from repro.dataset import state_holdout_split
from repro.ml.metrics import roc_auc_score
from repro.utils import format_table


def test_fig7_dataset_ablation(benchmark, world, builder, record):
    # A common evaluation pool: the full dataset's held-out-state slice.
    full = build_dataset(world)
    split_full = state_holdout_split(full)
    eval_obs = split_full.test(full)
    y_eval = builder.labels(eval_obs)

    configs = [
        ("Challenges only", dict(use_changes=False, use_synthetic=False)),
        ("Challenges + Changes", dict(use_synthetic=False)),
        ("Challenges + Synthetic", dict(use_changes=False)),
        ("Challenges + Changes + Synthetic", dict()),
    ]

    def run():
        results = []
        holdout_states = {obs.state for obs in eval_obs}
        for name, kwargs in configs:
            ds = build_dataset(world, **kwargs)
            train = [obs for obs in ds if obs.state not in holdout_states]
            if not train or len({obs.unserved for obs in train}) < 2:
                results.append((name, float("nan"), 0))
                continue
            model = NBMIntegrityModel(builder, params=world.config.model)
            model._clf = None
            import numpy as np

            X = builder.vectorize(train)
            yt = builder.labels(train)
            from repro.ml.gbdt import GradientBoostedClassifier

            model._clf = GradientBoostedClassifier(world.config.model).fit(X, yt)
            scores = model.predict_proba(eval_obs)
            results.append((name, roc_auc_score(y_eval, scores), len(train)))
        return results

    results = once(benchmark, run)
    paper = {"Challenges only": "lowest", "Challenges + Changes": "mid",
             "Challenges + Synthetic": "high", "Challenges + Changes + Synthetic": "~1.0 (best)"}
    rows = [[name, auc, n, paper[name]] for name, auc, n in results]
    record(
        "fig7_dataset_ablation",
        format_table(
            ["Label sources", "holdout-state AUC", "train size", "paper"],
            rows,
            floatfmt=".3f",
            title="Figure 7 — dataset ablation on held-out states",
        ),
    )
    aucs = {name: auc for name, auc, _ in results}
    assert aucs["Challenges + Changes + Synthetic"] >= aucs["Challenges only"] - 0.02
