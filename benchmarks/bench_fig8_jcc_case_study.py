"""Figure 8: Jefferson County Cable — the fabricated west flagged suspicious."""

from conftest import SEED, once

from repro.core import run_jcc_case_study, tiny


def test_fig8_jcc_case_study(benchmark, record):
    result = once(benchmark, lambda: run_jcc_case_study(tiny(seed=SEED)))
    record(
        "fig8_jcc_case_study",
        "Figure 8 — Jefferson County Cable case study\n"
        f"held-out states: {result.holdout_states}\n"
        f"fabricated-region detection rate: {result.detection_rate:.2f} "
        "(paper: model identifies the red western region)\n"
        f"genuine-area false-alarm rate:   {result.false_alarm_rate:.2f}\n"
        f"fabricated-vs-genuine separation AUC: {result.separation_auc:.3f}\n\n"
        + result.render_map(),
    )
    assert result.separation_auc > 0.85
    assert result.detection_rate > result.false_alarm_rate
