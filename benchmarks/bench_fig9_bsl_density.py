"""Figure 9: distribution of BSLs per resolution-8 hex cell (median 4)."""

import numpy as np
from conftest import once

from repro.utils import format_table


def test_fig9_bsl_density(benchmark, world, record):
    dist = once(benchmark, world.fabric.bsls_per_cell_distribution)
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    rows = [[f"p{int(q * 100)}", float(np.quantile(dist, q))] for q in quantiles]
    median = float(np.median(dist))
    record(
        "fig9_bsl_density",
        format_table(
            ["quantile", "BSLs per hex"],
            rows,
            floatfmt=".0f",
            title=(
                "Figure 9 — BSLs per occupied res-8 hex cell\n"
                f"median: measured {median:.0f}  (paper 4)"
            ),
        ),
    )
    assert 2 <= median <= 6
