"""Bayesian-optimization tuning benchmark: shared vs. per-trial binning.

Every GBDT trial used to re-fit a :class:`~repro.ml.tree.HistogramBinner`
on the unchanged training matrix and re-bin it (plus the validation
matrix, implicitly, through float-path scoring).  The shared path bins
once up front and hands ``(binner, binned train, binned val)`` to every
trial through ``maximize(..., resources=...)``, exactly as
``NBMIntegrityModel.tune`` does.

The workload is a *screening sweep* — small forests (the regime of
early BO exploration and successive-halving rungs), where the per-trial
binning constant is a large fraction of trial cost and shared binning
shows its full effect.  Deep-forest tuning saves the same absolute
seconds per trial; the ratio is smaller because tree growth dominates.

Both loops run the identical trial sequence (the shared path is
bitwise-equivalent per trial, so the optimizer asks the same points);
the benchmark asserts the observed objective values and best parameters
match exactly, then records the wall-time ratio in ``BENCH_perf.json``.

Run standalone::

    python benchmarks/bench_perf_bayesopt.py           # both sizes
    python benchmarks/bench_perf_bayesopt.py --quick   # small size only
"""

from __future__ import annotations

import argparse
import time

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.ml.bayesopt import ParamSpec, SearchSpace, maximize  # noqa: E402
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier  # noqa: E402
from repro.ml.metrics import roc_auc_score  # noqa: E402
from repro.ml.tree import HistogramBinner  # noqa: E402

#: (name, train rows, val rows, features, BO trials).
SIZES = [
    ("quick", 4_000, 1_000, 64, 5),
    ("default", 16_000, 4_000, 128, 8),
]

MAX_BINS = 64

#: Trials stop early on validation log-loss, as the paper's tuning does.
EARLY_STOPPING_ROUNDS = 4


def _make_problem(n: int, d: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[rng.random((n, d)) < 0.1] = np.nan
    logit = np.nan_to_num(X[:, 0]) - 0.5 * np.nan_to_num(X[:, 1])
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(float)
    return X, y


def _space() -> SearchSpace:
    return SearchSpace(
        {
            "learning_rate": ParamSpec(0.1, 0.4, log=True),
            "max_depth": ParamSpec(3, 4, integer=True),
            "n_estimators": ParamSpec(4, 10, integer=True),
            "min_child_weight": ParamSpec(1.0, 10.0, log=True),
            "subsample": ParamSpec(0.6, 1.0),
        }
    )


def _trial_params(params: dict) -> GBDTParams:
    return GBDTParams(
        n_estimators=int(params["n_estimators"]),
        learning_rate=float(params["learning_rate"]),
        max_depth=int(params["max_depth"]),
        min_child_weight=float(params["min_child_weight"]),
        subsample=float(params["subsample"]),
        max_bins=MAX_BINS,
        random_state=0,
    )


def run(quick: bool = False) -> list[dict]:
    results = []
    for name, n_train, n_val, d, n_iter in SIZES[:1] if quick else SIZES:
        X_train, y_train = _make_problem(n_train, d, seed=0)
        X_val, y_val = _make_problem(n_val, d, seed=1)

        def objective_unshared(params: dict) -> float:
            clf = GradientBoostedClassifier(_trial_params(params)).fit(
                X_train,
                y_train,
                eval_set=(X_val, y_val),
                early_stopping_rounds=EARLY_STOPPING_ROUNDS,
            )
            return roc_auc_score(y_val, clf.predict_proba(X_val))

        def objective_shared(params: dict, resources) -> float:
            binner, Xb_train, Xb_val = resources
            clf = GradientBoostedClassifier(_trial_params(params)).fit(
                Xb_train,
                y_train,
                eval_set=(Xb_val, y_val),
                early_stopping_rounds=EARLY_STOPPING_ROUNDS,
                binner=binner,
            )
            return roc_auc_score(y_val, clf.predict_proba(Xb_val, binned=True))

        start = time.perf_counter()
        best_u, value_u, opt_u = maximize(
            objective_unshared, _space(), n_iter=n_iter, seed=0
        )
        unshared_s = time.perf_counter() - start

        # Shared wall time includes the one-time binner fit + transforms.
        start = time.perf_counter()
        binner = HistogramBinner(max_bins=MAX_BINS).fit(X_train)
        shared = (binner, binner.transform(X_train), binner.transform(X_val))
        best_s, value_s, opt_s = maximize(
            objective_shared, _space(), n_iter=n_iter, seed=0, resources=shared
        )
        shared_s = time.perf_counter() - start

        if opt_u._y != opt_s._y or best_u != best_s or value_u != value_s:
            raise AssertionError(
                f"{name}: shared-binning tuning diverged from the unshared loop"
            )
        row = {
            "size": name,
            "n_train": n_train,
            "n_val": n_val,
            "n_features": d,
            "n_trials": n_iter,
            "max_bins": MAX_BINS,
            "tune_seconds_unshared": unshared_s,
            "tune_seconds_shared": shared_s,
            "tuning_speedup": unshared_s / shared_s,
        }
        results.append(row)
        print(
            f"{name:8s} n={n_train:6d} d={d:4d} trials={n_iter:2d}  "
            f"tune {unshared_s:7.3f}s -> {shared_s:7.3f}s "
            f"({row['tuning_speedup']:.2f}x)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the small size"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "bayesopt", _perfutil.round_floats({"results": results})
        )
        print(f"wrote bayesopt section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
