"""Enrichment benchmark: truth-map build throughput and vectorize overhead.

Builds the ``tiny`` simulated world once, times the truth-map
aggregation (attributed MLab tests -> per-(provider, cell) tiles) in
rows/s, then times ``FeatureBuilder.vectorize`` with and without the
enrichment block on observation batches of two sizes.  The enriched
path must stay within 15% of the base builder — the feature block is a
single indexed gather over the truth map, not a per-row join — and the
``base_vs_enriched`` time ratio is committed to ``BENCH_perf.json`` so
``check_perf_regression.py`` catches the gather path regressing.

Run standalone::

    python benchmarks/bench_perf_enrich.py           # both sizes
    python benchmarks/bench_perf_enrich.py --quick   # smallest only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    build_dataset,
    build_world,
    enrichment_from_world,
    make_feature_builder,
    tiny,
)

#: Batch-size multipliers over the tiny world's labelled dataset.
MULTIPLIERS = [("x1", 1), ("x3", 3)]

#: Acceptance bar: enriched vectorize within this fraction of base.
MAX_OVERHEAD = 0.15


def run(quick: bool = False) -> list[dict]:
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)

    build_s, enrichment = _perfutil.timed(
        lambda: enrichment_from_world(world), repeats=1
    )
    truthmap_rows = len(enrichment.truthmap)
    truthmap_rows_per_s = truthmap_rows / build_s
    print(
        f"truthmap: {truthmap_rows} tiles from {len(world.mlab_tests)} tests "
        f"in {build_s:.3f}s ({truthmap_rows_per_s:,.0f} rows/s)"
    )

    base_builder = make_feature_builder(world)
    enriched_builder = make_feature_builder(world, enrichment=enrichment)
    base = list(dataset)
    # Warm both builders' centroid/embedding caches (and the truth-map
    # index) before timing so neither path pays one-time costs.
    base_builder.vectorize(base)
    enriched_builder.vectorize(base)

    results = []
    for name, mult in MULTIPLIERS[:1] if quick else MULTIPLIERS:
        observations = base * mult
        repeats = 5 if mult == 1 else 3
        base_s, X_base = _perfutil.timed(
            lambda: base_builder.vectorize(observations), repeats=repeats
        )
        enr_s, X_enr = _perfutil.timed(
            lambda: enriched_builder.vectorize(observations), repeats=repeats
        )
        if not np.array_equal(X_enr[:, : base_builder.n_features], X_base):
            raise AssertionError(f"{name}: enrichment perturbed base columns")
        overhead = enr_s / base_s - 1.0
        if overhead > MAX_OVERHEAD:
            raise AssertionError(
                f"{name}: enriched vectorize overhead {overhead:.1%} exceeds "
                f"the {MAX_OVERHEAD:.0%} bar ({base_s:.3f}s -> {enr_s:.3f}s)"
            )
        row = {
            "size": name,
            "n_observations": len(observations),
            "n_features_base": base_builder.n_features,
            "n_features_enriched": enriched_builder.n_features,
            "truthmap_rows": truthmap_rows,
            "truthmap_build_seconds": build_s,
            "truthmap_rows_per_s": truthmap_rows_per_s,
            "vectorize_seconds_base": base_s,
            "vectorize_seconds_enriched": enr_s,
            "enriched_overhead_pct": 100.0 * overhead,
            "base_vs_enriched": base_s / enr_s,
        }
        results.append(row)
        print(
            f"{name:3s} n={len(observations):6d} "
            f"d={base_builder.n_features}->{enriched_builder.n_features}  "
            f"vectorize {base_s:6.3f}s base, {enr_s:6.3f}s enriched "
            f"({overhead:+.1%} overhead)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest batch"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "enrich", _perfutil.round_floats({"results": results})
        )
        print(f"wrote enrich section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
