"""GBDT hot-path benchmark: fused/vectorized kernels vs. the seed loops.

Times ``GradientBoostedClassifier`` fit and predict against the seed
implementation preserved in :mod:`repro.ml._reference` on synthetic
NBM-shaped problems (dense float features with NaN holes) at three sizes,
verifies the margins agree bitwise, and records the speedups in
``BENCH_perf.json``.

Each size also times the binned inference path
(``predict_margin(codes, binned=True)`` on pre-binned uint8 codes — the
steady state for tuning loops and repeated batch scoring) against the
float path, asserts its margins are bitwise identical, and reports the
one-time ``HistogramBinner.transform`` cost separately so the cold
(bin-then-score) trade-off stays visible.

Run standalone::

    python benchmarks/bench_perf_gbdt.py           # all three sizes
    python benchmarks/bench_perf_gbdt.py --quick   # smallest size only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.ml._reference import (  # noqa: E402
    reference_fit,
    reference_predict_margin,
)
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier  # noqa: E402

#: (name, rows, features, trees) — feature counts bracket the Table-4
#: matrix (~90 columns at tiny scale, wider with S-BERT embeddings).
#: rows * features stays below the fused-histogram block threshold
#: (repro.ml.tree._BLOCK_ELEMENTS, ~4.2M pairs): above it, production
#: training blocks root-node histograms and margins can drift from the
#: seed by ulps, which would trip this bench's exact-equality assertion.
SIZES = [
    ("small", 2_000, 48, 30),
    ("medium", 6_000, 96, 40),
    ("large", 16_000, 128, 50),
]


def _make_problem(n: int, d: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[rng.random((n, d)) < 0.1] = np.nan
    logit = np.nan_to_num(X[:, 0]) - 0.5 * np.nan_to_num(X[:, 1])
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logit))).astype(float)
    return X, y


def run(quick: bool = False) -> list[dict]:
    results = []
    sizes = SIZES[:1] if quick else SIZES
    for name, n, d, trees in sizes:
        X, y = _make_problem(n, d)
        params = GBDTParams(
            n_estimators=trees, max_depth=6, learning_rate=0.2, max_bins=64
        )
        # Best-of-2 on the small size keeps the CI smoke (which compares
        # quick-run ratios against the committed baseline) noise-tolerant.
        repeats = 2 if name == "small" else 1
        fit_ref, ref = _perfutil.timed(
            lambda: reference_fit(params, X, y), repeats=repeats
        )
        model = GradientBoostedClassifier(params)
        fit_new, _ = _perfutil.timed(lambda: model.fit(X, y), repeats=repeats)
        pred_ref, m_ref = _perfutil.timed(
            lambda: reference_predict_margin(ref.base_margin, ref.trees, X),
            repeats=repeats,
        )
        pred_new, m_new = _perfutil.timed(
            lambda: model.predict_margin(X), repeats=repeats
        )
        if not np.array_equal(m_ref, m_new):
            raise AssertionError(f"{name}: margins diverged from the seed kernels")
        binner = model._state.binner
        transform_s, codes = _perfutil.timed(
            lambda: binner.transform(X), repeats=repeats
        )
        pred_binned, m_binned = _perfutil.timed(
            lambda: model.predict_margin(codes, binned=True), repeats=max(repeats, 2)
        )
        if not np.array_equal(m_new, m_binned):
            raise AssertionError(f"{name}: binned margins diverged from float path")
        row = {
            "size": name,
            "n_rows": n,
            "n_features": d,
            "n_trees": trees,
            "fit_seconds_ref": fit_ref,
            "fit_seconds_new": fit_new,
            "fit_speedup": fit_ref / fit_new,
            "predict_seconds_ref": pred_ref,
            "predict_seconds_new": pred_new,
            "predict_speedup": pred_ref / pred_new,
            "fit_predict_speedup": (fit_ref + pred_ref) / (fit_new + pred_new),
            "predict_binned_seconds": pred_binned,
            "predict_binned_speedup": pred_new / pred_binned,
            "transform_seconds": transform_s,
        }
        results.append(row)
        print(
            f"{name:7s} n={n:6d} d={d:4d} trees={trees:3d}  "
            f"fit {fit_ref:7.3f}s -> {fit_new:7.3f}s ({row['fit_speedup']:.1f}x)  "
            f"predict {pred_ref:6.3f}s -> {pred_new:6.3f}s "
            f"({row['predict_speedup']:.1f}x)  "
            f"fit+predict {row['fit_predict_speedup']:.1f}x  "
            f"binned {pred_binned:6.3f}s ({row['predict_binned_speedup']:.1f}x "
            f"vs float; bin once {transform_s:.3f}s)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest size"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "gbdt", _perfutil.round_floats({"results": results})
        )
        print(f"wrote gbdt section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
