"""Overload latency benchmark: shedding vs. unbounded queueing.

The resilience claim under test: **at twice the sustainable request
rate, admission control keeps the latency of *admitted* requests within
5x the unloaded p99, while the same server with shedding disabled
degrades without bound** (every request is accepted, so queueing delay
grows linearly with the backlog).

Method (section ``serve_latency``):

1. **Sustainable rate** — a small closed-loop worker pool measures the
   server's completed requests/sec (``POST /v2/claims:batchScore`` with
   a fixed key chunk); the offered overload rate is 2x that.
2. **Unloaded floor** — the *same open-loop generator* drives the plain
   server at 0.5x sustainable and records p50/p95/p99.  Using identical
   machinery for the baseline and the overload runs means the ratio
   isolates queueing delay instead of also charging the overload runs
   for generator scheduling jitter.
3. **Open-loop overload, shedding on** — requests depart on a fixed
   precomputed schedule at 2x (open loop: departures do not wait for
   completions).  Latency is measured from the *scheduled* arrival, not
   the actual send (coordinated-omission correction: a departure the
   generator could not make on time still charges its lateness).  The
   server runs a tight admission gate (2 slots, no queue), so responses
   split into admitted (200, measured) and shed (429, counted).
4. **Open-loop overload, shedding off** — same schedule against
   ``admission_enabled=False`` and no default deadline: the unbounded
   baseline the paper's operators would actually suffer.

The committed metrics: ``shed_p99_over_unloaded`` (acceptance bar
<= 5x, asserted here), ``noshed_p99_over_unloaded``, and their quotient
``shed_containment`` (how many times worse the unbounded server is —
the ratio ``check_perf_regression.py`` tracks across runs).

Run standalone::

    python benchmarks/bench_perf_latency.py           # all sizes
    python benchmarks/bench_perf_latency.py --quick   # smallest only
"""

from __future__ import annotations

import argparse
import contextlib
import http.client
import json
import threading
import time

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

import bench_perf_serve  # noqa: E402
from repro.serve import ResilienceConfig, make_server  # noqa: E402

#: (name, keys per request, closed-loop samples, open-loop departures).
#: 300 keys per request puts per-request service time well above thread
#: scheduling noise, so the latency ratios measure queueing, not jitter.
SIZES = [("quick", 300, 120, 480), ("default", 300, 240, 960)]

#: Offered overload: multiple of the measured sustainable rate.
OFFERED_MULTIPLE = 2.0

#: The acceptance bar: admitted p99 under overload vs. unloaded p99.
SHED_P99_BAR = 5.0

#: Open-loop generator pool.  Also the cap on in-flight requests against
#: the no-shedding server — lateness past the schedule is charged to the
#: request via the coordinated-omission correction, so a bounded pool
#: still measures unbounded queueing honestly.
N_WORKERS = 32

#: The tight admission gate for the shedding run: two slots, no queue —
#: an admitted request never waits behind a backlog, everyone else gets
#: an immediate 429.
SHED_CONFIG = ResilienceConfig(
    max_concurrent=2, max_queue=0, max_queue_wait_s=0.0, retry_after_s=1.0
)

#: The unbounded baseline: no admission, no server-imposed deadline.
NOSHED_CONFIG = ResilienceConfig(admission_enabled=False, default_deadline_s=None)


@contextlib.contextmanager
def _serving(service, config=None):
    server = make_server(service, port=0, resilience=config)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield server.server_address[:2]
    finally:
        server.shutdown()
        server.server_close()


def _batch_body(store, n_keys: int) -> bytes:
    rng = np.random.default_rng(7)
    rows = rng.integers(0, len(store), size=n_keys)
    claims = store.claims
    keys = [
        {
            "provider_id": int(claims.provider_id[r]),
            "cell": int(claims.cell[r]),
            "technology": int(claims.technology[r]),
        }
        for r in rows
    ]
    return json.dumps({"claims": keys}).encode()


class _Client:
    """One keep-alive connection that survives server-initiated closes
    (a shed POST closes the connection: the body was never read)."""

    def __init__(self, address):
        self._address = address
        self._conn = None

    def post(self, path: str, body: bytes) -> int:
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(*self._address, timeout=120)
            try:
                self._conn.request(
                    "POST",
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = self._conn.getresponse()
                response.read()
                if response.will_close:
                    self.close()
                return response.status
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _percentiles(latencies_s: list[float]) -> dict:
    arr = np.array(sorted(latencies_s))
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def _closed_loop(address, body: bytes, n_requests: int, n_workers: int):
    """Closed-loop drive: each worker sends its next request the moment
    the previous one completes.  Returns (latencies, completed/sec)."""
    latencies: list[float] = []
    lock = threading.Lock()
    counter = iter(range(n_requests))

    def worker():
        client = _Client(address)
        try:
            while True:
                with lock:
                    if next(counter, None) is None:
                        return
                start = time.perf_counter()
                status = client.post("/v2/claims:batchScore", body)
                elapsed = time.perf_counter() - start
                if status != 200:
                    raise AssertionError(f"unloaded request returned {status}")
                with lock:
                    latencies.append(elapsed)
        finally:
            client.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return latencies, len(latencies) / elapsed


def _open_loop(address, body: bytes, n_requests: int, rate_rps: float):
    """Open-loop drive on a fixed schedule: departure ``i`` is due at
    ``start + i/rate`` regardless of completions.  Latency is measured
    from the *scheduled* departure (coordinated-omission corrected).

    Returns ``(admitted_latencies, {status: count})``."""
    interval = 1.0 / rate_rps
    admitted: list[float] = []
    statuses: dict[int, int] = {}
    lock = threading.Lock()
    counter = iter(range(n_requests))
    # Every worker opens its connection (and spawns its server-side
    # thread) with one unmeasured request before t0 exists — connection
    # setup must not pollute the measured percentiles.
    warmed = threading.Barrier(N_WORKERS)
    start_box: list[float] = []
    started = threading.Event()

    def worker():
        client = _Client(address)
        try:
            try:
                client.post("/v2/claims:batchScore", body)
            except (http.client.HTTPException, OSError):
                pass
            if warmed.wait() == 0:  # one worker stamps t0 for everyone
                # The warmup burst (N_WORKERS concurrent posts) must
                # drain before the measured schedule starts.
                start_box.append(time.perf_counter() + 0.5)
                started.set()
            started.wait()
            start = start_box[0]
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                due = start + i * interval
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    status = client.post("/v2/claims:batchScore", body)
                except (http.client.HTTPException, OSError):
                    status = -1  # transport failure (counted, not timed)
                elapsed = time.perf_counter() - due
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
                    if status == 200:
                        admitted.append(elapsed)
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(N_WORKERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return admitted, statuses


def run(quick: bool = False, service=None) -> list[dict]:
    """The benchmark body; ``service`` shares an already-built world
    (see :func:`bench_perf_serve.run`) — the caller owns its lifecycle."""
    own_service = service is None
    if own_service:
        service, _build_s = bench_perf_serve._build_service()
    store = service.store
    results = []
    try:
        for name, n_keys, n_closed, n_open in SIZES[:1] if quick else SIZES:
            body = _batch_body(store, n_keys)

            # 1. sustainable rate + 2. unloaded floor, plain server.
            with _serving(service) as address:
                _closed_loop(address, body, 5, 1)  # warmup, unmeasured
                _, sustainable_rps = _closed_loop(address, body, n_closed, 4)
                unloaded_lat, unloaded_statuses = _open_loop(
                    address, body, n_open, sustainable_rps * 0.5
                )
            if set(unloaded_statuses) != {200}:
                raise AssertionError(
                    f"{name}: unloaded run saw non-200 statuses "
                    f"{unloaded_statuses}"
                )
            unloaded = _percentiles(unloaded_lat)
            offered_rps = sustainable_rps * OFFERED_MULTIPLE

            # 3. overload with the admission gate shedding.
            with _serving(service, SHED_CONFIG) as address:
                shed_lat, shed_statuses = _open_loop(
                    address, body, n_open, offered_rps
                )
            # 4. the same schedule with shedding disabled.
            with _serving(service, NOSHED_CONFIG) as address:
                noshed_lat, noshed_statuses = _open_loop(
                    address, body, n_open, offered_rps
                )

            unexpected = {
                s: n for s, n in shed_statuses.items() if s not in (200, 429)
            } | {s: n for s, n in noshed_statuses.items() if s != 200}
            if unexpected:
                raise AssertionError(
                    f"{name}: overload runs saw unexpected statuses "
                    f"{unexpected} (shed={shed_statuses}, "
                    f"noshed={noshed_statuses})"
                )
            if not shed_lat:
                raise AssertionError(
                    f"{name}: the admission gate admitted nothing at "
                    f"{offered_rps:.0f} req/s (statuses {shed_statuses})"
                )

            shed = _percentiles(shed_lat)
            noshed = _percentiles(noshed_lat)
            row = {
                "size": name,
                "keys_per_request": n_keys,
                "open_loop_requests": n_open,
                "sustainable_rps": sustainable_rps,
                "offered_multiple": OFFERED_MULTIPLE,
                "offered_rps": offered_rps,
                "unloaded": unloaded,
                "shed": {
                    **shed,
                    "admitted": shed_statuses.get(200, 0),
                    "shed": shed_statuses.get(429, 0),
                },
                "noshed": {**noshed, "completed": noshed_statuses.get(200, 0)},
                "shed_p99_over_unloaded": shed["p99_ms"] / unloaded["p99_ms"],
                "noshed_p99_over_unloaded": noshed["p99_ms"] / unloaded["p99_ms"],
                "shed_containment": noshed["p99_ms"] / shed["p99_ms"],
            }
            results.append(row)
            print(
                f"{name:8s} sustainable {sustainable_rps:6.0f} req/s, offered "
                f"{offered_rps:6.0f} req/s\n"
                f"         unloaded p99 {unloaded['p99_ms']:8.1f} ms\n"
                f"         shed     p99 {shed['p99_ms']:8.1f} ms "
                f"({row['shed_p99_over_unloaded']:.1f}x unloaded; "
                f"{row['shed']['admitted']} admitted / "
                f"{row['shed']['shed']} shed)\n"
                f"         noshed   p99 {noshed['p99_ms']:8.1f} ms "
                f"({row['noshed_p99_over_unloaded']:.1f}x unloaded; "
                f"containment {row['shed_containment']:.1f}x)"
            )
            if row["shed_p99_over_unloaded"] > SHED_P99_BAR:
                raise AssertionError(
                    f"{name}: admitted p99 under 2x overload is "
                    f"{row['shed_p99_over_unloaded']:.1f}x the unloaded p99 "
                    f"(acceptance bar is {SHED_P99_BAR}x) — the admission "
                    "gate is letting a backlog build"
                )
    finally:
        if own_service:
            service.close()
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest size"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "serve_latency", _perfutil.round_floats({"results": results})
        )
        print(f"wrote serve_latency section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
