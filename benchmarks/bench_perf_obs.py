"""Instrumentation-overhead benchmark for the ``repro.obs`` layer.

Builds the same tiny-world service as ``bench_perf_serve.py``, then
times the batch-score hot path (``ModelVersion.score_keys`` over a
sampled key set — the ``POST /v2/claims:batchScore`` data plane) two
ways:

* **bare** — with metric updates globally suspended
  (``repro.obs.metrics.disabled()``), i.e. the pre-instrumentation hot
  path plus one flag check per update site;
* **instrumented** — metrics on (the default), every lookup counter,
  score counter, and latency histogram live, span sites paying their
  no-trace contextvar probe.

Both variants score the identical keys and are verified to return
identical results.  The headline ratio ``bare_vs_instrumented``
(bare seconds / instrumented seconds; 1.0 = free instrumentation) is
merged into ``BENCH_perf.json`` section ``obs`` and replayed by
``check_perf_regression.py``.  The acceptance bar — instrumentation
costs at most 5% of batch-score throughput (10% on the quick variant,
which times a smaller batch) — is asserted here on every run.

Run standalone::

    python benchmarks/bench_perf_obs.py           # all sizes
    python benchmarks/bench_perf_obs.py --quick   # smallest only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

import bench_perf_serve  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.serve.schemas import ClaimKey  # noqa: E402

#: (name, keys per scored batch, timed rounds, max tolerated overhead).
SIZES = [("quick", 2_000, 8, 0.10), ("default", 5_000, 15, 0.05)]


def run(quick: bool = False, service=None, build_s: float | None = None) -> list[dict]:
    """Time bare vs. instrumented batch scoring; assert the overhead bar.

    ``service`` lets ``check_perf_regression`` share one built world
    across every serve-layer bench; when given, the caller owns its
    lifecycle.
    """
    own_service = service is None
    if own_service:
        service, build_s = bench_perf_serve._build_service()
    try:
        version = service.registry.default
        store = service.store
        claims = store.claims
        rng = np.random.default_rng(0)
        results = []
        for name, n_keys, rounds, max_overhead in SIZES[:1] if quick else SIZES:
            rows = rng.integers(0, len(store), size=n_keys)
            keys = [
                ClaimKey(int(p), int(c), int(t))
                for p, c, t in zip(
                    claims.provider_id[rows],
                    claims.cell[rows],
                    claims.technology[rows],
                )
            ]

            def _score():
                return version.score_keys(keys)

            def _measure(n_rounds):
                # Alternate bare/instrumented rounds and keep the best
                # of each: alternating cancels drift (GC, frequency
                # scaling) that a two-block measurement would attribute
                # to one side.
                best_bare = best_instrumented = float("inf")
                outs = [None, None]
                for _ in range(n_rounds):
                    with obs_metrics.disabled():
                        t, outs[0] = _perfutil.timed(_score)
                    best_bare = min(best_bare, t)
                    t, outs[1] = _perfutil.timed(_score)
                    best_instrumented = min(best_instrumented, t)
                return best_bare, best_instrumented, outs

            _score()  # warm every lazy path before timing
            bare_s, instrumented_s, (bare_out, instrumented_out) = _measure(rounds)
            if bare_out != instrumented_out:
                raise AssertionError(
                    f"{name}: bare and instrumented results diverged"
                )
            overhead = instrumented_s / bare_s - 1.0
            if overhead > max_overhead:
                # The true cost is well under 1%, so an over-bar reading
                # is scheduler noise: re-measure once, longer, and keep
                # the per-variant minima before failing for real.
                b2, i2, _ = _measure(2 * rounds)
                bare_s = min(bare_s, b2)
                instrumented_s = min(instrumented_s, i2)
                overhead = instrumented_s / bare_s - 1.0
            if overhead > max_overhead:
                raise AssertionError(
                    f"{name}: instrumentation overhead {overhead:.1%} exceeds "
                    f"the {max_overhead:.0%} acceptance bar "
                    f"(bare {bare_s * 1e3:.3f}ms, "
                    f"instrumented {instrumented_s * 1e3:.3f}ms)"
                )
            row = {
                "size": name,
                "n_keys": n_keys,
                "bare_seconds": bare_s,
                "instrumented_seconds": instrumented_s,
                "bare_keys_per_s": n_keys / bare_s,
                "instrumented_keys_per_s": n_keys / instrumented_s,
                "overhead_fraction": overhead,
                "bare_vs_instrumented": bare_s / instrumented_s,
            }
            results.append(row)
            print(
                f"{name:8s} keys={n_keys:6d}  "
                f"bare {row['bare_keys_per_s']:12,.0f}/s  "
                f"instrumented {row['instrumented_keys_per_s']:12,.0f}/s  "
                f"(overhead {overhead:+.2%})"
            )
        return results
    finally:
        if own_service:
            service.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smallest size only"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    _perfutil.merge_section(
        "obs", _perfutil.round_floats({"results": results})
    )
    print(f"wrote section 'obs' to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
