"""Serving benchmark: store build time + micro-batched lookup throughput.

Builds the ``tiny`` world, trains the integrity model, precomputes the
:class:`~repro.serve.store.ClaimScoreStore` (timed — the deploy-time
cost), then measures sustained scored-lookups/sec through the
:class:`~repro.serve.service.AuditService` two ways over the same key
set:

* **single** — one ``score_claim`` call per key, the naive
  request-per-claim serving pattern (each call pays a queue round-trip,
  a 1-row composite-index probe, and a 1-row record build);
* **batched** — ``score_claims`` on the whole key array, the
  micro-batched pattern the HTTP layer reaches under concurrency (one
  vectorized index probe for every key).

Both paths are verified to return identical records; the acceptance bar
is batched throughput >= 5x single.  Results merge into
``BENCH_perf.json`` (section ``serve``), which
``check_perf_regression.py`` replays in CI.

Run standalone::

    python benchmarks/bench_perf_serve.py           # all sizes
    python benchmarks/bench_perf_serve.py --quick   # smallest only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    NBMIntegrityModel,
    build_dataset,
    build_world,
    make_feature_builder,
    tiny,
)
from repro.dataset import random_observation_split  # noqa: E402
from repro.serve import AuditService, ClaimScoreStore  # noqa: E402

#: (name, number of scored lookups per timed pass).
SIZES = [("quick", 2_000), ("default", 20_000)]


def _build_service():
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    split = random_observation_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model).fit(
        dataset, split.train_idx
    )
    build_s, store = _perfutil.timed(
        lambda: ClaimScoreStore.build(model.classifier, builder)
    )
    # Cache off so both paths score every lookup (pure throughput, no
    # LRU hits); timer off so single calls flush deterministically.
    service = AuditService.from_model(
        model, store=store, cache_size=0, max_delay_s=0.0
    )
    return service, build_s


def run(quick: bool = False) -> list[dict]:
    service, build_s = _build_service()
    store = service.store
    claims = store.claims
    n_claims = len(store)
    print(
        f"store: {n_claims:,} claims precomputed in {build_s:.2f}s "
        f"({n_claims / build_s:,.0f} claims/s)"
    )
    rng = np.random.default_rng(0)
    results = []
    for name, n_lookups in SIZES[:1] if quick else SIZES:
        rows = rng.integers(0, n_claims, size=n_lookups)
        pid = claims.provider_id[rows]
        cell = claims.cell[rows]
        tech = claims.technology[rows]

        def _single():
            return [
                service.score_claim(int(p), int(c), int(t))
                for p, c, t in zip(pid, cell, tech)
            ]

        single_s, single_records = _perfutil.timed(_single)
        batched_s, batched_records = _perfutil.timed(
            lambda: service.score_claims(pid, cell, tech), repeats=3
        )
        if single_records != batched_records:
            raise AssertionError(f"{name}: single and batched records diverged")
        row = {
            "size": name,
            "n_claims": n_claims,
            "n_lookups": n_lookups,
            "store_build_seconds": build_s,
            "single_seconds": single_s,
            "batched_seconds": batched_s,
            "single_lookups_per_s": n_lookups / single_s,
            "batched_lookups_per_s": n_lookups / batched_s,
            "lookup_speedup": single_s / batched_s,
        }
        results.append(row)
        print(
            f"{name:8s} lookups={n_lookups:6d}  "
            f"single {row['single_lookups_per_s']:10,.0f}/s  "
            f"batched {row['batched_lookups_per_s']:10,.0f}/s  "
            f"({row['lookup_speedup']:.1f}x)"
        )
        if row["lookup_speedup"] < 5.0:
            raise AssertionError(
                f"{name}: micro-batched lookups only "
                f"{row['lookup_speedup']:.1f}x the single-claim path "
                "(acceptance bar is 5x)"
            )
    service.close()
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest size"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "serve", _perfutil.round_floats({"results": results})
        )
        print(f"wrote serve section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
