"""Serving benchmark: lookup throughput, in-process and over the wire.

Builds the ``tiny`` world, trains the integrity model, precomputes the
:class:`~repro.serve.store.ClaimScoreStore` (timed — the deploy-time
cost), then measures two layers:

**In-process** (section ``serve``): sustained scored-lookups/sec through
the :class:`~repro.serve.service.AuditService` two ways over the same
key set:

* **single** — one ``score_claim`` call per key, the naive
  request-per-claim serving pattern (each call pays a queue round-trip,
  a 1-row composite-index probe, and a 1-row record build);
* **batched** — ``score_claims`` on the whole key array, the
  micro-batched pattern the HTTP layer reaches under concurrency (one
  vectorized index probe for every key).

Both paths are verified to return identical records; the acceptance bar
is batched throughput >= 5x single.

**Over the wire** (section ``serve_http``): a live
:class:`~repro.serve.http.AuditHTTPServer` driven through one
keep-alive connection:

* **v1 bulk** — ``POST /v1/score`` in fixed-size chunks (every key
  rides the micro-batcher's Future machinery);
* **v2 batch** — ``POST /v2/claims:batchScore`` over the same chunks
  (precomputed keys take one vectorized gather, skipping the queue) —
  the acceptance bar is v2 >= the v1 path;
* **v2 list** — a cursor-paginated ``GET /v2/claims`` walk, recorded as
  rows/sec.

Results merge into ``BENCH_perf.json`` (sections ``serve`` and
``serve_http``), which ``check_perf_regression.py`` replays in CI.

Run standalone::

    python benchmarks/bench_perf_serve.py           # all sizes
    python benchmarks/bench_perf_serve.py --quick   # smallest only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    NBMIntegrityModel,
    build_dataset,
    build_world,
    make_feature_builder,
    tiny,
)
from repro.dataset import random_observation_split  # noqa: E402
from repro.serve import AuditService, ClaimScoreStore  # noqa: E402

#: (name, number of scored lookups per timed pass).
SIZES = [("quick", 2_000), ("default", 20_000)]

#: (name, lookups per timed HTTP pass, claims per POST chunk, page limit).
HTTP_SIZES = [("quick", 4_000, 1_000, 500), ("default", 20_000, 1_000, 1_000)]


def _build_service():
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    split = random_observation_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model).fit(
        dataset, split.train_idx
    )
    build_s, store = _perfutil.timed(
        lambda: ClaimScoreStore.build(model.classifier, builder)
    )
    # Cache off so both paths score every lookup (pure throughput, no
    # LRU hits); timer off so single calls flush deterministically.
    service = AuditService.from_model(
        model, store=store, cache_size=0, max_delay_s=0.0
    )
    return service, build_s


def run(quick: bool = False, service=None, build_s: float | None = None) -> list[dict]:
    """In-process lookups.  ``service`` lets a caller (``main``,
    ``check_perf_regression``) share one built world across ``run`` and
    ``run_http`` instead of paying the build twice; when given, the
    caller owns its lifecycle."""
    own_service = service is None
    if own_service:
        service, build_s = _build_service()
    store = service.store
    claims = store.claims
    n_claims = len(store)
    print(
        f"store: {n_claims:,} claims precomputed in {build_s:.2f}s "
        f"({n_claims / build_s:,.0f} claims/s)"
    )
    rng = np.random.default_rng(0)
    results = []
    for name, n_lookups in SIZES[:1] if quick else SIZES:
        rows = rng.integers(0, n_claims, size=n_lookups)
        pid = claims.provider_id[rows]
        cell = claims.cell[rows]
        tech = claims.technology[rows]

        def _single():
            return [
                service.score_claim(int(p), int(c), int(t))
                for p, c, t in zip(pid, cell, tech)
            ]

        single_s, single_records = _perfutil.timed(_single)
        batched_s, batched_records = _perfutil.timed(
            lambda: service.score_claims(pid, cell, tech), repeats=3
        )
        if single_records != batched_records:
            raise AssertionError(f"{name}: single and batched records diverged")
        row = {
            "size": name,
            "n_claims": n_claims,
            "n_lookups": n_lookups,
            "store_build_seconds": build_s,
            "single_seconds": single_s,
            "batched_seconds": batched_s,
            "single_lookups_per_s": n_lookups / single_s,
            "batched_lookups_per_s": n_lookups / batched_s,
            "lookup_speedup": single_s / batched_s,
        }
        results.append(row)
        print(
            f"{name:8s} lookups={n_lookups:6d}  "
            f"single {row['single_lookups_per_s']:10,.0f}/s  "
            f"batched {row['batched_lookups_per_s']:10,.0f}/s  "
            f"({row['lookup_speedup']:.1f}x)"
        )
        if row["lookup_speedup"] < 5.0:
            raise AssertionError(
                f"{name}: micro-batched lookups only "
                f"{row['lookup_speedup']:.1f}x the single-claim path "
                "(acceptance bar is 5x)"
            )
    if own_service:
        service.close()
    return results


def _post_chunks(conn, path: str, chunks: list[bytes]) -> None:
    """POST every chunk over one keep-alive connection; sanity-check 200s."""
    for body in chunks:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        payload = response.read()
        if response.status != 200:
            raise AssertionError(
                f"{path} returned {response.status}: {payload[:200]!r}"
            )


def run_http(quick: bool = False, service=None) -> list[dict]:
    """The over-the-wire section: v1 bulk vs v2 batch, plus the paginated
    list walk, through a live server on one keep-alive connection.

    ``service`` shares an already-built world (see :func:`run`)."""
    import http.client
    import json
    import time

    from repro.serve import make_server

    own_service = service is None
    if own_service:
        service, _build_s = _build_service()
    store = service.store
    claims = store.claims
    n_claims = len(store)
    server = make_server(service, port=0)
    import threading

    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    rng = np.random.default_rng(1)
    results = []
    try:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        for name, n_lookups, chunk_rows, page_limit in (
            HTTP_SIZES[:1] if quick else HTTP_SIZES
        ):
            rows = rng.integers(0, n_claims, size=n_lookups)
            keys = [
                {
                    "provider_id": int(claims.provider_id[r]),
                    "cell": int(claims.cell[r]),
                    "technology": int(claims.technology[r]),
                }
                for r in rows
            ]
            chunks = [
                json.dumps(
                    {"claims": keys[start : start + chunk_rows]}
                ).encode()
                for start in range(0, n_lookups, chunk_rows)
            ]
            # Warm both endpoints once, then best-of-3 timed passes.
            _post_chunks(conn, "/v1/score", chunks[:1])
            _post_chunks(conn, "/v2/claims:batchScore", chunks[:1])
            v1_s, _ = _perfutil.timed(
                lambda: _post_chunks(conn, "/v1/score", chunks), repeats=3
            )
            v2_s, _ = _perfutil.timed(
                lambda: _post_chunks(conn, "/v2/claims:batchScore", chunks),
                repeats=3,
            )

            # Cursor-paginated walk: follow next_cursor to the end (but cap
            # the walked rows at n_lookups to keep the pass bounded).
            def _walk_pages() -> int:
                walked = 0
                path = f"/v2/claims?limit={page_limit}"
                while walked < n_lookups:
                    conn.request("GET", path)
                    response = conn.getresponse()
                    doc = json.loads(response.read())
                    if response.status != 200:
                        raise AssertionError(f"list walk failed: {doc}")
                    walked += len(doc["items"])
                    cursor = doc["next_cursor"]
                    if cursor is None:
                        break
                    path = f"/v2/claims?limit={page_limit}&cursor={cursor}"
                return walked

            start = time.perf_counter()
            paged_rows = _walk_pages()
            list_s = time.perf_counter() - start

            row = {
                "size": name,
                "n_claims": n_claims,
                "n_lookups": n_lookups,
                "batch_rows": chunk_rows,
                "v1_bulk_seconds": v1_s,
                "v2_batch_seconds": v2_s,
                "v1_bulk_claims_per_s": n_lookups / v1_s,
                "v2_batch_claims_per_s": n_lookups / v2_s,
                "batch_v2_vs_v1": v1_s / v2_s,
                "page_limit": page_limit,
                "paged_rows": paged_rows,
                "list_rows_per_s": paged_rows / list_s,
            }
            results.append(row)
            print(
                f"{name:8s} http lookups={n_lookups:6d}  "
                f"v1 {row['v1_bulk_claims_per_s']:10,.0f}/s  "
                f"v2 {row['v2_batch_claims_per_s']:10,.0f}/s  "
                f"({row['batch_v2_vs_v1']:.2f}x)  "
                f"list {row['list_rows_per_s']:10,.0f} rows/s"
            )
            # The committed (full-run) acceptance bar is v2 >= v1; quick
            # CI replays tolerate some wall-clock noise — the halving
            # guard in check_perf_regression.py still covers them.
            floor = 0.8 if quick else 1.0
            if row["batch_v2_vs_v1"] < floor:
                raise AssertionError(
                    f"{name}: v2 batch endpoint is slower than the v1 bulk "
                    f"path ({row['batch_v2_vs_v1']:.2f}x; acceptance bar "
                    f"is >= {floor}x)"
                )
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        if own_service:
            service.close()
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest size"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    service, build_s = _build_service()
    try:
        results = run(quick=args.quick, service=service, build_s=build_s)
        http_results = run_http(quick=args.quick, service=service)
    finally:
        service.close()
    if not args.no_write:
        _perfutil.merge_section(
            "serve", _perfutil.round_floats({"results": results})
        )
        _perfutil.merge_section(
            "serve_http", _perfutil.round_floats({"results": http_results})
        )
        print(f"wrote serve + serve_http sections to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
