"""Sharded-store benchmark: ingest throughput, parallel build, mmap reads.

Builds the ``tiny`` world + model once (shared with the serve bench via
``service=``), then measures the :mod:`repro.store` subsystem
(section ``shard``):

* **ingest** — :func:`repro.store.ingest_csv` rows/sec: the claims are
  exported as a BDC-shaped CSV and streamed back through the chunked
  parse/validate/dedup/commit pipeline (the deploy-time cost of
  standing up a shard bundle from a raw BDC release);
* **parallel build** — wall time of the shard-parallel margin build at
  1 worker vs. ``n_workers`` (both through the identical on-disk
  worker bundles, so the ratio isolates process parallelism);
  ``parallel_build_speedup = build_1w_seconds / build_nw_seconds``.
  Margins are verified bitwise against the monolithic store on every
  run — the equivalence contract is re-proven wherever the bench runs;
* **mmap lookups** — random-row record gathers against the *same*
  bundle opened ``mmap=True`` vs. ``mmap=False``
  (``mmap_lookup_ratio``, informational: it quantifies the cost of
  serving straight off mapped shard files instead of materialized
  arrays).

The ``>= 2x at >= 2 workers`` acceptance bar is asserted only when the
machine has at least 2 CPUs (``cpu_count`` is recorded in every row):
on a single-core runner genuine process parallelism is physically
unavailable, so CI enforces the bar in the multi-core slow job while
``check_perf_regression.py`` guards the ratio everywhere via its
halving rule against the committed same-machine baseline.

Run standalone::

    python benchmarks/bench_perf_shard.py           # all sizes
    python benchmarks/bench_perf_shard.py --quick   # smallest only
"""

from __future__ import annotations

import argparse
import os
import tempfile

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

#: (name, claim-row stride, shard count, parallel workers).  The stride
#: subsamples the tiny world's ~130k claims so the quick variant stays
#: CI-replayable.
SIZES = [("quick", 5, 2, 2), ("default", 1, 4, 2)]

#: Acceptance bar for process parallelism, enforced on multi-core only.
PARALLEL_SPEEDUP_BAR = 2.0

_LOOKUP_ROWS = 20_000


def _lookup_pass(store, rows) -> float:
    claims = store.claims
    pid = claims.provider_id[rows]
    cell = claims.cell[rows]
    tech = claims.technology[rows]

    def _gather():
        pos = store.positions(pid, cell, tech)
        # Touch the score columns the way record serving does.
        return float(store.score[pos].sum() + store.margin[pos].sum())

    seconds, _ = _perfutil.timed(_gather, repeats=3)
    return seconds


def run(quick: bool = False, service=None) -> list[dict]:
    """The ``shard`` section rows.  ``service`` shares an already-built
    world (see ``bench_perf_serve._build_service``); when omitted one is
    built and closed locally."""
    import bench_perf_serve

    from repro.serve import ClaimScoreStore
    from repro.store import (
        ShardedClaimColumns,
        build_sharded_margins,
        ingest_csv,
        write_bdc_csv,
    )

    own_service = service is None
    if own_service:
        service, _build_s = bench_perf_serve._build_service()
    cpu_count = os.cpu_count() or 1
    try:
        model = service.model
        builder = service.builder
        store = service.store
        results = []
        for name, stride, n_shards, n_workers in SIZES[:1] if quick else SIZES:
            rows = np.arange(0, len(store), stride)
            claims = store.claims.take(rows)
            n = len(claims)
            with tempfile.TemporaryDirectory(prefix="bench-shard-") as td:
                csv_path = os.path.join(td, "claims.csv")
                write_bdc_csv(claims, csv_path)
                ingest_s, result = _perfutil.timed(
                    lambda: ingest_csv(
                        [csv_path], os.path.join(td, "ingested"), shards=n_shards
                    )
                )
                if result.n_ingested != n or result.n_rejected:
                    raise AssertionError(
                        f"{name}: ingest round-trip lost rows "
                        f"({result.n_ingested}/{n}, {result.n_rejected} rejected)"
                    )

                sharded = ShardedClaimColumns.from_claims(claims, shards=n_shards)
                build_1w_s, margin_1w = _perfutil.timed(
                    lambda: build_sharded_margins(
                        model.classifier, builder, sharded, n_workers=1
                    )
                )
                build_nw_s, margin_nw = _perfutil.timed(
                    lambda: build_sharded_margins(
                        model.classifier, builder, sharded, n_workers=n_workers
                    )
                )
                expected = store.margin[rows]
                if not np.array_equal(margin_1w, expected) or not np.array_equal(
                    margin_nw, expected
                ):
                    raise AssertionError(
                        f"{name}: sharded margins diverged from monolithic"
                    )

                bundle = os.path.join(td, "bundle")
                ClaimScoreStore(claims, expected).save_sharded(
                    bundle, shards=1
                )
                mapped = ClaimScoreStore.load_sharded(bundle, mmap=True)
                eager = ClaimScoreStore.load_sharded(bundle, mmap=False)
                rng = np.random.default_rng(0)
                lookup_rows = rng.integers(0, n, size=_LOOKUP_ROWS)
                mmap_s = _lookup_pass(mapped, lookup_rows)
                eager_s = _lookup_pass(eager, lookup_rows)

            speedup = build_1w_s / build_nw_s
            row = {
                "size": name,
                "n_claims": n,
                "n_shards": n_shards,
                "n_workers": n_workers,
                "cpu_count": cpu_count,
                "ingest_seconds": ingest_s,
                "ingest_rows_per_s": n / ingest_s,
                "build_1w_seconds": build_1w_s,
                "build_nw_seconds": build_nw_s,
                "parallel_build_speedup": speedup,
                "mmap_lookup_seconds": mmap_s,
                "eager_lookup_seconds": eager_s,
                "mmap_lookups_per_s": _LOOKUP_ROWS / mmap_s,
                "eager_lookups_per_s": _LOOKUP_ROWS / eager_s,
                "mmap_lookup_ratio": eager_s / mmap_s,
            }
            results.append(row)
            print(
                f"{name:8s} claims={n:7d} shards={n_shards}  "
                f"ingest {row['ingest_rows_per_s']:9,.0f} rows/s  "
                f"build {build_1w_s:.2f}s -> {build_nw_s:.2f}s "
                f"({speedup:.2f}x @ {n_workers}w/{cpu_count}cpu)  "
                f"mmap {row['mmap_lookups_per_s']:9,.0f}/s "
                f"({row['mmap_lookup_ratio']:.2f}x eager)"
            )
            if cpu_count >= 2 and speedup < PARALLEL_SPEEDUP_BAR:
                raise AssertionError(
                    f"{name}: parallel build only {speedup:.2f}x at "
                    f"{n_workers} workers on {cpu_count} CPUs "
                    f"(acceptance bar is {PARALLEL_SPEEDUP_BAR}x)"
                )
        return results
    finally:
        if own_service:
            service.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smallest size only")
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="run the measurements and assertions without touching "
        "BENCH_perf.json (CI's non-blocking multi-core job)",
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if args.no_write:
        print(f"--no-write: skipped updating {_perfutil.BENCH_JSON}")
        return 0
    _perfutil.merge_section(
        "shard",
        _perfutil.round_floats({"results": results}),
    )
    print(f"wrote section 'shard' ({len(results)} rows) to {_perfutil.BENCH_JSON}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
