"""Feature-building benchmark: columnar vectorize() vs. row-by-row rows.

Builds the ``tiny`` simulated world once, then times
``FeatureBuilder.vectorize`` (columnar slice-assignment fast path)
against the seed approach — ``np.vstack`` over per-row
``vectorize_one`` calls — on observation batches of three sizes,
verifies exact equality, and records the speedups in ``BENCH_perf.json``.

Run standalone::

    python benchmarks/bench_perf_vectorize.py           # all three sizes
    python benchmarks/bench_perf_vectorize.py --quick   # smallest only
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    build_dataset,
    build_world,
    make_feature_builder,
    tiny,
)

#: Batch-size multipliers over the tiny world's labelled dataset.
MULTIPLIERS = [("x1", 1), ("x3", 3), ("x9", 9)]


def _rows_reference(builder, observations) -> np.ndarray:
    """Seed batched vectorization: one row vector per observation."""
    return np.vstack([builder.vectorize_one(obs) for obs in observations])


def run(quick: bool = False) -> list[dict]:
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    base = list(dataset)
    # Warm the builder's centroid/embedding caches before timing so both
    # paths are measured steady-state (neither pays one-time embed costs).
    builder.vectorize(base)
    results = []
    for name, mult in MULTIPLIERS[:1] if quick else MULTIPLIERS:
        observations = base * mult
        repeats = 3 if mult == 1 else 1
        ref_s, X_ref = _perfutil.timed(
            lambda: _rows_reference(builder, observations), repeats=repeats
        )
        new_s, X_new = _perfutil.timed(
            lambda: builder.vectorize(observations), repeats=repeats
        )
        if not np.array_equal(X_ref, X_new):
            raise AssertionError(f"{name}: columnar vectorize diverged")
        row = {
            "size": name,
            "n_observations": len(observations),
            "n_features": builder.n_features,
            "vectorize_seconds_ref": ref_s,
            "vectorize_seconds_new": new_s,
            "vectorize_speedup": ref_s / new_s,
        }
        results.append(row)
        print(
            f"{name:3s} n={len(observations):6d} d={builder.n_features:3d}  "
            f"vectorize {ref_s:6.3f}s -> {new_s:6.3f}s "
            f"({row['vectorize_speedup']:.1f}x)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smallest batch"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "vectorize", _perfutil.round_floats({"results": results})
        )
        print(f"wrote vectorize section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
