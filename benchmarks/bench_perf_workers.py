"""Pre-fork worker pool benchmark: batch-score throughput vs. fleet size.

Builds the ``tiny`` world + model once (shared machinery with
``bench_perf_serve``), saves the score store as a single-shard bundle
(the zero-copy layout every worker maps), then measures sustained
``POST /v2/claims:batchScore`` throughput against a live
:class:`~repro.serve.workers.WorkerPool` at 1, 2, and 4 workers —
identical request chunks, identical concurrent keep-alive connections,
only the fleet size changes (section ``workers``):

* ``rows_per_s`` — scored claim keys per second at each fleet size;
* ``speedup_vs_1w`` — that fleet's throughput over the 1-worker run.
  One CPython process caps batch-score throughput at roughly one core
  (the GIL serializes handler threads); the pool's whole reason to
  exist is that N processes lift that cap, so the acceptance bar is
  ``>= 1.8x at 4 workers`` — asserted only when the machine has at
  least 4 CPUs (``cpu_count`` is recorded in every row; on fewer cores
  genuine process parallelism is physically unavailable and the ratio
  is informational).

Every pool response is verified byte-for-byte against a single
in-process reference server over the same bundle before anything is
timed — more workers must change throughput, never the wire.

Run standalone::

    python benchmarks/bench_perf_workers.py           # all sizes
    python benchmarks/bench_perf_workers.py --quick   # smallest only
    python benchmarks/bench_perf_workers.py --no-write  # CI bench job
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import tempfile
import threading

import _perfutil

_perfutil.ensure_src_on_path()

import numpy as np  # noqa: E402

#: (name, total keys per timed pass, keys per POST, concurrent connections).
SIZES = [("quick", 8_000, 1_000, 8), ("default", 32_000, 1_000, 8)]

#: Fleet sizes measured; the speedup bar applies to the largest.
WORKER_COUNTS = (1, 2, 4)

#: Acceptance bar for the 4-worker fleet, enforced on >= 4 cores only.
POOL_SPEEDUP_BAR = 1.8


def _post(conn, body: bytes) -> bytes:
    conn.request(
        "POST",
        "/v2/claims:batchScore",
        body=body,
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    payload = response.read()
    if response.status != 200:
        raise AssertionError(
            f"batchScore returned {response.status}: {payload[:200]!r}"
        )
    return payload


def _drive(port: int, chunks: list[bytes], n_connections: int) -> None:
    """POST every chunk, spread across ``n_connections`` keep-alive
    connections driven by one thread each (the concurrent-client shape
    that lets the kernel balance accepts across workers)."""
    errors: list[BaseException] = []

    def client(idx: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            for body in chunks[idx::n_connections]:
                _post(conn, body)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_connections)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def run(quick: bool = False, service=None) -> list[dict]:
    """The ``workers`` section rows.  ``service`` shares an already-built
    world (see ``bench_perf_serve._build_service``); when omitted one is
    built and closed locally."""
    import bench_perf_serve

    from repro.serve import AuditService, ClaimScoreStore, make_server
    from repro.serve.workers import WorkerPool, WorkerVersionSpec

    own_service = service is None
    if own_service:
        service, _build_s = bench_perf_serve._build_service()
    cpu_count = os.cpu_count() or 1
    results: list[dict] = []
    try:
        store = service.store
        n_claims = len(store)
        rng = np.random.default_rng(0)
        with tempfile.TemporaryDirectory(prefix="bench-workers-") as td:
            bundle = os.path.join(td, "bundle")
            store.save_sharded(bundle, shards=1)
            mapped = ClaimScoreStore.load_sharded(bundle, mmap=True)
            specs = [WorkerVersionSpec(name="default", path=bundle)]

            for name, n_keys, chunk_rows, n_connections in (
                SIZES[:1] if quick else SIZES
            ):
                rows = rng.integers(0, n_claims, size=n_keys)
                keys = [
                    {
                        "provider_id": int(p),
                        "cell": int(c),
                        "technology": int(t),
                    }
                    for p, c, t in zip(
                        store.claims.provider_id[rows],
                        store.claims.cell[rows],
                        store.claims.technology[rows],
                    )
                ]
                chunks = [
                    json.dumps(
                        {"claims": keys[start : start + chunk_rows]}
                    ).encode()
                    for start in range(0, n_keys, chunk_rows)
                ]

                # Reference bytes from one in-process server over the
                # same mapped bundle: every pool response must match.
                ref_service = AuditService(mapped, version_name="default")
                ref_server = make_server(ref_service)
                threading.Thread(
                    target=ref_server.serve_forever, daemon=True
                ).start()
                try:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", ref_server.server_address[1], timeout=120
                    )
                    expected = [_post(conn, body) for body in chunks[:2]]
                    conn.close()
                finally:
                    ref_server.shutdown()
                    ref_server.server_close()
                    ref_service.close()

                base_rows_per_s = None
                for n_workers in WORKER_COUNTS:
                    with WorkerPool(specs, n_workers=n_workers) as pool:
                        conn = http.client.HTTPConnection(
                            "127.0.0.1", pool.port, timeout=120
                        )
                        got = [_post(conn, body) for body in chunks[:2]]
                        conn.close()
                        if got != expected:
                            raise AssertionError(
                                f"{name}: {n_workers}-worker responses are "
                                "not bitwise-identical to single-process"
                            )
                        _drive(pool.port, chunks, n_connections)  # warm
                        seconds, _ = _perfutil.timed(
                            lambda: _drive(pool.port, chunks, n_connections),
                            repeats=3,
                        )
                    rows_per_s = n_keys / seconds
                    if base_rows_per_s is None:
                        base_rows_per_s = rows_per_s
                    speedup = rows_per_s / base_rows_per_s
                    row = {
                        "size": name,
                        "n_claims": n_claims,
                        "n_keys": n_keys,
                        "rows_per_post": chunk_rows,
                        "n_connections": n_connections,
                        "n_workers": n_workers,
                        "cpu_count": cpu_count,
                        "seconds": seconds,
                        "rows_per_s": rows_per_s,
                        "speedup_vs_1w": speedup,
                    }
                    results.append(row)
                    print(
                        f"{name:8s} keys={n_keys:6d}  workers={n_workers}  "
                        f"{rows_per_s:10,.0f} rows/s  "
                        f"({speedup:.2f}x vs 1w, {cpu_count} cpu)"
                    )
                    if (
                        n_workers == max(WORKER_COUNTS)
                        and cpu_count >= max(WORKER_COUNTS)
                        and speedup < POOL_SPEEDUP_BAR
                    ):
                        raise AssertionError(
                            f"{name}: {n_workers}-worker fleet only "
                            f"{speedup:.2f}x the single worker on "
                            f"{cpu_count} CPUs (acceptance bar is "
                            f"{POOL_SPEEDUP_BAR}x)"
                        )
        return results
    finally:
        if own_service:
            service.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smallest size only")
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="run the measurements and assertions without touching "
        "BENCH_perf.json (CI's non-blocking multi-core job)",
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if args.no_write:
        print(f"--no-write: skipped updating {_perfutil.BENCH_JSON}")
        return 0
    _perfutil.merge_section(
        "workers",
        _perfutil.round_floats({"results": results}),
    )
    print(
        f"wrote section 'workers' ({len(results)} rows) to "
        f"{_perfutil.BENCH_JSON}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
