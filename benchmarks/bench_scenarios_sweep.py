"""Adversarial-scenario sweep: per-scenario detection AUC + throughput.

Runs every registered scenario of :mod:`repro.scenarios` through the
end-to-end harness (mutated world → dataset → GBDT → score store →
audit service) and records, per scenario:

* ``auc_injected`` — AUC of the scenario-trained store's margins against
  the scenario's ground-truth injected-claim mask (the paper-style "can
  the model see this pathology" number);
* ``ref_auc_injected`` — the same mask scored by the fixed baseline
  classifier (how well a model trained on a *clean* world generalizes to
  the pathology);
* ``claims_per_s`` — store-build throughput on the scenario world;
* injected/clean percentile separation and scenario sizes.

Results merge into ``BENCH_perf.json`` (section ``scenarios``).  The
sweep re-runs every invariant of :func:`repro.scenarios.check_invariants`
and fails loudly on any violation, so a perf-motivated change that
quietly breaks an adversarial regime can't update the baseline.

Run standalone::

    python benchmarks/bench_scenarios_sweep.py            # full registry
    python benchmarks/bench_scenarios_sweep.py --quick    # smoke subset
"""

from __future__ import annotations

import argparse

import _perfutil

_perfutil.ensure_src_on_path()

from repro import scenarios  # noqa: E402

#: The --quick subset (matches the tier-1 smoke scenarios).
QUICK_SCENARIOS = ("phantom_provider", "challenge_suppressed_state")


def run(quick: bool = False) -> list[dict]:
    names = list(QUICK_SCENARIOS) if quick else scenarios.names()
    baseline = scenarios.build_baseline()
    results = []
    for name in names:
        scenario_run = scenarios.run_scenario(name, baseline)
        failures = scenarios.check_invariants(scenario_run, baseline)
        if failures:
            raise AssertionError(f"{name}: " + "; ".join(failures))
        m = scenario_run.metrics
        row = {
            "scenario": name,
            "n_claims": m.n_claims,
            "n_injected": m.n_injected,
            "n_observations": m.n_observations,
            "auc_injected": m.auc_injected,
            "ref_auc_injected": m.ref_auc_injected,
            "percentile_separation": m.percentile_separation,
            "claims_per_s": m.claims_per_s,
            "auc_floor": scenarios.get(name).auc_floor,
        }
        results.append(row)
        print(
            f"{name:30s} auc={m.auc_injected:.3f} "
            f"(floor {row['auc_floor']:.2f})  "
            f"ref={m.ref_auc_injected:.3f}  sep={m.percentile_separation:5.1f}  "
            f"inj={m.n_injected:6d}/{m.n_claims:,}  "
            f"{m.claims_per_s:,.0f} claims/s"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the smoke scenarios"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip updating BENCH_perf.json"
    )
    args = parser.parse_args()
    results = run(quick=args.quick)
    if not args.no_write:
        _perfutil.merge_section(
            "scenarios", _perfutil.round_floats({"results": results})
        )
        print(f"wrote scenarios section to {_perfutil.BENCH_JSON}")


if __name__ == "__main__":
    main()
