"""Table 1: the BDC filing schema — fields ISPs submit per served BSL."""

from conftest import once

from repro.utils import format_table


def test_table1_filing_schema(benchmark, world, record):
    def build():
        rows = []
        table = world.table
        floors = __import__("repro.fcc.bdc", fromlist=["NBM_SPEED_FLOORS"]).NBM_SPEED_FLOORS
        rows.append(["Max Advertised Download Speed", "Mbps", f"floor {floors[0]:.0f} -> published 0"])
        rows.append(["Max Advertised Upload Speed", "Mbps", f"floor {floors[1]:.0f} -> published 0"])
        rows.append(["Latency <= 100ms", "Boolean", f"{100*table.low_latency.mean():.0f}% of records low-latency"])
        techs = sorted(set(int(t) for t in table.technology))
        rows.append(["Access Technology", "Category", f"codes present: {techs}"])
        rows.append(["Service Type", "Category", "Residential/Business/Both (via building type)"])
        return rows

    rows = once(benchmark, build)
    record(
        "table1_filing_schema",
        format_table(["Item", "Unit", "Measured"], rows,
                     title="Table 1 — BDC availability filing schema (simulated)"),
    )
