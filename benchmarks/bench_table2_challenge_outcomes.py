"""Table 2: distribution of challenge outcomes on the initial NBM."""

from conftest import once

from repro.fcc import outcome_distribution
from repro.utils import format_table

PAPER = {
    "Successful": 69.0,
    "Provider Conceded": 39.0,
    "Service Changed": 22.0,
    "FCC Upheld": 8.0,
    "Failed": 31.0,
    "Challenge Withdrawn": 15.0,
    "FCC Overturned": 16.0,
}


def test_table2_challenge_outcomes(benchmark, world, record):
    dist = once(benchmark, lambda: outcome_distribution(world.challenges))
    rows = [
        [name, n, pct, PAPER[name], pct - PAPER[name]]
        for name, (n, pct) in dist.items()
    ]
    record(
        "table2_challenge_outcomes",
        format_table(
            ["Challenge Outcome", "# BSLs", "measured %", "paper %", "delta"],
            rows,
            floatfmt=".1f",
            title="Table 2 — challenge outcome distribution",
        ),
    )
    assert 55.0 <= dist["Successful"][1] <= 80.0
