"""Table 3: distribution of reasons for challenges."""

from conftest import once

from repro.fcc import reason_distribution
from repro.utils import format_table

PAPER = {
    "Technology Unavailable": 55.0,
    "Speed(s) Unavailable": 43.0,
    "Service Request Denied": 1.0,
    "No Signal": 1.0,
    "Asked Higher than Standard Connection Fee": 0.01,
    "Failed to Provide Service within 10 Biz-days": 0.01,
    "Provider not Ready (dependency on new equipment)": 0.003,
    "Failed to Install Service within Timeline": 0.002,
}


def test_table3_challenge_reasons(benchmark, world, record):
    dist = once(benchmark, lambda: reason_distribution(world.challenges))
    rows = [
        [name, n, pct, PAPER.get(name, 0.0)]
        for name, (n, pct) in dist.items()
    ]
    record(
        "table3_challenge_reasons",
        format_table(
            ["Reason for Challenge", "count", "measured %", "paper %"],
            rows,
            floatfmt=".2f",
            title="Table 3 — challenge reason distribution",
        ),
    )
    ordered = list(dist)
    assert ordered[0] == "Technology Unavailable"
    assert ordered[1] == "Speed(s) Unavailable"
