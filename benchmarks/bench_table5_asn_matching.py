"""Table 5: providers matched to ASNs per matching method."""

from conftest import once

from repro.asn import MatchMethod
from repro.utils import format_table

#: Paper Table 5 (of 2156 providers; 1562 = 72.4% matched overall).
PAPER = {
    MatchMethod.FULL_EMAIL: 293,
    MatchMethod.EMAIL_DOMAIN: 1173,
    MatchMethod.COMPANY_NAME: 1163,
    MatchMethod.PHYSICAL_ADDRESS: 729,
}
PAPER_TOTAL, PAPER_MATCHED = 2156, 1562


def test_table5_asn_matching(benchmark, world, record):
    counts = once(benchmark, world.crosswalk.method_counts)
    n = len(world.universe)
    matched = len(world.crosswalk.matched_providers)
    rows = []
    for method, count in counts.items():
        rows.append(
            [method.value, count, 100.0 * count / n,
             PAPER[method], 100.0 * PAPER[method] / PAPER_TOTAL]
        )
    rows.append(
        ["TOTAL matched (any method)", matched, 100.0 * matched / n,
         PAPER_MATCHED, 100.0 * PAPER_MATCHED / PAPER_TOTAL]
    )
    record(
        "table5_asn_matching",
        format_table(
            ["Matching Methodology", "# providers", "measured %", "paper #", "paper %"],
            rows,
            floatfmt=".1f",
            title=f"Table 5 — provider-to-ASN matches by method (n={n} providers)",
        ),
    )
    assert 0.5 <= matched / n <= 0.9
    assert counts[MatchMethod.EMAIL_DOMAIN] > counts[MatchMethod.FULL_EMAIL]
