"""Table 7: per-technology classification report with class-average features."""

from conftest import once

from repro.core import technology_reports
from repro.utils import format_table


def test_table7_tech_report(benchmark, world, dataset, model_random, record):
    model, split = model_random
    reports = once(
        benchmark,
        lambda: technology_reports(model, dataset, split, min_slice=20),
    )
    rows = []
    for report in reports:
        for cls in ("TN", "TP", "FN", "FP"):
            means = report.class_feature_means[cls]
            rows.append(
                [
                    report.slice_name,
                    cls,
                    report.class_pct[cls],
                    means["Ookla (Dev/Loc)"],
                    means["MLab Test Counts"],
                ]
            )
    record(
        "table7_tech_report",
        format_table(
            ["Access Tech", "Class", "%", "Ookla (Dev/Loc)", "MLab Counts"],
            rows,
            floatfmt=".2f",
            title=(
                "Table 7 — per-technology classification report\n"
                "(paper pattern: TN rows show Ookla density > 1; TP rows the lowest)"
            ),
        ),
    )
    assert reports
    # The paper's headline pattern: valid claims (TN) carry higher Ookla
    # density than suspicious ones (TP) in every technology group.
    import math
    for report in reports:
        tn = report.class_feature_means["TN"]["Ookla (Dev/Loc)"]
        tp = report.class_feature_means["TP"]["Ookla (Dev/Loc)"]
        if not (math.isnan(tn) or math.isnan(tp)):
            assert tn > tp
