"""Table 8: per-state classification report with class-average features."""

from conftest import once

from repro.core import state_reports
from repro.utils import format_table


def test_table8_state_report(benchmark, world, dataset, model_random, record):
    model, split = model_random
    reports = once(
        benchmark, lambda: state_reports(model, dataset, split, min_slice=60)
    )
    rows = []
    for report in reports[:10]:
        for cls in ("TN", "TP", "FN", "FP"):
            means = report.class_feature_means[cls]
            rows.append(
                [
                    report.slice_name,
                    cls,
                    report.class_pct[cls],
                    means["Ookla (Dev/Loc)"],
                    means["MLab Test Counts"],
                    means["Max Adv. DL Speed (Mbps)"],
                    means["Max Adv. UL Speed (Mbps)"],
                ]
            )
    record(
        "table8_state_report",
        format_table(
            ["State", "Class", "%", "Ookla", "MLab", "DL Mbps", "UL Mbps"],
            rows,
            floatfmt=".2f",
            title=(
                "Table 8 — per-state classification report\n"
                "(paper pattern: accuracy varies by state; Ookla density drives verdicts)"
            ),
        ),
    )
    assert reports
    accuracies = [r.accuracy for r in reports]
    # Accuracy should vary across states (the paper reports 100% .. ~80%).
    assert max(accuracies) - min(accuracies) > 0.02
