"""CI perf smoke: fail if the hot paths regress >2x vs. the baseline.

Replays the quick variants of ``bench_perf_gbdt.py``,
``bench_perf_vectorize.py``, ``bench_perf_bayesopt.py``, and
``bench_perf_serve.py`` on the current machine and compares the *speedup
ratios* (vectorized kernel vs. seed reference, shared-binning tuning vs.
per-trial binning, micro-batched vs. single-claim serving lookups, both
sides measured fresh) against the committed ``BENCH_perf.json``.  Comparing
ratios instead of wall times keeps the check meaningful across
heterogeneous CI hardware: a genuine hot-path regression halves the
measured speedup no matter how fast the runner is.  The quick GBDT
replay also re-asserts the bitwise contracts (vectorized vs. seed
margins, binned vs. float margins) on every run.

Exit status is non-zero when any fresh speedup falls below half its
committed baseline.

Run::

    python benchmarks/check_perf_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys

import _perfutil
import bench_perf_bayesopt
import bench_perf_gbdt
import bench_perf_serve
import bench_perf_vectorize

#: Fresh speedup must stay above baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _baseline_speedups(doc: dict, section: str, key: str) -> dict[str, float]:
    return {
        row["size"]: float(row[key])
        for row in doc.get(section, {}).get("results", [])
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=_perfutil.BENCH_JSON,
        help="path to the committed BENCH_perf.json",
    )
    args = parser.parse_args()
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    checks: list[tuple[str, str, float, float]] = []
    gbdt_base = _baseline_speedups(baseline, "gbdt", "fit_predict_speedup")
    for row in bench_perf_gbdt.run(quick=True):
        expected = gbdt_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("gbdt", row["size"], expected, row["fit_predict_speedup"])
            )
    vec_base = _baseline_speedups(baseline, "vectorize", "vectorize_speedup")
    for row in bench_perf_vectorize.run(quick=True):
        expected = vec_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("vectorize", row["size"], expected, row["vectorize_speedup"])
            )
    bo_base = _baseline_speedups(baseline, "bayesopt", "tuning_speedup")
    for row in bench_perf_bayesopt.run(quick=True):
        expected = bo_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("bayesopt", row["size"], expected, row["tuning_speedup"])
            )
    serve_base = _baseline_speedups(baseline, "serve", "lookup_speedup")
    for row in bench_perf_serve.run(quick=True):
        expected = serve_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("serve", row["size"], expected, row["lookup_speedup"])
            )

    if not checks:
        print("no comparable baseline entries found in", args.baseline)
        return 1
    failed = False
    for section, size, expected, fresh in checks:
        floor = expected / REGRESSION_FACTOR
        status = "ok" if fresh >= floor else "REGRESSED"
        failed |= fresh < floor
        print(
            f"{section}/{size}: baseline {expected:.1f}x, fresh {fresh:.1f}x "
            f"(floor {floor:.1f}x) -> {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
