"""CI perf smoke: fail if the hot paths regress >2x vs. the baseline.

Replays the quick variants of ``bench_perf_gbdt.py``,
``bench_perf_vectorize.py``, ``bench_perf_bayesopt.py``,
``bench_perf_serve.py``, ``bench_perf_latency.py``,
``bench_perf_shard.py``, ``bench_perf_obs.py``, and
``bench_perf_enrich.py`` on the current
machine and compares the
*speedup ratios* (vectorized kernel vs. seed reference, shared-binning
tuning vs. per-trial binning, micro-batched vs. single-claim serving
lookups, the v2 batch endpoint vs. the v1 bulk path over HTTP, shed
vs. unbounded p99 under 2x overload, the shard-parallel build vs.
one worker, and bare vs. instrumented batch scoring, both sides
measured fresh) against the committed
``BENCH_perf.json``.  Comparing
ratios instead of wall times keeps the check meaningful across
heterogeneous CI hardware: a genuine hot-path regression halves the
measured speedup no matter how fast the runner is.  The quick GBDT
replay also re-asserts the bitwise contracts (vectorized vs. seed
margins, binned vs. float margins) on every run.

Exit status is non-zero when any fresh speedup falls below half its
committed baseline.

Run::

    python benchmarks/check_perf_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys

import _perfutil
import bench_perf_bayesopt
import bench_perf_enrich
import bench_perf_gbdt
import bench_perf_latency
import bench_perf_obs
import bench_perf_serve
import bench_perf_shard
import bench_perf_vectorize

#: Fresh speedup must stay above baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0

#: Every section this check replays, with its speedup key and the
#: command that regenerates it.  A baseline missing one of these fails
#: with a clear message instead of silently skipping the section.
REQUIRED_SECTIONS = {
    "gbdt": ("fit_predict_speedup", "python benchmarks/bench_perf_gbdt.py"),
    "vectorize": ("vectorize_speedup", "python benchmarks/bench_perf_vectorize.py"),
    "bayesopt": ("tuning_speedup", "python benchmarks/bench_perf_bayesopt.py"),
    "serve": ("lookup_speedup", "python benchmarks/bench_perf_serve.py"),
    "serve_http": ("batch_v2_vs_v1", "python benchmarks/bench_perf_serve.py"),
    "serve_latency": ("shed_containment", "python benchmarks/bench_perf_latency.py"),
    "shard": ("parallel_build_speedup", "python benchmarks/bench_perf_shard.py"),
    "obs": ("bare_vs_instrumented", "python benchmarks/bench_perf_obs.py"),
    "enrich": ("base_vs_enriched", "python benchmarks/bench_perf_enrich.py"),
}


def _baseline_speedups(doc: dict, section: str, key: str) -> dict[str, float]:
    rows = doc[section].get("results", [])
    out: dict[str, float] = {}
    for row in rows:
        if "size" not in row or key not in row:
            raise SystemExit(
                f"error: malformed row in baseline section {section!r}: "
                f"expected 'size' and {key!r} fields, got {sorted(row)}"
            )
        out[row["size"]] = float(row[key])
    return out


def _validate_baseline(baseline: dict, path: str) -> None:
    """Fail loudly (not via KeyError or silent skip) on missing sections."""
    missing = [s for s in REQUIRED_SECTIONS if s not in baseline]
    if not missing:
        return
    lines = [
        f"error: baseline {path} is missing required bench section(s): "
        + ", ".join(missing),
        "regenerate the missing section(s) with:",
    ]
    lines.extend(f"    {REQUIRED_SECTIONS[s][1]}" for s in missing)
    raise SystemExit("\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=_perfutil.BENCH_JSON,
        help="path to the committed BENCH_perf.json",
    )
    args = parser.parse_args()
    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        raise SystemExit(
            f"error: no committed baseline at {args.baseline}; run the "
            "bench_perf_*.py benchmarks to create it"
        ) from None
    _validate_baseline(baseline, args.baseline)

    checks: list[tuple[str, str, float, float]] = []
    gbdt_base = _baseline_speedups(baseline, "gbdt", "fit_predict_speedup")
    for row in bench_perf_gbdt.run(quick=True):
        expected = gbdt_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("gbdt", row["size"], expected, row["fit_predict_speedup"])
            )
    vec_base = _baseline_speedups(baseline, "vectorize", "vectorize_speedup")
    for row in bench_perf_vectorize.run(quick=True):
        expected = vec_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("vectorize", row["size"], expected, row["vectorize_speedup"])
            )
    bo_base = _baseline_speedups(baseline, "bayesopt", "tuning_speedup")
    for row in bench_perf_bayesopt.run(quick=True):
        expected = bo_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("bayesopt", row["size"], expected, row["tuning_speedup"])
            )
    enrich_base = _baseline_speedups(baseline, "enrich", "base_vs_enriched")
    # The enrich replay also re-asserts the absolute acceptance bar
    # (enriched vectorize overhead <= 15% vs. the base builder) inside
    # bench_perf_enrich.run() itself.
    for row in bench_perf_enrich.run(quick=True):
        expected = enrich_base.get(row["size"])
        if expected is not None:
            checks.append(
                ("enrich", row["size"], expected, row["base_vs_enriched"])
            )
    serve_base = _baseline_speedups(baseline, "serve", "lookup_speedup")
    http_base = _baseline_speedups(baseline, "serve_http", "batch_v2_vs_v1")
    latency_base = _baseline_speedups(
        baseline, "serve_latency", "shed_containment"
    )
    shard_base = _baseline_speedups(baseline, "shard", "parallel_build_speedup")
    obs_base = _baseline_speedups(baseline, "obs", "bare_vs_instrumented")
    serve_service, serve_build_s = bench_perf_serve._build_service()
    try:
        for row in bench_perf_serve.run(
            quick=True, service=serve_service, build_s=serve_build_s
        ):
            expected = serve_base.get(row["size"])
            if expected is not None:
                checks.append(
                    ("serve", row["size"], expected, row["lookup_speedup"])
                )
        for row in bench_perf_serve.run_http(quick=True, service=serve_service):
            expected = http_base.get(row["size"])
            if expected is not None:
                checks.append(
                    ("serve_http", row["size"], expected, row["batch_v2_vs_v1"])
                )
        # The latency replay also re-asserts the absolute acceptance bar
        # (admitted p99 under 2x overload <= 5x unloaded p99) inside
        # bench_perf_latency.run() itself.
        for row in bench_perf_latency.run(quick=True, service=serve_service):
            expected = latency_base.get(row["size"])
            if expected is not None:
                checks.append(
                    (
                        "serve_latency",
                        row["size"],
                        expected,
                        row["shed_containment"],
                    )
                )
        # The shard replay also re-proves the sharded == monolithic
        # margin equivalence bitwise inside bench_perf_shard.run().
        for row in bench_perf_shard.run(quick=True, service=serve_service):
            expected = shard_base.get(row["size"])
            if expected is not None:
                checks.append(
                    ("shard", row["size"], expected, row["parallel_build_speedup"])
                )
        # The obs replay also re-asserts the absolute acceptance bar
        # (instrumentation overhead <= 10% on the quick batch) inside
        # bench_perf_obs.run() itself.
        for row in bench_perf_obs.run(quick=True, service=serve_service):
            expected = obs_base.get(row["size"])
            if expected is not None:
                checks.append(
                    ("obs", row["size"], expected, row["bare_vs_instrumented"])
                )
    finally:
        serve_service.close()

    if not checks:
        print("no comparable baseline entries found in", args.baseline)
        return 1
    failed = False
    for section, size, expected, fresh in checks:
        floor = expected / REGRESSION_FACTOR
        status = "ok" if fresh >= floor else "REGRESSED"
        failed |= fresh < floor
        print(
            f"{section}/{size}: baseline {expected:.1f}x, fresh {fresh:.1f}x "
            f"(floor {floor:.1f}x) -> {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
