"""Shared fixtures for the benchmark harness.

Every table and figure in the paper has one bench module; they share one
simulated world and its trained models (session-scoped — building the
world dominates runtime).  Each bench prints its reproduced rows next to
the paper's reported values and also writes them to
``benchmarks/output/<name>.txt`` so results survive pytest's capture.
"""

import os

import pytest

from repro.core import (
    NBMIntegrityModel,
    build_dataset,
    build_world,
    make_feature_builder,
    tiny,
)
from repro.dataset import (
    fcc_adjudicated_split,
    random_observation_split,
    state_holdout_split,
)

SEED = 7
_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def world():
    return build_world(tiny(seed=SEED))


@pytest.fixture(scope="session")
def dataset(world):
    return build_dataset(world)


@pytest.fixture(scope="session")
def builder(world):
    return make_feature_builder(world)


@pytest.fixture(scope="session")
def model_random(world, dataset, builder):
    split = random_observation_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model).fit(
        dataset, split.train_idx
    )
    return model, split


@pytest.fixture(scope="session")
def model_state(world, dataset, builder):
    split = state_holdout_split(dataset)
    model = NBMIntegrityModel(builder, params=world.config.model).fit(
        dataset, split.train_idx
    )
    return model, split


@pytest.fixture(scope="session")
def model_fcc(world, dataset, builder):
    split = fcc_adjudicated_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model).fit(
        dataset, split.train_idx
    )
    return model, split


@pytest.fixture(scope="session")
def record():
    """Print a bench's rendered output and persist it to a text file."""

    os.makedirs(_OUTPUT_DIR, exist_ok=True)

    def _record(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        with open(os.path.join(_OUTPUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _record


def once(benchmark, fn):
    """Run an expensive callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
