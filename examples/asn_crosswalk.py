"""Build the provider <-> ASN crosswalk and audit its quality (paper §6.1).

Shows the Appendix-C matching pipeline on its own: canonicalize FRN
registration data and WHOIS contacts, run the four matching methods,
report per-method yields (Table 5), inter-method agreement (Fig. 3), and
agreement with as2org+-style groupings:

    python examples/asn_crosswalk.py
"""

import numpy as np

from repro.asn import build_as2org, build_whois_registry, compare_groupings, match_providers_to_asns
from repro.fcc import FabricConfig, ProviderConfig, build_provider_id_table, generate_fabric, generate_providers
from repro.utils import format_kv, format_table


def main() -> None:
    fabric = generate_fabric(FabricConfig(locations_per_million=100), seed=11)
    universe = generate_providers(fabric, ProviderConfig(n_providers=150), seed=11)
    frn_table = build_provider_id_table(universe, seed=11)
    registry = build_whois_registry(universe, seed=11)
    crosswalk = match_providers_to_asns(frn_table, registry)

    n = len(universe)
    matched = len(crosswalk.matched_providers)
    print(f"{n} providers; {matched} matched to >=1 ASN "
          f"({100 * matched / n:.1f}%; paper 72.4%)\n")

    rows = [[m.value, c] for m, c in crosswalk.method_counts().items()]
    print(format_table(["Matching methodology", "# providers"], rows,
                       title="Per-method yields (paper Table 5 shape)"))

    methods, matrix = crosswalk.jaccard_matrix()
    print("\nInter-method mean Jaccard (paper Fig. 3):")
    header = ["method"] + [m.value[:10] for m in methods]
    jrows = []
    for i, m in enumerate(methods):
        jrows.append([m.value[:18]] + [
            "-" if np.isnan(matrix[i, j]) else f"{matrix[i, j]:.2f}"
            for j in range(len(methods))
        ])
    print(format_table(header, jrows))

    strengths = {}
    for pid in crosswalk.union:
        strengths[crosswalk.match_strength(pid)] = strengths.get(crosswalk.match_strength(pid), 0) + 1
    comparison = compare_groupings(crosswalk, build_as2org(registry))
    print("\n" + format_kv([
        ("strong matches (multi-method, Jaccard 1)", strengths.get("strong", 0)),
        ("partial matches", strengths.get("partial", 0)),
        ("single-method matches", strengths.get("single", 0)),
        ("unmatched", strengths.get("none", 0)),
        ("shared ASNs (multi-provider)", len(crosswalk.shared_asns)),
        ("as2org+ mean Jaccard (paper ~0.9)", comparison.mean_jaccard),
        ("as2org+ exact-group rate (paper 0.80)", comparison.exact_match_rate),
    ]))


if __name__ == "__main__":
    main()
