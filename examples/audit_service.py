"""Audit service: train, save artifacts, serve claim scores over HTTP v2.

The serving workflow end-to-end (~1-2 minutes):

1. build the simulated BDC world and train the integrity model;
2. save the model + precomputed claim-score store as a pickle-free
   artifact bundle;
3. reload the bundle into a standalone :class:`AuditService` through the
   model registry (no world in memory) and start the stdlib JSON HTTP
   server;
4. run a scripted session with the typed :class:`AuditClient` SDK:
   health check, single-claim lookup, batch scoring, a cursor-paginated
   walk of one state's most suspicious claims, and the model registry.

    python examples/audit_service.py
"""

import tempfile
import threading

from repro.client import AuditClient
from repro.core import NBMIntegrityModel, build_dataset, build_world, make_feature_builder, tiny
from repro.dataset import random_observation_split
from repro.serve import AuditService, make_server


def main() -> None:
    print("Building the simulated BDC world and training the model...")
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    split = random_observation_split(dataset, test_fraction=0.1, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model)
    model.fit(dataset, split.train_idx)

    print("Precomputing every claim's score and saving the artifact bundle...")
    service = AuditService.from_model(model)
    with tempfile.TemporaryDirectory(suffix=".audit-artifacts") as bundle:
        service.save(bundle)
        print(f"  bundle: {bundle} (manifest.json + npz arrays, no pickle)")

        # Standalone reload: the server below holds no simulation world.
        standalone = AuditService.from_artifacts(bundle, version_name="2024-06")
        server = make_server(standalone, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"  serving at {base}  (try: curl '{base}/v2/claims?limit=3')\n")

        client = AuditClient(base)
        health = client.health()
        print(f"GET /healthz -> {health}")

        models = client.models()
        default = models["default"]
        print(
            f"GET /v2/models -> default={default!r}, "
            f"{len(models['versions'])} version(s) registered"
        )

        top = next(client.iter_claims(page_size=1))
        print(
            f"GET /v2/claims/{top.provider_id}/{top.cell}/{top.technology}"
        )
        record = client.get_claim(top.provider_id, top.cell, top.technology)
        print(
            f"  -> score={record.score:.4f} "
            f"percentile={record.percentile:.1f} rank={record.rank}"
        )

        batch = client.batch_score([record.key])
        print(
            f"POST /v2/claims:batchScore (1 claim) -> "
            f"{len(batch.results)} result(s) from version "
            f"{batch.model_version!r}"
        )

        state = top.state
        summary = client.state_summary(state)
        print(
            f"\nState {state}: {summary['n_claims']:,} claims, "
            f"{100 * summary['suspicious_share']:.1f}% over the suspicion "
            f"threshold"
        )
        print(f"Top-10 most suspicious claims in {state} "
              "(paper: red hexes a regulator would challenge first):")
        print(f"  {'rank':>4}  {'provider':>8}  {'tech':>4}  "
              f"{'score':>7}  {'pctile':>6}  cell")
        # A cursor-paginated walk through the state's suspicion order
        # (tiny pages on purpose, to show the cursors in action).
        for rec in client.iter_claims(state=state, page_size=4, max_items=10):
            print(
                f"  {rec.rank:>4}  {rec.provider_id:>8}  "
                f"{rec.technology:>4}  {rec.score:>7.4f}  "
                f"{rec.percentile:>6.1f}  {rec.cell:#x}"
            )

        stats = client.stats()["batcher"]
        print(
            f"\nBatcher: {stats['requests']} requests, "
            f"{stats['batches']} vectorized batches, "
            f"{stats['cache_hits']} cache hits"
        )
        client.close()
        server.shutdown()
        server.server_close()
        standalone.close()


if __name__ == "__main__":
    main()
