"""Audit service: train, save artifacts, serve claim scores over HTTP.

The serving workflow end-to-end (~1-2 minutes):

1. build the simulated BDC world and train the integrity model;
2. save the model + precomputed claim-score store as a pickle-free
   artifact bundle;
3. reload the bundle into a standalone :class:`AuditService` (no world
   in memory) and start the stdlib JSON HTTP server;
4. run a scripted client session: health check, single-claim lookup,
   bulk scoring, and the top-10 most suspicious claims of one state.

    python examples/audit_service.py
"""

import json
import tempfile
import threading
import urllib.request

from repro.core import NBMIntegrityModel, build_dataset, build_world, make_feature_builder, tiny
from repro.dataset import random_observation_split
from repro.serve import AuditService, make_server


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return json.load(resp)


def post(base: str, path: str, doc: dict) -> dict:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.load(resp)


def main() -> None:
    print("Building the simulated BDC world and training the model...")
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    split = random_observation_split(dataset, test_fraction=0.1, seed=1)
    model = NBMIntegrityModel(builder, params=world.config.model)
    model.fit(dataset, split.train_idx)

    print("Precomputing every claim's score and saving the artifact bundle...")
    service = AuditService.from_model(model)
    with tempfile.TemporaryDirectory(suffix=".audit-artifacts") as bundle:
        service.save(bundle)
        print(f"  bundle: {bundle} (manifest.json + npz arrays, no pickle)")

        # Standalone reload: the server below holds no simulation world.
        standalone = AuditService.from_artifacts(bundle)
        server = make_server(standalone, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"  serving at {base}  (try: curl '{base}/v1/top?k=3')\n")

        health = get(base, "/healthz")
        print(f"GET /healthz -> {health}")

        top = get(base, "/v1/top?k=1")["results"][0]
        claim_q = (
            f"/v1/claim?provider_id={top['provider_id']}"
            f"&cell={top['cell']}&technology={top['technology']}"
        )
        record = get(base, claim_q)
        print(f"GET {claim_q}")
        print(
            f"  -> score={record['score']:.4f} "
            f"percentile={record['percentile']:.1f} rank={record['rank']}"
        )

        bulk = post(
            base,
            "/v1/score",
            {"claims": [
                {k: top[k] for k in ("provider_id", "cell", "technology")},
            ]},
        )
        print(f"POST /v1/score (1 claim) -> {len(bulk['results'])} result(s)")

        state = top["state"]
        summary = get(base, f"/v1/state/{state}/summary")
        print(
            f"\nState {state}: {summary['n_claims']:,} claims, "
            f"{100 * summary['suspicious_share']:.1f}% over the suspicion "
            f"threshold"
        )
        print(f"Top-10 most suspicious claims in {state} "
              "(paper: red hexes a regulator would challenge first):")
        print(f"  {'rank':>4}  {'provider':>8}  {'tech':>4}  "
              f"{'score':>7}  {'pctile':>6}  cell")
        for rec in get(base, f"/v1/top?k=10&state={state}")["results"]:
            print(
                f"  {rec['rank']:>4}  {rec['provider_id']:>8}  "
                f"{rec['technology']:>4}  {rec['score']:>7.4f}  "
                f"{rec['percentile']:>6.1f}  {rec['cell']:#x}"
            )

        stats = get(base, "/v1/stats")["batcher"]
        print(
            f"\nBatcher: {stats['requests']} requests, "
            f"{stats['batches']} vectorized batches, "
            f"{stats['cache_hits']} cache hits"
        )
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
