"""Challenge triage: rank a state's claims by predicted challenge success.

The paper's intended application: a state broadband office with a limited
challenge budget wants to know *which* provider claims in its state are
most likely to fail if challenged.  This script trains the model with the
target state held out (it has never seen labels from there) and prints the
most suspicious claims with their locations:

    python examples/challenge_triage.py [STATE]
"""

import sys

from repro.core import NBMIntegrityModel, build_dataset, build_world, make_feature_builder, tiny
from repro.dataset import LabelSource, Observation, state_holdout_split
from repro.fcc import TECHNOLOGY_NAMES
from repro.geo import cell_to_latlng
from repro.utils import format_table


def main(state: str = "GA") -> None:
    state = state.upper()
    world = build_world(tiny(seed=7))
    dataset = build_dataset(world)
    if state not in dataset.states():
        raise SystemExit(f"no labelled observations in {state}; try another state")

    split = state_holdout_split(dataset, (state,))
    builder = make_feature_builder(world)
    model = NBMIntegrityModel(builder, params=world.config.model)
    model.fit(dataset, split.train_idx)

    # Score *every* claim the NBM records in the state, labelled or not.
    satellite = {p.provider_id for p in world.universe.providers if p.is_satellite}
    claims = [
        key
        for key in world.table.unique_claims()
        if key[0] not in satellite
        and world.fabric.state_of_cell(key[1]) == state
    ]
    observations = [
        Observation(pid, cell, tech, state, 0, LabelSource.SYNTHETIC)
        for pid, cell, tech in claims
    ]
    scores = model.predict_proba(observations)

    ranked = sorted(zip(scores, claims), key=lambda pair: -pair[0])[:15]
    rows = []
    for score, (pid, cell, tech) in ranked:
        provider = world.universe.provider(pid)
        lat, lng = cell_to_latlng(cell)
        rows.append(
            [provider.brand_name[:26], TECHNOLOGY_NAMES[tech], f"{lat:.3f},{lng:.3f}", score]
        )
    print(
        format_table(
            ["Provider", "Technology", "Cell centroid", "P(fails challenge)"],
            rows,
            floatfmt=".3f",
            title=f"Most suspicious NBM claims in {state} "
                  f"({len(claims):,} claims scored; model never saw {state} labels)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "GA")
