"""Overclaim audit: the Jefferson County Cable case study (paper §6.3).

Injects a provider that deliberately overclaims a contiguous unserved
region (as Jefferson County Cable did to block BEAD funding for a market
it wanted for itself), trains the model with the provider's entire
neighbourhood of states held out, and shows that the fabricated region
lights up while the genuine service area stays mostly clean:

    python examples/overclaim_audit.py
"""

from repro.core import run_jcc_case_study, tiny


def main() -> None:
    print("Running the Jefferson County Cable case study "
          "(builds its own world; ~2 minutes)...\n")
    result = run_jcc_case_study(tiny(seed=7))
    print(f"States held out of training: {', '.join(result.holdout_states)}")
    print(f"Fabricated-region cells flagged: {100 * result.detection_rate:.0f}%")
    print(f"Genuine-area cells flagged:      {100 * result.false_alarm_rate:.0f}%")
    print(f"Fabricated-vs-genuine separation AUC: {result.separation_auc:.3f}")
    print("\n" + result.render_map())
    print(
        "\nPaper Fig. 8: 'Our model identifies the red region in the west "
        "where this provider falsely claimed to provide service.'"
    )


if __name__ == "__main__":
    main()
