"""Quickstart: simulate a BDC cycle, train the integrity model, evaluate.

Runs the full pipeline end-to-end at unit-test scale (~1-2 minutes):

    python examples/quickstart.py
"""

from repro.core import NBMIntegrityModel, build_dataset, build_world, make_feature_builder, tiny
from repro.dataset import random_observation_split
from repro.utils import format_kv


def main() -> None:
    print("Building the simulated BDC world (fabric, providers, filings,")
    print("challenges, releases, WHOIS, Ookla, MLab)...")
    world = build_world(tiny(seed=7))
    print(f"  {len(world.fabric):,} BSLs, {len(world.universe)} providers, "
          f"{len(world.table):,} availability records")
    print(f"  {len(world.challenges):,} challenges, "
          f"{len(world.changes):,} quiet map-diff removals, "
          f"{len(world.mlab_tests):,} MLab tests, "
          f"{len(world.ookla_tiles):,} Ookla tiles")

    dataset = build_dataset(world)
    print(f"\nLabelled dataset: {len(dataset):,} observations "
          f"({100 * dataset.class_balance():.0f}% unserved)")
    for source, frac in dataset.composition().items():
        print(f"  {source.value:10s} {100 * frac:5.1f}%")

    split = random_observation_split(dataset, test_fraction=0.1, seed=1)
    builder = make_feature_builder(world)
    model = NBMIntegrityModel(builder, params=world.config.model)
    model.fit(dataset, split.train_idx)
    result = model.evaluate(dataset, split)

    print("\nHeld-out evaluation (paper Fig. 5a: AUC 0.99, F1 0.93):")
    print(format_kv(sorted(result.summary().items())))

    print("\nTop features by gain (paper Fig. 10: speed-test presence dominates):")
    for name, importance in model.feature_importances(top_k=8):
        print(f"  {importance:6.3f}  {name}")


if __name__ == "__main__":
    main()
