"""Setuptools shim.

``pip install -e .`` requires the ``wheel`` package to build an editable
wheel (PEP 660); on fully offline machines without ``wheel`` installed,
``python setup.py develop --no-deps`` provides the same editable install
through the legacy path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
