"""repro — a reproduction of "Red is Sus" (IMC 2024).

Automated identification of low-quality service availability claims in the
US National Broadband Map: a full pipeline from (simulated) FCC Broadband
Data Collection filings and crowdsourced speed tests to a gradient-boosted
integrity classifier with SHAP interpretation.

Top-level convenience imports expose the main public entry points; see
``repro.core`` for the end-to-end pipeline.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
