"""ASN substrate: the ARIN-style WHOIS registry simulator, canonicalization
rules (USPS Pub 28 et al.), the 4-method provider<->ASN matcher, and the
as2org+ grouping comparison."""

from repro.asn.as2org import As2OrgDataset, build_as2org, compare_groupings
from repro.asn.canonicalize import (
    PUBLIC_EMAIL_DOMAINS,
    canonical_address,
    canonical_company_name,
    canonical_email,
    canonical_email_domain,
)
from repro.asn.matching import CrosswalkResult, MatchMethod, match_providers_to_asns
from repro.asn.whois import (
    ASNRecord,
    OrgRecord,
    POCRecord,
    WhoisConfig,
    WhoisRegistry,
    build_whois_registry,
)

__all__ = [
    "As2OrgDataset",
    "build_as2org",
    "compare_groupings",
    "PUBLIC_EMAIL_DOMAINS",
    "canonical_address",
    "canonical_company_name",
    "canonical_email",
    "canonical_email_domain",
    "CrosswalkResult",
    "MatchMethod",
    "match_providers_to_asns",
    "ASNRecord",
    "OrgRecord",
    "POCRecord",
    "WhoisConfig",
    "WhoisRegistry",
    "build_whois_registry",
]
