"""as2org+-style AS-to-organization groupings and crosswalk comparison.

The paper sanity-checks its provider-to-ASN groupings against as2org /
as2org+ sibling datasets (which group ASNs by WHOIS organization) and
finds a mean Jaccard of ~0.9, with ~80 % of groupings matching exactly.
Here the as2org+ analog is derived directly from the simulated WHOIS
registry's organization records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asn.matching import CrosswalkResult
from repro.asn.whois import WhoisRegistry

__all__ = ["As2OrgDataset", "build_as2org", "compare_groupings"]


@dataclass(frozen=True)
class As2OrgDataset:
    """ASN groupings keyed by organization."""

    groups: dict[str, frozenset[int]]

    def group_of(self, asn: int) -> frozenset[int] | None:
        for group in self.groups.values():
            if asn in group:
                return group
        return None


def build_as2org(registry: WhoisRegistry) -> As2OrgDataset:
    """Group ASNs by their WHOIS organization (the as2org+ analog)."""
    groups: dict[str, set[int]] = {}
    for asn, record in registry.asns.items():
        groups.setdefault(record.org_id, set()).add(asn)
    return As2OrgDataset(
        groups={org: frozenset(asns) for org, asns in groups.items()}
    )


@dataclass(frozen=True)
class GroupingComparison:
    """Agreement statistics between the crosswalk and as2org+ groupings."""

    mean_jaccard: float
    exact_matches: int
    total_groupings: int

    @property
    def exact_match_rate(self) -> float:
        return self.exact_matches / self.total_groupings if self.total_groupings else 0.0


def compare_groupings(
    crosswalk: CrosswalkResult, as2org: As2OrgDataset
) -> GroupingComparison:
    """Compare per-provider ASN groupings with as2org+ groups (paper §6.1).

    For each matched provider, the best-overlapping as2org group is found
    and the Jaccard index recorded; a grouping is "exact" when the two
    sets coincide.
    """
    scores = []
    exact = 0
    total = 0
    for pid, asns in crosswalk.union.items():
        if not asns:
            continue
        total += 1
        best = 0.0
        is_exact = False
        for group in as2org.groups.values():
            inter = len(asns & group)
            if inter == 0:
                continue
            jaccard = inter / len(asns | group)
            if jaccard > best:
                best = jaccard
                is_exact = asns == set(group)
        scores.append(best)
        if is_exact:
            exact += 1
    mean = float(np.mean(scores)) if scores else 0.0
    return GroupingComparison(
        mean_jaccard=mean, exact_matches=exact, total_groupings=total
    )
