"""Canonicalization rules for registration-data matching (paper Appendix C).

The four matching methods each standardize their field before comparison:

* **Email** — strip whitespace, lowercase.
* **Contact email domain** — the part after ``@``, with domains open for
  public registration (gmail, yahoo, ...) filtered out.
* **Company name** — strip corporate suffixes ("Inc", "LLC", ...), drop
  all non-alphanumeric/non-whitespace characters, lowercase.
* **Physical address** — abbreviate street designators per USPS
  Publication 28, drop punctuation, lowercase.
"""

from __future__ import annotations

import re

__all__ = [
    "canonical_email",
    "canonical_email_domain",
    "canonical_company_name",
    "canonical_address",
    "PUBLIC_EMAIL_DOMAINS",
]

#: Domains anyone can register a mailbox on; matching on them is spurious.
PUBLIC_EMAIL_DOMAINS = frozenset(
    {
        "gmail.com",
        "yahoo.com",
        "hotmail.com",
        "outlook.com",
        "aol.com",
        "icloud.com",
        "msn.com",
        "protonmail.com",
    }
)

#: USPS Publication 28 street-designator abbreviations (the subset that
#: appears in registration data; keys and replacements compared lowercase).
_USPS_PUB28 = {
    "street": "st",
    "avenue": "ave",
    "boulevard": "blvd",
    "drive": "dr",
    "lane": "ln",
    "road": "rd",
    "court": "ct",
    "circle": "cir",
    "highway": "hwy",
    "parkway": "pkwy",
    "place": "pl",
    "square": "sq",
    "terrace": "ter",
    "trail": "trl",
    "turnpike": "tpke",
    "expressway": "expy",
    "north": "n",
    "south": "s",
    "east": "e",
    "west": "w",
    "suite": "ste",
    "apartment": "apt",
    "building": "bldg",
    "floor": "fl",
    "room": "rm",
    "post office box": "po box",
}

_CORPORATE_SUFFIXES = ("incorporated", "inc", "llc", "l l c", "corp", "corporation", "co", "company", "ltd")


def canonical_email(email: str) -> str:
    """Canonical form of a full email address.

    >>> canonical_email("  NOC@Example.COM ")
    'noc@example.com'
    """
    return email.strip().lower()


def canonical_email_domain(email: str) -> str | None:
    """Canonical email domain, or None for public/unusable domains.

    >>> canonical_email_domain("noc@ValleyTel.com")
    'valleytel.com'
    >>> canonical_email_domain("bob@gmail.com") is None
    True
    """
    email = canonical_email(email)
    if "@" not in email:
        return None
    domain = email.rsplit("@", 1)[1].strip()
    if not domain or domain in PUBLIC_EMAIL_DOMAINS:
        return None
    return domain


def canonical_company_name(name: str) -> str:
    """Canonical company name: suffixes and punctuation removed, lowercase.

    >>> canonical_company_name("Valley Telecom, L.L.C.")
    'valley telecom'
    >>> canonical_company_name("ACME FIBER INC") == canonical_company_name("Acme Fiber")
    True
    """
    out = re.sub(r"[^0-9a-zA-Z\s]", " ", name.lower())
    out = re.sub(r"\s+", " ", out).strip()
    changed = True
    while changed:
        changed = False
        for suffix in _CORPORATE_SUFFIXES:
            if out.endswith(" " + suffix):
                out = out[: -len(suffix) - 1].rstrip()
                changed = True
    return out


def canonical_address(address: str) -> str:
    """Canonical postal address per USPS Pub 28 abbreviation rules.

    >>> canonical_address("100 Main Street, Springfield, NE 68001")
    '100 main st springfield ne 68001'
    >>> canonical_address("100 MAIN ST Springfield NE 68001")
    '100 main st springfield ne 68001'
    """
    out = re.sub(r"[^0-9a-zA-Z\s]", " ", address.lower())
    out = re.sub(r"\s+", " ", out).strip()
    words = [
        _USPS_PUB28.get(word, word)
        for word in out.split(" ")
    ]
    return " ".join(words)
