"""Provider <-> ASN crosswalk via four independent matching methods.

Appendix C of the paper: canonicalize FRN registration data and WHOIS
contact data, build per-method maps from canonical keys to Provider IDs,
and match each ASN's contact data against them.  The provider's final ASN
set is the union across methods; agreement between methods (Jaccard) is
the paper's confidence signal (Fig. 3), and per-method match counts are
Table 5.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.asn.canonicalize import (
    canonical_address,
    canonical_company_name,
    canonical_email,
    canonical_email_domain,
)
from repro.asn.whois import WhoisRegistry
from repro.fcc.frn import ProviderIDTable

__all__ = ["MatchMethod", "CrosswalkResult", "match_providers_to_asns"]


class MatchMethod(enum.Enum):
    """The four independent matching methods (Table 5 rows)."""

    FULL_EMAIL = "Full Email Address"
    EMAIL_DOMAIN = "Contact Email Domain"
    COMPANY_NAME = "Company Name"
    PHYSICAL_ADDRESS = "Physical Address"


@dataclass
class CrosswalkResult:
    """Output of the matching pipeline."""

    #: method -> provider_id -> set of matched ASNs.
    by_method: dict[MatchMethod, dict[int, set[int]]]
    #: provider_id -> union of ASNs across methods.
    union: dict[int, set[int]]
    #: ASNs matched to more than one provider (shared infrastructure).
    shared_asns: dict[int, set[int]] = field(default_factory=dict)

    @property
    def matched_providers(self) -> set[int]:
        return {pid for pid, asns in self.union.items() if asns}

    def method_counts(self) -> dict[MatchMethod, int]:
        """Providers matched per method (paper Table 5)."""
        return {
            method: sum(1 for asns in mapping.values() if asns)
            for method, mapping in self.by_method.items()
        }

    def match_strength(self, provider_id: int) -> str:
        """'strong' (multi-method, Jaccard 1), 'partial', 'single', 'none'."""
        sets = [
            frozenset(mapping.get(provider_id, set()))
            for mapping in self.by_method.values()
        ]
        nonempty = [s for s in sets if s]
        if not nonempty:
            return "none"
        if len(nonempty) == 1:
            return "single"
        if all(s == nonempty[0] for s in nonempty):
            return "strong"
        return "partial"

    def jaccard_matrix(self) -> tuple[list[MatchMethod], np.ndarray]:
        """Mean pairwise Jaccard of per-provider ASN sets (paper Fig. 3).

        Averaged over providers matched by *both* methods of a pair.
        """
        methods = list(self.by_method.keys())
        n = len(methods)
        matrix = np.full((n, n), np.nan)
        for i, j in itertools.product(range(n), range(n)):
            a_map = self.by_method[methods[i]]
            b_map = self.by_method[methods[j]]
            scores = []
            for pid in set(a_map) | set(b_map):
                a = a_map.get(pid, set())
                b = b_map.get(pid, set())
                if a and b:
                    scores.append(len(a & b) / len(a | b))
            if scores:
                matrix[i, j] = float(np.mean(scores))
        return methods, matrix


def _frn_keys(table: ProviderIDTable) -> dict[MatchMethod, dict[str, set[int]]]:
    """Canonical key -> provider ids, per method, from FRN registration."""
    maps: dict[MatchMethod, dict[str, set[int]]] = {m: {} for m in MatchMethod}
    for record in table.records:
        email = canonical_email(record.contact_email)
        if email:
            maps[MatchMethod.FULL_EMAIL].setdefault(email, set()).add(record.provider_id)
        domain = canonical_email_domain(record.contact_email)
        if domain:
            maps[MatchMethod.EMAIL_DOMAIN].setdefault(domain, set()).add(record.provider_id)
        name = canonical_company_name(record.company_name)
        if name:
            maps[MatchMethod.COMPANY_NAME].setdefault(name, set()).add(record.provider_id)
        address = canonical_address(record.address)
        if address:
            maps[MatchMethod.PHYSICAL_ADDRESS].setdefault(address, set()).add(record.provider_id)
    return maps


def match_providers_to_asns(
    table: ProviderIDTable, registry: WhoisRegistry
) -> CrosswalkResult:
    """Run all four matching methods and assemble the crosswalk."""
    frn_maps = _frn_keys(table)
    by_method: dict[MatchMethod, dict[int, set[int]]] = {m: {} for m in MatchMethod}

    for asn in registry.all_asns:
        org = registry.org_for_asn(asn)
        pocs = registry.pocs_for_asn(asn)

        email_keys = {canonical_email(p.email) for p in pocs}
        domain_keys = {
            d for p in pocs if (d := canonical_email_domain(p.email)) is not None
        }
        name_keys = {canonical_company_name(org.name)}
        address_keys = {canonical_address(p.address) for p in pocs}

        for method, keys in (
            (MatchMethod.FULL_EMAIL, email_keys),
            (MatchMethod.EMAIL_DOMAIN, domain_keys),
            (MatchMethod.COMPANY_NAME, name_keys),
            (MatchMethod.PHYSICAL_ADDRESS, address_keys),
        ):
            for key in keys:
                for pid in frn_maps[method].get(key, ()):
                    by_method[method].setdefault(pid, set()).add(asn)

    union: dict[int, set[int]] = {}
    for pid in table.provider_ids:
        merged: set[int] = set()
        for mapping in by_method.values():
            merged |= mapping.get(pid, set())
        union[pid] = merged

    asn_owners: dict[int, set[int]] = {}
    for pid, asns in union.items():
        for asn in asns:
            asn_owners.setdefault(asn, set()).add(pid)
    shared = {asn: pids for asn, pids in asn_owners.items() if len(pids) > 1}

    return CrosswalkResult(by_method=by_method, union=union, shared_asns=shared)
