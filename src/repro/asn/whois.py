"""ARIN-style WHOIS registry (simulated) with ground-truth ASN ownership.

The paper maps ASNs to points of contact through the three relationship
paths in ARIN bulk WHOIS (ASN -> POC, ASN -> ORG -> POC,
ASN -> ORG -> NET -> POC) and matches the contact data against FCC
registration records.  This module generates a registry with the phenomena
that matching pipeline must survive:

* registration identities that differ in *format* from FRN data (different
  email local parts, renamed legal entities, re-formatted addresses);
* providers with multiple ASNs (Comcast's AS7922 plus dozens more);
* ASNs shared by multiple providers — corporate groups filing separately
  under a common parent, and regional wholesale transit networks serving
  many single-homed ISPs (the paper found 226 such ASNs);
* small providers with no ASN at all (their traffic appears under a
  transit ASN) — the paper's unmatched tail skews small (Fig. 4);
* unrelated ASNs (hosting companies, enterprises) as background noise.

``WhoisRegistry.ownership`` is the simulation's ground truth, used to
stamp MLab tests and to score the crosswalk; the matching pipeline itself
never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fcc.frn import perturb_address, perturb_name
from repro.fcc.providers import Provider, ProviderUniverse
from repro.utils.rng import stream_rng

__all__ = ["POCRecord", "OrgRecord", "ASNRecord", "WhoisRegistry", "WhoisConfig", "build_whois_registry"]

_PUBLIC_DOMAINS = ("gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com")
_LOCAL_PARTS = ("noc", "admin", "ipadmin", "hostmaster", "engineering", "netops", "peering")


@dataclass(frozen=True)
class POCRecord:
    """A point of contact."""

    handle: str
    name: str
    email: str
    address: str


@dataclass(frozen=True)
class OrgRecord:
    """An organization owning network resources."""

    org_id: str
    name: str
    poc_handles: tuple[str, ...]


@dataclass(frozen=True)
class ASNRecord:
    """An autonomous system registration."""

    asn: int
    as_name: str
    org_id: str
    direct_poc_handles: tuple[str, ...]


@dataclass(frozen=True)
class WhoisConfig:
    """Knobs for registry generation, calibrated to Table 5 yields."""

    #: P(provider has its own ASN) by size class.
    asn_ownership: dict[str, float] = field(
        default_factory=lambda: {
            "national": 1.0,
            "satellite": 1.0,
            "regional": 0.92,
            "local": 0.55,
        }
    )
    #: Extra ASNs for national providers (Comcast has 58 secondary ASNs).
    national_extra_asns: tuple[int, int] = (3, 12)
    #: P(POC email exactly equals the FRN contact email).
    p_exact_email: float = 0.22
    #: P(POC email shares the FRN domain | not exact).
    p_same_domain: float = 0.72
    #: P(org name is a recognizable variant of the provider's legal name).
    p_matchable_name: float = 0.78
    #: P(POC address is a re-formatted copy of the FRN HQ address).
    p_matchable_address: float = 0.52
    #: Fraction of ASN-holding tail providers folded into corporate groups
    #: that share the group's ASN.
    corporate_group_rate: float = 0.10
    #: Wholesale transit networks small ISPs single-home behind.
    n_transit_orgs: int = 5
    #: P(a provider with no ASN routes through some transit ASN) — their
    #: MLab tests then appear under that ASN.
    p_transit_homed: float = 0.75
    #: Unrelated (non-ISP) ASNs per provider ASN, as background noise.
    noise_asn_ratio: float = 0.3
    #: Providers guaranteed their own ASN regardless of size-class odds
    #: (case studies inject providers that must be crosswalk-reachable).
    force_asn_provider_ids: tuple[int, ...] = ()


class WhoisRegistry:
    """The generated registry plus ground-truth ownership."""

    def __init__(
        self,
        asns: dict[int, ASNRecord],
        orgs: dict[str, OrgRecord],
        pocs: dict[str, POCRecord],
        ownership: dict[int, tuple[int, ...]],
        transit_of: dict[int, int],
        transit_asns: frozenset[int],
    ):
        self.asns = asns
        self.orgs = orgs
        self.pocs = pocs
        #: provider_id -> ASNs the provider genuinely controls (may be ()).
        self.ownership = ownership
        #: provider_id -> transit ASN carrying the provider's traffic, for
        #: providers with no ASN of their own.
        self.transit_of = transit_of
        self.transit_asns = transit_asns

    def pocs_for_asn(self, asn: int) -> list[POCRecord]:
        """POCs reachable via ASN->POC and ASN->ORG->POC paths."""
        record = self.asns.get(asn)
        if record is None:
            raise KeyError(f"unknown ASN {asn}")
        handles: list[str] = list(record.direct_poc_handles)
        org = self.orgs.get(record.org_id)
        if org is not None:
            handles.extend(h for h in org.poc_handles if h not in handles)
        return [self.pocs[h] for h in handles]

    def org_for_asn(self, asn: int) -> OrgRecord:
        return self.orgs[self.asns[asn].org_id]

    def routing_asns(self, provider_id: int) -> tuple[int, ...]:
        """ASNs the provider's traffic actually appears under (MLab truth)."""
        owned = self.ownership.get(provider_id, ())
        if owned:
            return owned
        transit = self.transit_of.get(provider_id)
        return (transit,) if transit is not None else ()

    @property
    def all_asns(self) -> list[int]:
        return sorted(self.asns.keys())


def _poc_email(
    rng: np.random.Generator, provider: Provider, config: WhoisConfig
) -> str:
    roll = rng.random()
    if roll < config.p_exact_email:
        return provider.contact_email
    if roll < config.p_exact_email + (1 - config.p_exact_email) * config.p_same_domain:
        local = _LOCAL_PARTS[int(rng.integers(len(_LOCAL_PARTS)))]
        return f"{local}@{provider.email_domain}"
    domain = _PUBLIC_DOMAINS[int(rng.integers(len(_PUBLIC_DOMAINS)))]
    stem = provider.email_domain.split(".")[0][:10]
    return f"{stem}{int(rng.integers(1, 99))}@{domain}"


def _org_name(rng: np.random.Generator, provider: Provider, config: WhoisConfig) -> str:
    if rng.random() < config.p_matchable_name:
        return perturb_name(rng, provider.name)
    stem = provider.name.split()[0]
    return f"{stem} Holdings Group"


def _poc_address(rng: np.random.Generator, provider: Provider, config: WhoisConfig) -> str:
    if rng.random() < config.p_matchable_address:
        return perturb_address(rng, provider.hq_address)
    zip5 = int(rng.integers(10000, 99999))
    return f"PO Box {int(rng.integers(10, 9999))}, Denver, CO {zip5}"


def build_whois_registry(
    universe: ProviderUniverse,
    config: WhoisConfig | None = None,
    seed: int = 0,
) -> WhoisRegistry:
    """Generate the WHOIS registry for a provider universe."""
    config = config or WhoisConfig()
    asns: dict[int, ASNRecord] = {}
    orgs: dict[str, OrgRecord] = {}
    pocs: dict[str, POCRecord] = {}
    ownership: dict[int, tuple[int, ...]] = {}
    transit_of: dict[int, int] = {}

    alloc_rng = stream_rng(seed, "whois", "alloc")
    next_asn = 3000

    def _allocate_asn() -> int:
        nonlocal next_asn
        asn = next_asn
        next_asn += int(alloc_rng.integers(1, 40))
        return asn

    def _new_poc(rng, provider, handle_stem) -> str:
        handle = f"POC-{handle_stem}"
        pocs[handle] = POCRecord(
            handle=handle,
            name=f"{provider.name.split()[0]} NOC",
            email=_poc_email(rng, provider, config),
            address=_poc_address(rng, provider, config),
        )
        return handle

    # --- transit networks ---------------------------------------------------
    transit_asn_list: list[int] = []
    for i in range(config.n_transit_orgs):
        rng = stream_rng(seed, "whois", "transit", i)
        asn = _allocate_asn()
        org_id = f"ORG-TRANSIT-{i}"
        handle = f"POC-TRANSIT-{i}"
        pocs[handle] = POCRecord(
            handle=handle,
            name=f"Transit {i} NOC",
            email=f"noc@transit{i}-backbone.net",
            address=f"{100 + i} Carrier Way, Dallas, TX 75001",
        )
        orgs[org_id] = OrgRecord(
            org_id=org_id, name=f"Heartland Transit Partners {i}", poc_handles=(handle,)
        )
        asns[asn] = ASNRecord(
            asn=asn, as_name=f"TRANSIT-{i}-BACKBONE", org_id=org_id,
            direct_poc_handles=(),
        )
        transit_asn_list.append(asn)

    # --- corporate groups ---------------------------------------------------
    # Some tail providers share a holding company and one ASN between them.
    forced = set(config.force_asn_provider_ids)
    tail = [
        p
        for p in universe.providers
        if p.size_class in ("regional", "local") and p.provider_id not in forced
    ]
    group_rng = stream_rng(seed, "whois", "groups")
    group_members: dict[int, list[Provider]] = {}
    grouped: set[int] = set()
    n_groups = max(0, int(round(config.corporate_group_rate * len(tail) / 2.5)))
    shuffled = list(tail)
    group_rng.shuffle(shuffled)
    cursor = 0
    for g in range(n_groups):
        size = int(group_rng.integers(2, 4))
        members = shuffled[cursor : cursor + size]
        cursor += size
        if len(members) < 2:
            break
        group_members[g] = members
        grouped.update(p.provider_id for p in members)

    for g, members in group_members.items():
        rng = stream_rng(seed, "whois", "group", g)
        parent = members[0]
        asn = _allocate_asn()
        org_id = f"ORG-GROUP-{g}"
        handles = tuple(
            _new_poc(rng, member, f"G{g}-{j}") for j, member in enumerate(members)
        )
        orgs[org_id] = OrgRecord(
            org_id=org_id,
            name=perturb_name(rng, parent.holding_company),
            poc_handles=handles,
        )
        asns[asn] = ASNRecord(
            asn=asn,
            as_name=parent.name.split()[0].upper() + "-GROUP",
            org_id=org_id,
            direct_poc_handles=(),
        )
        for member in members:
            ownership[member.provider_id] = (asn,)

    # --- per-provider ASNs ----------------------------------------------------
    for provider in universe.providers:
        if provider.provider_id in ownership:
            continue  # grouped above
        rng = stream_rng(seed, "whois", provider.provider_id)
        p_own = config.asn_ownership.get(provider.size_class, 0.5)
        if provider.provider_id in forced:
            p_own = 1.0
        if rng.random() >= p_own:
            ownership[provider.provider_id] = ()
            if rng.random() < config.p_transit_homed and transit_asn_list:
                transit_of[provider.provider_id] = int(
                    transit_asn_list[int(rng.integers(len(transit_asn_list)))]
                )
            continue
        n_extra = (
            int(rng.integers(*config.national_extra_asns))
            if provider.size_class == "national"
            else int(rng.integers(0, 2))
        )
        provider_asns = [_allocate_asn() for _ in range(1 + n_extra)]
        org_id = f"ORG-{provider.provider_id}"
        handles = tuple(
            _new_poc(rng, provider, f"{provider.provider_id}-{j}")
            for j in range(int(rng.integers(1, 3)))
        )
        orgs[org_id] = OrgRecord(
            org_id=org_id,
            name=_org_name(rng, provider, config),
            poc_handles=handles,
        )
        for j, asn in enumerate(provider_asns):
            direct = (handles[0],) if j == 0 and rng.random() < 0.5 else ()
            asns[asn] = ASNRecord(
                asn=asn,
                as_name=provider.name.split()[0].upper() + (f"-{j}" if j else ""),
                org_id=org_id,
                direct_poc_handles=direct,
            )
        ownership[provider.provider_id] = tuple(provider_asns)

    # --- background noise ASNs ----------------------------------------------
    n_noise = int(round(config.noise_asn_ratio * len(asns)))
    for i in range(n_noise):
        rng = stream_rng(seed, "whois", "noise", i)
        asn = _allocate_asn()
        org_id = f"ORG-NOISE-{i}"
        handle = f"POC-NOISE-{i}"
        pocs[handle] = POCRecord(
            handle=handle,
            name=f"Enterprise {i}",
            email=f"it{i}@enterprise{i}.example.com",
            address=f"{i + 1} Corporate Plaza, Chicago, IL 60601",
        )
        orgs[org_id] = OrgRecord(
            org_id=org_id, name=f"Enterprise Hosting {i} Corp", poc_handles=(handle,)
        )
        asns[asn] = ASNRecord(
            asn=asn, as_name=f"ENT-{i}", org_id=org_id, direct_poc_handles=()
        )

    return WhoisRegistry(
        asns=asns,
        orgs=orgs,
        pocs=pocs,
        ownership=ownership,
        transit_of=transit_of,
        transit_asns=frozenset(transit_asn_list),
    )
