"""Python SDK for the audit API (:mod:`repro.serve.http`).

Stdlib-only: :class:`AuditClient` speaks the typed v2 wire contract of
:mod:`repro.serve.schemas` over persistent HTTP connections, with
retries, cursor-pagination iterators, and batch scoring.
"""

from repro.client.audit import AuditAPIError, AuditClient

__all__ = ["AuditAPIError", "AuditClient"]
