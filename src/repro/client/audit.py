"""`AuditClient` — a typed, stdlib-only SDK for the audit HTTP API.

The client speaks the v2 wire contract defined by
:mod:`repro.serve.schemas` and returns the same typed objects the server
encodes (:class:`ScoreRecord`, :class:`Page`,
:class:`BatchScoreResponse`), so a scripted consumer never touches raw
JSON dicts:

    client = AuditClient("http://127.0.0.1:8350")
    record = client.get_claim(100043, 0x8a44e1, 50)
    for rec in client.iter_claims(state="TX"):      # full cursor walk
        ...
    response = client.batch_score([(100043, 0x8a44e1, 50), ...])

Transport
---------

One persistent ``http.client.HTTPConnection`` **per thread**
(keep-alive; the server is HTTP/1.1), transparently reopened after
drops.  Requests are retried on transport failures and 502/503/504
responses with exponential backoff — every API call here is a pure read
or an idempotent swap, so retries are always safe.  API failures raise
:class:`AuditAPIError` carrying the HTTP status and the server's
``{"error": ...}`` message; a 404 on a single-claim lookup is returned
as ``None`` instead (an unknown claim is an answer, not a failure).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from urllib.parse import quote, urlencode, urlsplit

from repro.serve.schemas import (
    BatchScoreResponse,
    ClaimKey,
    ErrorBody,
    Page,
    SchemaError,
    ScoreRecord,
)

__all__ = ["AuditAPIError", "AuditClient"]

#: Response statuses worth retrying (transient server/gateway states).
_RETRY_STATUSES = frozenset({502, 503, 504})


class AuditAPIError(Exception):
    """An audit API call failed.

    ``status`` is the HTTP status of the failure, or ``None`` when the
    request never completed (transport failure after all retries).
    """

    def __init__(self, message: str, status: int | None = None, path: str = ""):
        super().__init__(message)
        self.status = status
        self.path = path


def _as_claim_key(entry, where: str) -> ClaimKey:
    if isinstance(entry, ClaimKey):
        return entry
    if isinstance(entry, dict):
        return ClaimKey.from_dict(entry, where)
    if isinstance(entry, (tuple, list)) and len(entry) in (3, 4):
        return ClaimKey(*entry)
    raise SchemaError(
        f"{where} must be a ClaimKey, a mapping, or a "
        "(provider_id, cell, technology[, state]) tuple"
    )


class AuditClient:
    """Typed client for one audit-service base URL.

    Thread-safe: connections are per-thread, so one client instance can
    be shared across concurrent readers (the shape the micro-batched
    server is built for).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
    ):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        #: Path prefix for proxied deployments (http://gw/audit -> /audit).
        self._prefix = parts.path.rstrip("/")
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff_s = float(retry_backoff_s)
        self._local = threading.local()

    # -- transport ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(self, method: str, path: str, body: dict | None = None):
        """One API call with retries; returns (status, decoded JSON)."""
        path = self._prefix + path
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {"Content-Type": "application/json"}
        last_error: Exception | None = None
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(self._backoff_s * (2 ** (attempt - 1)))
            try:
                conn = self._connection()
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                if response.will_close:
                    self._drop_connection()
            except (http.client.HTTPException, OSError) as exc:
                self._drop_connection()
                last_error = exc
                continue
            if response.status in _RETRY_STATUSES:
                last_error = AuditAPIError(
                    self._error_message(raw, response.status),
                    status=response.status,
                    path=path,
                )
                continue
            try:
                doc = json.loads(raw) if raw else None
            except json.JSONDecodeError as exc:
                raise AuditAPIError(
                    f"invalid JSON in response: {exc}",
                    status=response.status,
                    path=path,
                ) from None
            if response.status >= 400:
                raise AuditAPIError(
                    self._error_message(raw, response.status),
                    status=response.status,
                    path=path,
                )
            return response.status, doc
        if isinstance(last_error, AuditAPIError):
            raise last_error
        raise AuditAPIError(
            f"request failed after {self._retries + 1} attempt(s): {last_error}",
            status=None,
            path=path,
        ) from last_error

    @staticmethod
    def _error_message(raw: bytes, status: int) -> str:
        try:
            return ErrorBody.from_dict(json.loads(raw)).error
        except (ValueError, SchemaError):
            return f"HTTP {status}"

    def _get(self, path: str, params: dict | None = None):
        if params:
            query = urlencode(
                {k: v for k, v in params.items() if v is not None}
            )
            if query:
                path = f"{path}?{query}"
        return self._request("GET", path)[1]

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        self._drop_connection()

    # -- meta ---------------------------------------------------------------

    def health(self) -> dict:
        return self._get("/healthz")

    def stats(self) -> dict:
        return self._get("/v1/stats")

    def models(self) -> dict:
        """Registry versions + per-version stats (``GET /v2/models``)."""
        return self._get("/v2/models")

    def activate_model(self, name: str) -> dict:
        """Atomically make ``name`` the default serving version."""
        return self._request(
            "POST", f"/v2/models/{quote(name, safe='')}:activate"
        )[1]

    # -- claims -------------------------------------------------------------

    def get_claim(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
    ) -> ScoreRecord | None:
        """One claim's score record; ``None`` for a claim the store does
        not know (pass ``state`` to score it as a hypothetical filing)."""
        path = f"/v2/claims/{int(provider_id)}/{int(cell)}/{int(technology)}"
        try:
            doc = self._get(path, {"state": state})
        except AuditAPIError as exc:
            if exc.status == 404:
                return None
            raise
        return ScoreRecord.from_dict(doc.get("record"), "record")

    def page_claims(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        limit: int | None = None,
        cursor: str | None = None,
    ) -> Page:
        """One page of the descending-suspicion walk (``GET /v2/claims``)."""
        doc = self._get(
            "/v2/claims",
            {
                "provider_id": provider_id,
                "state": state,
                "technology": technology,
                "cell": cell,
                "limit": limit,
                "cursor": cursor,
            },
        )
        return Page.from_dict(doc)

    def iter_pages(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        page_size: int | None = None,
    ):
        """Generator over pages, following cursors until the walk ends."""
        cursor = None
        while True:
            page = self.page_claims(
                provider_id=provider_id,
                state=state,
                technology=technology,
                cell=cell,
                limit=page_size,
                cursor=cursor,
            )
            yield page
            cursor = page.next_cursor
            if cursor is None:
                return

    def iter_claims(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        page_size: int | None = None,
        max_items: int | None = None,
    ):
        """Generator over :class:`ScoreRecord` in descending suspicion,
        transparently following pagination cursors."""
        emitted = 0
        for page in self.iter_pages(
            provider_id=provider_id,
            state=state,
            technology=technology,
            cell=cell,
            page_size=page_size,
        ):
            for record in page.items:
                yield record
                emitted += 1
                if max_items is not None and emitted >= max_items:
                    return

    def batch_score(self, claims) -> BatchScoreResponse:
        """Score many claim keys in one request
        (``POST /v2/claims:batchScore``).

        ``claims`` entries may be :class:`ClaimKey`, mappings, or
        ``(provider_id, cell, technology[, state])`` tuples.
        """
        keys = [
            _as_claim_key(entry, f"claims[{i}]") for i, entry in enumerate(claims)
        ]
        _, doc = self._request(
            "POST",
            "/v2/claims:batchScore",
            body={"claims": [key.to_dict() for key in keys]},
        )
        return BatchScoreResponse.from_dict(doc)

    # -- summaries ----------------------------------------------------------

    def provider_summary(self, provider_id: int) -> dict:
        return self._get(f"/v2/providers/{int(provider_id)}")

    def state_summary(self, abbr: str) -> dict:
        return self._get(f"/v2/states/{quote(abbr, safe='')}")
