"""`AuditClient` — a typed, stdlib-only SDK for the audit HTTP API.

The client speaks the v2 wire contract defined by
:mod:`repro.serve.schemas` and returns the same typed objects the server
encodes (:class:`ScoreRecord`, :class:`Page`,
:class:`BatchScoreResponse`), so a scripted consumer never touches raw
JSON dicts:

    client = AuditClient("http://127.0.0.1:8350")
    record = client.get_claim(100043, 0x8a44e1, 50)
    for rec in client.iter_claims(state="TX"):      # full cursor walk
        ...
    response = client.batch_score([(100043, 0x8a44e1, 50), ...])

Transport
---------

One persistent ``http.client.HTTPConnection`` **per thread**
(keep-alive; the server is HTTP/1.1), transparently reopened after
drops.  Requests are retried on transport failures and 429/502/503/504
responses with exponential backoff — every API call here is a pure read
or an idempotent swap, so retries are always safe.  The backoff is
**jittered** (uniformly 0.5–1.5x, so synchronized clients do not
stampede a recovering server) and **capped**
(``retry_backoff_cap_s``), and a ``Retry-After`` header on a 429/503
overrides the computed backoff — the server knows its queue better than
the client's exponent does.

Read-style calls accept ``deadline=`` (seconds): the whole call —
attempts, backoffs, socket waits — must finish inside that budget.  The
remaining budget is sent as ``X-Request-Deadline-Ms`` so the server can
drop the work when the client has already given up, and it bounds each
attempt's socket timeout; no retry sleep is allowed to outlive it.

API failures raise :class:`AuditAPIError` carrying the HTTP status and
the server's ``{"error": ...}`` message; a 404 on a single-claim lookup
is returned as ``None`` instead (an unknown claim is an answer, not a
failure).
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from urllib.parse import quote, urlencode, urlsplit

from repro.serve.schemas import (
    BatchScoreResponse,
    ClaimKey,
    ErrorBody,
    Page,
    SchemaError,
    ScoreRecord,
)

__all__ = ["AuditAPIError", "AuditClient"]

#: Response statuses worth retrying (shed or transient server/gateway
#: states; 429 means the admission gate asked us to come back later).
_RETRY_STATUSES = frozenset({429, 502, 503, 504})


class AuditAPIError(Exception):
    """An audit API call failed.

    ``status`` is the HTTP status of the failure, or ``None`` when the
    request never completed (transport failure after all retries).
    """

    def __init__(self, message: str, status: int | None = None, path: str = ""):
        super().__init__(message)
        self.status = status
        self.path = path


def _as_claim_key(entry, where: str) -> ClaimKey:
    if isinstance(entry, ClaimKey):
        return entry
    if isinstance(entry, dict):
        return ClaimKey.from_dict(entry, where)
    if isinstance(entry, (tuple, list)) and len(entry) in (3, 4):
        return ClaimKey(*entry)
    raise SchemaError(
        f"{where} must be a ClaimKey, a mapping, or a "
        "(provider_id, cell, technology[, state]) tuple"
    )


class AuditClient:
    """Typed client for one audit-service base URL.

    Thread-safe: connections are per-thread, so one client instance can
    be shared across concurrent readers (the shape the micro-batched
    server is built for).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
        retry_backoff_cap_s: float = 2.0,
    ):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        #: Path prefix for proxied deployments (http://gw/audit -> /audit).
        self._prefix = parts.path.rstrip("/")
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff_s = float(retry_backoff_s)
        #: No retry sleep — computed or server-suggested — exceeds this.
        self._backoff_cap_s = float(retry_backoff_cap_s)
        self._local = threading.local()

    # -- transport ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _retry_delay(self, attempt: int, retry_after: float | None) -> float:
        """Sleep before retry ``attempt``: the server's ``Retry-After``
        when it sent one, else jittered exponential backoff; both capped
        at ``retry_backoff_cap_s`` so no retry loop sleeps unboundedly."""
        if retry_after is not None:
            return min(retry_after, self._backoff_cap_s)
        delay = self._backoff_s * (2 ** (attempt - 1))
        if delay > 0:
            # Uniform 0.5-1.5x: synchronized clients retrying a shed
            # response must not stampede the server in lockstep.  A zero
            # base backoff stays zero (tests rely on instant retries).
            delay *= 0.5 + random.random()
        return min(delay, self._backoff_cap_s)

    @staticmethod
    def _retry_after_header(response) -> float | None:
        raw = response.getheader("Retry-After")
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None  # HTTP-date form: fall back to computed backoff

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        deadline_s: float | None = None,
    ):
        """One API call with retries; returns (status, decoded JSON).

        ``deadline_s`` bounds the whole call — every attempt, backoff
        sleep, and socket wait must fit inside it.  The remaining budget
        rides each attempt as ``X-Request-Deadline-Ms`` so the server
        stops working for a caller that has already given up.
        """
        path = self._prefix + path
        payload = None if body is None else json.dumps(body).encode("utf-8")
        base_headers = (
            {} if payload is None else {"Content-Type": "application/json"}
        )
        deadline_at = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        last_error: Exception | None = None
        retry_after: float | None = None
        for attempt in range(self._retries + 1):
            if attempt:
                delay = self._retry_delay(attempt, retry_after)
                if (
                    deadline_at is not None
                    and time.monotonic() + delay >= deadline_at
                ):
                    break  # no budget left for another attempt
                if delay > 0:
                    time.sleep(delay)
            retry_after = None
            headers = dict(base_headers)
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    break
                headers["X-Request-Deadline-Ms"] = str(
                    max(1, int(remaining * 1000))
                )
            try:
                conn = self._connection()
                if deadline_at is not None:
                    # This attempt's socket waits must fit the budget.
                    attempt_timeout = max(
                        0.001,
                        min(self._timeout, deadline_at - time.monotonic()),
                    )
                    conn.timeout = attempt_timeout
                    if conn.sock is not None:
                        conn.sock.settimeout(attempt_timeout)
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                if response.will_close:
                    self._drop_connection()
            except (http.client.HTTPException, OSError) as exc:
                self._drop_connection()
                last_error = exc
                continue
            if response.status in _RETRY_STATUSES:
                retry_after = self._retry_after_header(response)
                last_error = AuditAPIError(
                    self._error_message(raw, response.status),
                    status=response.status,
                    path=path,
                )
                continue
            try:
                doc = json.loads(raw) if raw else None
            except json.JSONDecodeError as exc:
                raise AuditAPIError(
                    f"invalid JSON in response: {exc}",
                    status=response.status,
                    path=path,
                ) from None
            if response.status >= 400:
                raise AuditAPIError(
                    self._error_message(raw, response.status),
                    status=response.status,
                    path=path,
                )
            return response.status, doc
        if isinstance(last_error, AuditAPIError):
            raise last_error
        if last_error is not None:
            raise AuditAPIError(
                f"request failed after {self._retries + 1} attempt(s): "
                f"{last_error}",
                status=None,
                path=path,
            ) from last_error
        raise AuditAPIError(
            f"call deadline of {deadline_s}s expired before the request "
            "could complete",
            status=None,
            path=path,
        )

    @staticmethod
    def _error_message(raw: bytes, status: int) -> str:
        try:
            return ErrorBody.from_dict(json.loads(raw)).error
        except (ValueError, SchemaError):
            return f"HTTP {status}"

    def _get(
        self,
        path: str,
        params: dict | None = None,
        deadline_s: float | None = None,
    ):
        if params:
            query = urlencode(
                {k: v for k, v in params.items() if v is not None}
            )
            if query:
                path = f"{path}?{query}"
        return self._request("GET", path, deadline_s=deadline_s)[1]

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        self._drop_connection()

    # -- meta ---------------------------------------------------------------

    def health(self, deadline: float | None = None) -> dict:
        return self._get("/healthz", deadline_s=deadline)

    def ready(self, deadline: float | None = None) -> dict:
        """Readiness probe; raises :class:`AuditAPIError` (503) while a
        hot-swap or store load is in flight."""
        return self._get("/readyz", deadline_s=deadline)

    def stats(self) -> dict:
        return self._get("/v1/stats")

    def models(self) -> dict:
        """Registry versions + per-version stats (``GET /v2/models``)."""
        return self._get("/v2/models")

    def activate_model(self, name: str) -> dict:
        """Atomically make ``name`` the default serving version."""
        return self._request(
            "POST", f"/v2/models/{quote(name, safe='')}:activate"
        )[1]

    # -- claims -------------------------------------------------------------

    def get_claim(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
        deadline: float | None = None,
    ) -> ScoreRecord | None:
        """One claim's score record; ``None`` for a claim the store does
        not know (pass ``state`` to score it as a hypothetical filing)."""
        path = f"/v2/claims/{int(provider_id)}/{int(cell)}/{int(technology)}"
        try:
            doc = self._get(path, {"state": state}, deadline_s=deadline)
        except AuditAPIError as exc:
            if exc.status == 404:
                return None
            raise
        return ScoreRecord.from_dict(doc.get("record"), "record")

    def page_claims(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        limit: int | None = None,
        cursor: str | None = None,
        deadline: float | None = None,
    ) -> Page:
        """One page of the descending-suspicion walk (``GET /v2/claims``)."""
        doc = self._get(
            "/v2/claims",
            {
                "provider_id": provider_id,
                "state": state,
                "technology": technology,
                "cell": cell,
                "limit": limit,
                "cursor": cursor,
            },
            deadline_s=deadline,
        )
        return Page.from_dict(doc)

    def iter_pages(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        page_size: int | None = None,
    ):
        """Generator over pages, following cursors until the walk ends."""
        cursor = None
        while True:
            page = self.page_claims(
                provider_id=provider_id,
                state=state,
                technology=technology,
                cell=cell,
                limit=page_size,
                cursor=cursor,
            )
            yield page
            cursor = page.next_cursor
            if cursor is None:
                return

    def iter_claims(
        self,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        page_size: int | None = None,
        max_items: int | None = None,
    ):
        """Generator over :class:`ScoreRecord` in descending suspicion,
        transparently following pagination cursors."""
        emitted = 0
        for page in self.iter_pages(
            provider_id=provider_id,
            state=state,
            technology=technology,
            cell=cell,
            page_size=page_size,
        ):
            for record in page.items:
                yield record
                emitted += 1
                if max_items is not None and emitted >= max_items:
                    return

    def batch_score(self, claims, deadline: float | None = None) -> BatchScoreResponse:
        """Score many claim keys in one request
        (``POST /v2/claims:batchScore``).

        ``claims`` entries may be :class:`ClaimKey`, mappings, or
        ``(provider_id, cell, technology[, state])`` tuples.  Check
        ``response.degraded``: when true, ``None`` results may be cold
        keys the server shed rather than unknown claims.
        """
        keys = [
            _as_claim_key(entry, f"claims[{i}]") for i, entry in enumerate(claims)
        ]
        _, doc = self._request(
            "POST",
            "/v2/claims:batchScore",
            body={"claims": [key.to_dict() for key in keys]},
            deadline_s=deadline,
        )
        return BatchScoreResponse.from_dict(doc)

    # -- summaries ----------------------------------------------------------

    def provider_summary(self, provider_id: int) -> dict:
        return self._get(f"/v2/providers/{int(provider_id)}")

    def state_summary(self, abbr: str) -> dict:
        return self._get(f"/v2/states/{quote(abbr, safe='')}")
