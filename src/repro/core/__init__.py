"""The paper's primary contribution: the end-to-end pipeline from BDC
artifacts + crowdsourced speed tests to the NBM integrity classifier,
with evaluation reports and the Jefferson County Cable case study."""

from repro.core.casestudy import (
    JCC_PROVIDER_ID,
    JCCCaseStudyResult,
    inject_jcc,
    run_jcc_case_study,
)
from repro.core.config import ScenarioConfig, paper, small, tiny
from repro.core.model import EvaluationResult, NBMIntegrityModel
from repro.core.pipeline import (
    PipelineHooks,
    SimulationWorld,
    build_dataset,
    build_world,
    enrichment_from_world,
    make_feature_builder,
)
from repro.core.reports import (
    SliceReport,
    provider_reports,
    slice_report,
    state_reports,
    technology_reports,
)

__all__ = [
    "JCC_PROVIDER_ID",
    "JCCCaseStudyResult",
    "inject_jcc",
    "run_jcc_case_study",
    "ScenarioConfig",
    "paper",
    "small",
    "tiny",
    "EvaluationResult",
    "NBMIntegrityModel",
    "PipelineHooks",
    "SimulationWorld",
    "build_dataset",
    "build_world",
    "enrichment_from_world",
    "make_feature_builder",
    "SliceReport",
    "provider_reports",
    "slice_report",
    "state_reports",
    "technology_reports",
]
