"""The Jefferson County Cable case study (paper §6.3, Fig. 8).

Jefferson County Cable, an Ohio cable ISP, *intentionally* overclaimed a
contiguous region west of its real service area in its initial BDC filing
to keep a planned expansion market ineligible for BEAD funding, and was
fined by the FCC.  The paper shows its model — trained with every state
bordering JCC's service area held out — flags exactly that western region
as suspicious.

This module injects a JCC-like provider into the simulation: a small Ohio
cable operator whose claimed footprint includes a deliberate, contiguous
western block it does not serve.  The case study trains on all states
except Ohio and its neighbours and reports how much of the fabricated
region (vs the genuine service area) the model flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ScenarioConfig, tiny
from repro.core.model import NBMIntegrityModel
from repro.core.pipeline import build_dataset, build_world, make_feature_builder
from repro.dataset.observations import LabelSource, Observation
from repro.dataset.splits import state_holdout_split
from repro.fcc.providers import (
    FootprintPair,
    Methodology,
    Provider,
    ServiceTier,
    methodology_text,
)
from repro.fcc.states import state_by_abbr, states_adjacent_to
from repro.geo import destination_point, hexgrid
from repro.utils.rng import stream_rng

__all__ = ["JCC_PROVIDER_ID", "JCCCaseStudyResult", "inject_jcc", "run_jcc_case_study"]

JCC_PROVIDER_ID = 999_999
_JCC_NAME = "Jefferson County Cable TV Inc"


def inject_jcc(fabric, universe, seed: int = 0) -> None:
    """Add the JCC-like provider to a universe (build_world hook).

    The provider serves a genuine disk around an Ohio town and claims an
    additional contiguous disk displaced ~8 km to the *west* — the
    deliberate misrepresentation.
    """
    rng = stream_rng(seed, "jcc")
    towns = fabric.towns_in_state("OH")
    if not towns:
        raise RuntimeError("no Ohio towns in fabric; enlarge the scenario")
    # Anchor at a mid-sized town away from the state's western border so
    # the fake region stays inside Ohio.
    ohio = state_by_abbr("OH")
    candidates = [t for t in towns if t.lng > (ohio.lng_min + ohio.lng_max) / 2]
    if not candidates:
        candidates = towns
    # JCC's genuine market is a real, well-populated community: anchor at
    # the largest eastern town so its service area carries the test density
    # an operating cable system produces.
    anchor = max(candidates, key=lambda t: t.weight)

    res = fabric.config.hex_resolution
    occupied = set(fabric.cells_in_state("OH"))
    anchor_cell = hexgrid.latlng_to_cell(anchor.lat, anchor.lng, res)
    true_cells = {int(c) for c in hexgrid.grid_disk(anchor_cell, 5)} & occupied

    # The fabricated claim covered a real-but-*unserved* community to the
    # west — JCC's goal was to keep that market ineligible for BEAD funding,
    # which only matters where nobody provides service.  Prefer the nearby
    # western town with the least existing coverage.
    served_by_any: set[int] = set()
    for (pid, abbr, tech), fp in universe.footprints.items():
        if abbr == "OH" and tech != 60:
            served_by_any.update(fp.true_cells)
    west_lat, west_lng = destination_point(anchor.lat, anchor.lng, 270.0, 10_000.0)
    others = [t for t in towns if (t.lat, t.lng) != (anchor.lat, anchor.lng)]

    def _target_score(town) -> float:
        distance = abs(town.lat - west_lat) + abs(town.lng - west_lng)
        cell = hexgrid.latlng_to_cell(town.lat, town.lng, res)
        disk = {int(c) for c in hexgrid.grid_disk(cell, 4)} & occupied
        unserved_frac = len(disk - served_by_any) / len(disk) if disk else 0.0
        return distance - unserved_frac  # near and unserved is best

    target = min(others, key=_target_score)
    fake_center = hexgrid.latlng_to_cell(target.lat, target.lng, res)
    region = ({int(c) for c in hexgrid.grid_disk(fake_center, 4)} & occupied) - true_cells

    tier = ServiceTier(technology=40, max_download_mbps=400.0, max_upload_mbps=20.0, low_latency=True)
    provider = Provider(
        provider_id=JCC_PROVIDER_ID,
        name=_JCC_NAME,
        brand_name="Jefferson County Cable",
        holding_company=_JCC_NAME,
        size_class="local",
        states=("OH",),
        tiers=(tier,),
        # JCC's misrepresentation was deliberate: the filing looked like an
        # ordinary infrastructure-based methodology (the lie was in the data,
        # not the method description).
        methodology=Methodology.INFRASTRUCTURE_MAPS,
        methodology_text=methodology_text(Methodology.INFRASTRUCTURE_MAPS, _JCC_NAME),
        overclaim_rate=len(region) / max(1, len(region) + len(true_cells)),
        concede_propensity=0.2,  # JCC contested; enforcement came later
        self_correction_rate=0.0,
        frns=(19_999_999,),
        contact_email="office@jeffersoncountycable.com",
        email_domain="jeffersoncountycable.com",
        hq_address="101 Main Street, Springfield, OH 43952",
        hq_state="OH",
    )
    universe.add_provider(
        provider,
        {("OH", 40): FootprintPair(frozenset(true_cells), frozenset(true_cells | region))},
    )


@dataclass
class JCCCaseStudyResult:
    """Model outputs over JCC's claimed footprint (paper Fig. 8)."""

    provider_id: int
    holdout_states: tuple[str, ...]
    #: cell -> P(suspicious) over the fabricated western region.
    region_scores: dict[int, float]
    #: cell -> P(suspicious) over the genuine service area.
    true_scores: dict[int, float]
    threshold: float

    @property
    def separation_auc(self) -> float:
        """AUC of fabricated-vs-genuine cells under the model's scores.

        The quantitative form of Fig. 8: 1.0 means the model perfectly
        ranks every fabricated cell above every genuine cell.
        """
        from repro.ml.metrics import roc_auc_score

        if not self.region_scores or not self.true_scores:
            return 0.0
        y = [1] * len(self.region_scores) + [0] * len(self.true_scores)
        s = list(self.region_scores.values()) + list(self.true_scores.values())
        return roc_auc_score(np.array(y), np.array(s))

    @property
    def detection_rate(self) -> float:
        """Fraction of the fabricated region flagged suspicious."""
        if not self.region_scores:
            return 0.0
        flagged = sum(1 for s in self.region_scores.values() if s >= self.threshold)
        return flagged / len(self.region_scores)

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of the genuine service area flagged suspicious."""
        if not self.true_scores:
            return 0.0
        flagged = sum(1 for s in self.true_scores.values() if s >= self.threshold)
        return flagged / len(self.true_scores)

    def render_map(self, columns: int = 8) -> str:
        """Text rendering of per-cell verdicts, west-to-east."""
        rows = []
        for label, scores in (("fabricated", self.region_scores), ("genuine", self.true_scores)):
            ordered = sorted(
                scores.items(), key=lambda kv: hexgrid.cell_to_latlng(kv[0])[1]
            )
            marks = [
                ("X" if score >= self.threshold else ".") for _, score in ordered
            ]
            lines = [
                "".join(marks[i : i + columns]) for i in range(0, len(marks), columns)
            ]
            rows.append(f"{label} region (X = flagged suspicious):")
            rows.extend("  " + line for line in lines)
        return "\n".join(rows)


def run_jcc_case_study(
    config: ScenarioConfig | None = None, threshold: float | None = None
) -> JCCCaseStudyResult:
    """Build a world containing JCC, train with OH+neighbours held out,
    and score JCC's claims (paper §6.3).

    ``threshold=None`` picks the midpoint between the two regions' mean
    scores — probability calibration shifts with simulation scale, but the
    paper's result is about *contrast*: the fabricated west scores far
    above the genuine service area.
    """
    from dataclasses import replace

    config = config or tiny()
    # JCC must be reachable through the ASN crosswalk for its genuine area
    # to accumulate MLab evidence (the real JCC's subscribers ran tests
    # throughout the paper's 12-month window — the boosted per-claim test
    # rate stands in for that longer aggregation period).
    config = replace(
        config,
        whois=replace(
            config.whois,
            force_asn_provider_ids=tuple(config.whois.force_asn_provider_ids)
            + (JCC_PROVIDER_ID,),
        ),
        mlab=replace(config.mlab, tests_per_served_claim=max(0.3, config.mlab.tests_per_served_claim)),
    )
    world = build_world(
        config, mutate_universe=lambda fabric, universe: inject_jcc(fabric, universe, config.seed)
    )
    dataset = build_dataset(world)
    holdout = tuple(["OH"] + states_adjacent_to("OH"))
    present = dataset.states()
    usable_holdout = tuple(s for s in holdout if s in present)
    split = state_holdout_split(dataset, usable_holdout)

    builder = make_feature_builder(world)
    model = NBMIntegrityModel(builder, params=config.model).fit(dataset, split.train_idx)

    fp = world.universe.footprint(JCC_PROVIDER_ID, "OH", 40)
    region = sorted(fp.claimed_cells - fp.true_cells)
    genuine = sorted(fp.true_cells)

    def _score(cells: list[int]) -> dict[int, float]:
        observations = [
            Observation(
                provider_id=JCC_PROVIDER_ID,
                cell=cell,
                technology=40,
                state="OH",
                unserved=0,
                source=LabelSource.SYNTHETIC,
            )
            for cell in cells
        ]
        if not observations:
            return {}
        scores = model.predict_proba(observations)
        return {cell: float(s) for cell, s in zip(cells, scores)}

    region_scores = _score(region)
    true_scores = _score(genuine)
    if threshold is None:
        means = []
        for scores in (region_scores, true_scores):
            if scores:
                means.append(float(np.mean(list(scores.values()))))
        threshold = float(np.mean(means)) if means else 0.5
    return JCCCaseStudyResult(
        provider_id=JCC_PROVIDER_ID,
        holdout_states=usable_holdout,
        region_scores=region_scores,
        true_scores=true_scores,
        threshold=threshold,
    )
