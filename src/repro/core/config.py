"""Scenario configuration: one object wiring every subsystem's knobs.

Presets trade scale for runtime; all of them preserve the paper's
documented marginals (Table 2/3 outcome mixes, Fig. 2 concentration,
Fig. 9 density), which are scale-invariant by construction.

* :func:`tiny` — unit-test scale, seconds end-to-end.
* :func:`small` — the default benchmark scale, a couple of minutes.
* :func:`paper` — the full 2,156-provider scale of the paper (hours).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fcc.challenges import ChallengeConfig
from repro.fcc.fabric import FabricConfig
from repro.fcc.providers import ProviderConfig
from repro.asn.whois import WhoisConfig
from repro.ml.gbdt import GBDTParams
from repro.speedtests.mlab import MLabConfig
from repro.speedtests.ookla import OoklaConfig

__all__ = ["ScenarioConfig", "tiny", "small", "paper"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Every knob of the end-to-end reproduction."""

    seed: int = 0
    fabric: FabricConfig = field(default_factory=FabricConfig)
    providers: ProviderConfig = field(default_factory=ProviderConfig)
    challenges: ChallengeConfig = field(default_factory=ChallengeConfig)
    whois: WhoisConfig = field(default_factory=WhoisConfig)
    ookla: OoklaConfig = field(default_factory=OoklaConfig)
    mlab: MLabConfig = field(default_factory=MLabConfig)
    model: GBDTParams = field(default_factory=lambda: GBDTParams(
        n_estimators=120, max_depth=6, learning_rate=0.15
    ))
    #: Methodology-embedding dimension (paper: 384 via S-BERT; smaller
    #: dimensions keep small-scale feature matrices manageable without
    #: changing which texts collide).
    embedding_dim: int = 32
    #: Ookla devices/BSL threshold for likely-served cells (paper: 1.0).
    coverage_threshold: float = 1.0

    def with_seed(self, seed: int) -> "ScenarioConfig":
        return replace(self, seed=seed)


def tiny(seed: int = 0) -> ScenarioConfig:
    """Unit-test scale: ~60 providers on a sparse fabric."""
    return ScenarioConfig(
        seed=seed,
        fabric=FabricConfig(locations_per_million=150),
        providers=ProviderConfig(n_providers=60),
        model=GBDTParams(n_estimators=60, max_depth=5, learning_rate=0.2),
        embedding_dim=16,
    )


def small(seed: int = 0) -> ScenarioConfig:
    """Benchmark scale (the configuration EXPERIMENTS.md reports)."""
    return ScenarioConfig(
        seed=seed,
        fabric=FabricConfig(locations_per_million=400),
        providers=ProviderConfig(n_providers=220),
        embedding_dim=32,
    )


def paper(seed: int = 0) -> ScenarioConfig:
    """Full paper scale: 2,156 providers, S-BERT-sized embeddings."""
    return ScenarioConfig(
        seed=seed,
        fabric=FabricConfig(locations_per_million=1500),
        providers=ProviderConfig(n_providers=2156),
        model=GBDTParams(n_estimators=300, max_depth=7, learning_rate=0.1),
        embedding_dim=384,
    )
