"""The NBM integrity classifier (paper §5).

``NBMIntegrityModel`` wraps the GBDT over Table-4 features: it trains on a
labelled dataset, scores arbitrary observations with the probability that
the claim is *suspicious* (would fail a challenge), evaluates against the
paper's holdout protocols, tunes hyper-parameters with Bayesian
optimization, and explains itself with exact TreeSHAP.

Every entry point batches through the vectorized hot paths: observations
are vectorized columnarly in one ``(n, d)`` matrix
(:meth:`repro.features.vectorize.FeatureBuilder.vectorize`), training uses
the fused-histogram tree kernels, and scoring/explaining run off the
classifier's flat ensemble arrays — no per-observation or per-tree Python
loops at NBM scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.observations import LabelledDataset, Observation
from repro.dataset.splits import Split
from repro.features.vectorize import FeatureBuilder
from repro.ml.bayesopt import ParamSpec, SearchSpace, maximize
from repro.obs.metrics import get_metrics
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.tree import HistogramBinner
from repro.ml.metrics import (
    BinaryClassificationReport,
    classification_report,
    f1_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.shap import SHAPExplanation, shap_values

__all__ = ["EvaluationResult", "NBMIntegrityModel"]


@dataclass(frozen=True)
class EvaluationResult:
    """Metrics for one holdout evaluation (one panel of paper Fig. 5)."""

    auc: float
    f1: float
    report: BinaryClassificationReport
    fpr: np.ndarray
    tpr: np.ndarray
    n_test: int

    def summary(self) -> dict[str, float]:
        return {
            "auc": self.auc,
            "f1": self.f1,
            "accuracy": self.report.accuracy,
            "precision_pos": self.report.precision_pos,
            "recall_pos": self.report.recall_pos,
            "precision_neg": self.report.precision_neg,
            "recall_neg": self.report.recall_neg,
            "n_test": float(self.n_test),
        }


class NBMIntegrityModel:
    """Gradient-boosted classifier over Table-4 observation features.

    ``builder`` may be ``None`` for models reloaded from an artifact
    bundle (:meth:`load`): matrix-level scoring and explanation still
    work through :attr:`classifier`, but observation-level entry points
    need a live :class:`FeatureBuilder` and raise without one.
    """

    def __init__(
        self, builder: FeatureBuilder | None, params: GBDTParams | None = None
    ):
        self.builder = builder
        self.params = params or GBDTParams(n_estimators=120, max_depth=6, learning_rate=0.15)
        self._clf: GradientBoostedClassifier | None = None
        #: Feature names restored from an artifact bundle (builder-less).
        self._feature_names: tuple[str, ...] | None = None

    @property
    def is_fitted(self) -> bool:
        return self._clf is not None

    @property
    def classifier(self) -> GradientBoostedClassifier:
        if self._clf is None:
            raise RuntimeError("model is not fitted")
        return self._clf

    def _require_builder(self) -> FeatureBuilder:
        if self.builder is None:
            raise RuntimeError(
                "this model was loaded without a FeatureBuilder; "
                "observation-level scoring needs a live world — pass "
                "builder= to NBMIntegrityModel.load, or score matrices "
                "through .classifier"
            )
        return self.builder

    @property
    def feature_names(self) -> list[str]:
        """Feature-column names (from the builder, or the saved bundle)."""
        if self.builder is not None:
            return self.builder.feature_names
        if self._feature_names:
            return list(self._feature_names)
        raise RuntimeError("model has neither a builder nor saved feature names")

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> str:
        """Persist the fitted model as a versioned artifact bundle.

        Writes the pickle-free bundle of :mod:`repro.serve.artifacts`
        (flat-ensemble arrays, binner cuts, params, feature names, and
        the builder's encoder/embedding caches) into directory ``path``.
        A reloaded model's margins are bitwise identical on both the
        float and binned inference paths.
        """
        if not self.is_fitted:
            raise RuntimeError("cannot save an unfitted model; call fit() first")
        from repro.serve.artifacts import save_model_artifacts

        try:
            names = self.feature_names
        except RuntimeError:
            names = None
        return save_model_artifacts(
            path, self.classifier, feature_names=names, builder=self.builder
        )

    @classmethod
    def load(
        cls, path: str, builder: FeatureBuilder | None = None
    ) -> "NBMIntegrityModel":
        """Reload a model saved with :meth:`save`.

        ``builder``, when given, is attached to the model (and re-warmed
        from the bundle's encoder caches) so observation-level scoring
        works; without one the model scores feature matrices only.
        """
        from repro.serve.artifacts import load_model_artifacts

        artifacts = load_model_artifacts(path, builder=builder)
        model = cls(builder, params=artifacts.params)
        model._clf = artifacts.classifier
        model._feature_names = artifacts.feature_names or None
        return model

    # -- training -------------------------------------------------------------

    def fit(
        self,
        dataset: LabelledDataset,
        train_idx: np.ndarray | None = None,
    ) -> "NBMIntegrityModel":
        """Train on (a subset of) a labelled dataset."""
        observations = (
            list(dataset)
            if train_idx is None
            else [dataset[i] for i in train_idx]
        )
        if not observations:
            raise ValueError("no training observations")
        builder = self._require_builder()

        def _stage(name: str):
            return get_metrics().histogram("model_fit_seconds", stage=name).time()

        with _stage("vectorize"):
            X = builder.vectorize(observations)
        with _stage("labels"):
            y = builder.labels(observations)
        with _stage("fit"):
            self._clf = GradientBoostedClassifier(self.params).fit(X, y)
        return self

    # -- inference --------------------------------------------------------------

    def predict_proba(self, observations: list[Observation]) -> np.ndarray:
        """P(claim is suspicious / would fail a challenge) per observation.

        One columnar vectorization pass plus one batched flat-ensemble
        traversal, regardless of batch size.
        """
        X = self._require_builder().vectorize(observations)
        return self.classifier.predict_proba(X)

    def predict(
        self, observations: list[Observation], threshold: float = 0.5
    ) -> np.ndarray:
        return (self.predict_proba(observations) >= threshold).astype(np.int64)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, dataset: LabelledDataset, split: Split) -> EvaluationResult:
        """Evaluate on a split's held-out observations (paper Fig. 5)."""
        test = split.test(dataset)
        y = self._require_builder().labels(test)
        scores = self.predict_proba(test)
        preds = (scores >= 0.5).astype(np.int64)
        fpr, tpr, _ = roc_curve(y, scores)
        return EvaluationResult(
            auc=roc_auc_score(y, scores),
            f1=f1_score(y, preds),
            report=classification_report(y, preds),
            fpr=fpr,
            tpr=tpr,
            n_test=len(test),
        )

    def explain(
        self, observations: list[Observation]
    ) -> SHAPExplanation:
        """Exact TreeSHAP attributions for a batch of observations."""
        X = self._require_builder().vectorize(observations)
        return shap_values(
            self.classifier, X, feature_names=tuple(self.feature_names)
        )

    def feature_importances(self, top_k: int | None = None) -> list[tuple[str, float]]:
        """Gain-based importances paired with feature names."""
        importances = self.classifier.feature_importances_
        names = self.feature_names
        order = np.argsort(-importances)
        if top_k is not None:
            order = order[:top_k]
        return [(names[i], float(importances[i])) for i in order]

    # -- hyper-parameter tuning ------------------------------------------------------

    def tune(
        self,
        dataset: LabelledDataset,
        train_idx: np.ndarray,
        val_idx: np.ndarray,
        n_iter: int = 15,
        seed: int = 0,
    ) -> GBDTParams:
        """Bayesian-optimize hyper-parameters on a validation AUC objective.

        Updates ``self.params`` to the best configuration and returns it
        (the model still needs a final :meth:`fit`).

        Trial-invariant work is shared across the whole search: one
        :class:`~repro.ml.tree.HistogramBinner` is fitted on the training
        matrix up front and both matrices are binned exactly once; every
        trial then trains from the pre-binned codes
        (``fit(..., binner=...)``) and scores the validation split through
        the binned inference path.  Tuning results are identical to the
        unshared loop — each trial's fresh binner would be fitted on the
        same matrix, and binned scoring is bitwise-equal to the float
        path — it just skips the redundant re-binning per trial.
        """
        builder = self._require_builder()
        train_obs = [dataset[i] for i in train_idx]
        val_obs = [dataset[i] for i in val_idx]
        X_train = builder.vectorize(train_obs)
        y_train = builder.labels(train_obs)
        X_val = builder.vectorize(val_obs)
        y_val = builder.labels(val_obs)

        space = SearchSpace(
            {
                "learning_rate": ParamSpec(0.03, 0.5, log=True),
                "max_depth": ParamSpec(3, 8, integer=True),
                "n_estimators": ParamSpec(40, 250, integer=True),
                "min_child_weight": ParamSpec(0.5, 20.0, log=True),
                "subsample": ParamSpec(0.5, 1.0),
            }
        )

        binner = HistogramBinner(max_bins=self.params.max_bins).fit(X_train)
        shared = (binner, binner.transform(X_train), binner.transform(X_val))

        def objective(params: dict, resources) -> float:
            shared_binner, Xb_train, Xb_val = resources
            clf = GradientBoostedClassifier(
                GBDTParams(
                    n_estimators=int(params["n_estimators"]),
                    learning_rate=float(params["learning_rate"]),
                    max_depth=int(params["max_depth"]),
                    min_child_weight=float(params["min_child_weight"]),
                    subsample=float(params["subsample"]),
                    max_bins=shared_binner.max_bins,
                    random_state=seed,
                )
            ).fit(Xb_train, y_train, binner=shared_binner)
            return roc_auc_score(y_val, clf.predict_proba(Xb_val, binned=True))

        best, _value, _opt = maximize(
            objective, space, n_iter=n_iter, seed=seed, resources=shared
        )
        self.params = GBDTParams(
            n_estimators=int(best["n_estimators"]),
            learning_rate=float(best["learning_rate"]),
            max_depth=int(best["max_depth"]),
            min_child_weight=float(best["min_child_weight"]),
            subsample=float(best["subsample"]),
            max_bins=binner.max_bins,
            random_state=seed,
        )
        return self.params
