"""End-to-end pipeline: simulate the world, derive the labelled dataset.

``build_world`` runs the full data-generation chain the paper assembles
from public sources:

    Fabric -> providers -> BDC filings -> challenges -> NBM releases
           -> FRN table -> WHOIS registry -> ASN crosswalk
           -> Ookla tiles -> hex re-projection -> coverage scores
           -> MLab tests -> attribution + localization

``build_dataset`` then assembles the labelled observations (challenges +
changes + synthetic likely-served, balanced per provider/state), and
``make_feature_builder`` wires up Table-4 vectorization over the
filings' columnar claim store.

``docs/ARCHITECTURE.md`` (repo root) expands this chain into a
module-by-module map, including the columnar-store and binned-inference
layers underneath feature building and scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.asn.matching import CrosswalkResult, match_providers_to_asns
from repro.asn.whois import WhoisRegistry, build_whois_registry
from repro.core.config import ScenarioConfig
from repro.dataset.balance import balance_dataset
from repro.dataset.labeling import LabelingInputs, _claim_states, build_labelled_dataset
from repro.dataset.likely_served import (
    MLabLocalization,
    localize_mlab_tests,
    service_coverage_scores,
)
from repro.dataset.observations import LabelledDataset
from repro.fcc.bdc import AvailabilityTable, ClaimKey, generate_filings
from repro.fcc.challenges import ChallengeRecord, simulate_challenges
from repro.fcc.fabric import Fabric, generate_fabric
from repro.fcc.frn import ProviderIDTable, build_provider_id_table
from repro.fcc.providers import ProviderUniverse, generate_providers
from repro.fcc.releases import (
    ReleaseTimeline,
    build_release_timeline,
    infer_unarchived_changes,
)
from repro.features.vectorize import FeatureBuilder
from repro.geo.reproject import HexAggregate, OoklaTileAggregate, reproject_tiles
from repro.obs.metrics import get_metrics
from repro.speedtests.mlab import MLabTest, generate_mlab_tests
from repro.speedtests.ookla import generate_ookla_tiles

__all__ = [
    "PipelineHooks",
    "SimulationWorld",
    "build_world",
    "build_dataset",
    "make_feature_builder",
    "enrichment_from_world",
]


@dataclass(frozen=True)
class PipelineHooks:
    """Stage hooks into :func:`build_world` — the scenario-mutator surface.

    Each hook runs immediately after its stage produces an artifact and
    may either mutate that artifact in place and return ``None``, or
    return a replacement.  Downstream stages (challenges, Ookla tiles,
    MLab tests, labels, ...) all consume the hooked artifact, so a
    mutation propagates through the whole simulated world exactly as a
    real filing pathology would propagate through the real data chain.

    The scenario registry (:mod:`repro.scenarios`) builds adversarial
    worlds exclusively through these hooks; the Jefferson County Cable
    case study's ``mutate_universe`` is the ``post_universe`` special
    case kept as a convenience parameter on :func:`build_world`.
    """

    #: ``(fabric, universe) -> ProviderUniverse | None`` — after provider
    #: generation, before filings (add providers, rewrite footprints).
    post_universe: Callable | None = None
    #: ``(fabric, universe, table) -> AvailabilityTable | None`` — after
    #: filing generation, before challenges and crowdsource signals.
    post_filings: Callable | None = None
    #: ``(table, universe, challenges) -> list[ChallengeRecord] | None``
    #: — after the challenge simulation, before the release timeline.
    post_challenges: Callable | None = None
    #: ``(table, challenges, timeline) -> ReleaseTimeline | None`` —
    #: after release-timeline assembly, before map-diff change inference.
    post_timeline: Callable | None = None


def _apply_hook(hook, artifact, *args):
    """Run one stage hook; a ``None`` return keeps the (mutated) artifact."""
    if hook is None:
        return artifact
    replacement = hook(*args, artifact)
    return artifact if replacement is None else replacement


@dataclass
class SimulationWorld:
    """Every artifact of one simulated BDC cycle."""

    config: ScenarioConfig
    fabric: Fabric
    universe: ProviderUniverse
    table: AvailabilityTable
    challenges: list[ChallengeRecord]
    timeline: ReleaseTimeline
    changes: frozenset[ClaimKey]
    provider_table: ProviderIDTable
    registry: WhoisRegistry
    crosswalk: CrosswalkResult
    ookla_tiles: list[OoklaTileAggregate]
    hex_aggregates: dict[int, HexAggregate]
    mlab_tests: list[MLabTest]
    coverage_scores: dict[int, float]
    localization: MLabLocalization

    def labeling_inputs(self) -> LabelingInputs:
        return LabelingInputs(
            table=self.table,
            challenges=self.challenges,
            changes=self.changes,
            coverage_scores=self.coverage_scores,
            localization=self.localization,
        )


def build_world(
    config: ScenarioConfig,
    mutate_universe=None,
    hooks: PipelineHooks | None = None,
) -> SimulationWorld:
    """Run the full simulation chain for a scenario.

    ``mutate_universe(fabric, universe)``, when given, runs after provider
    generation and before filings — the hook the Jefferson County Cable
    case study uses to inject its deliberately-overclaiming provider.
    ``hooks`` generalizes it to every pipeline stage
    (:class:`PipelineHooks`); ``mutate_universe`` runs before
    ``hooks.post_universe`` when both are given.
    """
    seed = config.seed
    hooks = hooks or PipelineHooks()

    # Per-stage wall-time telemetry in the process-wide registry: every
    # stage (and the hooks riding its seam) lands in one histogram
    # labelled by stage name, so slow-world diagnoses don't need a
    # profiler run.
    def _stage(name: str):
        return get_metrics().histogram("pipeline_stage_seconds", stage=name).time()

    with _stage("fabric"):
        fabric = generate_fabric(config.fabric, seed=seed)
    with _stage("providers"):
        universe = generate_providers(fabric, config.providers, seed=seed)
        if mutate_universe is not None:
            mutate_universe(fabric, universe)
        universe = _apply_hook(hooks.post_universe, universe, fabric)
    with _stage("filings"):
        table = generate_filings(fabric, universe, seed=seed)
        table = _apply_hook(hooks.post_filings, table, fabric, universe)
    with _stage("challenges"):
        challenges = simulate_challenges(
            table, universe, config.challenges, seed=seed
        )
        challenges = _apply_hook(hooks.post_challenges, challenges, table, universe)
    with _stage("timeline"):
        timeline = build_release_timeline(
            table, universe, challenges,
            n_minor_releases=config.challenges.n_minor_releases, seed=seed,
        )
        timeline = _apply_hook(hooks.post_timeline, timeline, table, challenges)
        changes = infer_unarchived_changes(timeline, challenges)
    with _stage("whois"):
        provider_table = build_provider_id_table(universe, seed=seed)
        registry = build_whois_registry(universe, config.whois, seed=seed)
        crosswalk = match_providers_to_asns(provider_table, registry)

    with _stage("ookla"):
        ookla_tiles = generate_ookla_tiles(fabric, table, config.ookla, seed=seed)
        hex_aggregates = reproject_tiles(
            ookla_tiles, res=fabric.config.hex_resolution
        )
        coverage_scores = service_coverage_scores(fabric, hex_aggregates)

    with _stage("mlab"):
        routing = {pid: registry.routing_asns(pid) for pid in registry.ownership}
        mlab_tests = generate_mlab_tests(
            fabric, table, routing, config.mlab, seed=seed
        )
        claimed_by_provider = {
            p.provider_id: universe.claimed_cells(p.provider_id)
            for p in universe.providers
        }
        localization = localize_mlab_tests(
            mlab_tests,
            crosswalk,
            claimed_by_provider,
            res=fabric.config.hex_resolution,
        )
    return SimulationWorld(
        config=config,
        fabric=fabric,
        universe=universe,
        table=table,
        challenges=challenges,
        timeline=timeline,
        changes=changes,
        provider_table=provider_table,
        registry=registry,
        crosswalk=crosswalk,
        ookla_tiles=ookla_tiles,
        hex_aggregates=hex_aggregates,
        mlab_tests=mlab_tests,
        coverage_scores=coverage_scores,
        localization=localization,
    )


def build_dataset(
    world: SimulationWorld,
    use_challenges: bool = True,
    use_changes: bool = True,
    use_synthetic: bool = True,
    balance: bool = True,
    exclude_satellite: bool = True,
) -> LabelledDataset:
    """Assemble the labelled dataset (Fig. 7's ablation toggles included).

    With ``balance=True`` (the paper's configuration), synthetic
    likely-served labels are added per provider/state to offset the
    unserved-heavy challenge and change labels; ``use_synthetic`` then
    controls whether synthetic candidates are available at all.
    ``exclude_satellite`` drops claims from non-terrestrial providers, as
    the paper does (GSO satellite claims blanket the country and carry no
    integrity signal).
    """
    inputs = world.labeling_inputs()
    base = build_labelled_dataset(
        inputs,
        use_challenges=use_challenges,
        use_changes=use_changes,
        use_synthetic=False,
        coverage_threshold=world.config.coverage_threshold,
    )
    if use_synthetic and balance:
        dataset = balance_dataset(
            base,
            world.table,
            world.coverage_scores,
            world.localization,
            _claim_states(world.table),
            coverage_threshold=world.config.coverage_threshold,
        )
    elif use_synthetic:
        dataset = build_labelled_dataset(
            inputs,
            use_challenges=use_challenges,
            use_changes=use_changes,
            use_synthetic=True,
            coverage_threshold=world.config.coverage_threshold,
        )
    else:
        dataset = base
    if exclude_satellite:
        satellite = {
            p.provider_id for p in world.universe.providers if p.is_satellite
        }
        dataset = dataset.filter(lambda obs: obs.provider_id not in satellite)
    return dataset


def make_feature_builder(
    world: SimulationWorld, enrichment=None
) -> FeatureBuilder:
    """Wire the Table-4 feature builder for a world.

    The returned builder vectorizes observation batches columnarly (one
    preallocated matrix, grouped centroid/embedding fills) — the intended
    entry point for model training and batch scoring alike.  Passing an
    :class:`repro.enrich.Enrichment` (see :func:`enrichment_from_world`)
    appends the measured-truth feature block and bumps the builder's
    feature-set version.
    """
    return FeatureBuilder(
        fabric=world.fabric,
        universe=world.universe,
        table=world.table,
        coverage_scores=world.coverage_scores,
        localization=world.localization,
        embedding_dim=world.config.embedding_dim,
        enrichment=enrichment,
    )


def enrichment_from_world(world: SimulationWorld):
    """Build the measured-truth enrichment join for a simulated world.

    Re-runs the MLab attribution over the world's tests to aggregate
    measured throughputs per (provider, cell) tile, and joins the
    simulated challenge outcomes at the same grain.
    """
    from repro.enrich import ChallengeJoin, Enrichment, build_truth_map

    claimed_by_provider = {
        p.provider_id: world.universe.claimed_cells(p.provider_id)
        for p in world.universe.providers
    }
    truthmap = build_truth_map(
        world.mlab_tests,
        world.crosswalk,
        claimed_by_provider,
        res=world.fabric.config.hex_resolution,
    )
    challenges = ChallengeJoin.from_records(world.challenges)
    return Enrichment(truthmap, challenges=challenges)
