"""Slice-level evaluation reports (paper Tables 7-8, Figure 6).

Given a fitted model and a held-out set, these helpers compute the
classification outcome mix (TN/TP/FN/FP percentages) per slice —
technology, state, or provider — alongside the class-average values of
the prominent features, exactly the layout of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import NBMIntegrityModel
from repro.dataset.observations import LabelledDataset, Observation
from repro.dataset.splits import Split
from repro.fcc.providers import TECHNOLOGY_NAMES

__all__ = [
    "SliceReport",
    "slice_report",
    "technology_reports",
    "state_reports",
    "provider_reports",
    "audit_priority_report",
]

#: Outcome classes in paper order.
_CLASSES = ("TN", "TP", "FN", "FP")


@dataclass
class SliceReport:
    """Outcome mix and class-average features for one slice."""

    slice_name: str
    n: int
    class_pct: dict[str, float]
    #: class -> feature name -> mean value over observations in the class.
    class_feature_means: dict[str, dict[str, float]]

    @property
    def accuracy(self) -> float:
        return (self.class_pct["TN"] + self.class_pct["TP"]) / 100.0


def _outcome_class(label: int, pred: int) -> str:
    if label == 1 and pred == 1:
        return "TP"
    if label == 0 and pred == 0:
        return "TN"
    if label == 1 and pred == 0:
        return "FN"
    return "FP"


def slice_report(
    model: NBMIntegrityModel,
    observations: list[Observation],
    slice_name: str,
    feature_names: tuple[str, ...] = ("Ookla (Dev/Loc)", "MLab Test Counts"),
) -> SliceReport:
    """Classification-outcome report for one slice of observations."""
    if not observations:
        raise ValueError("empty slice")
    y = model.builder.labels(observations)
    preds = model.predict(observations)
    X = model.builder.vectorize(observations)
    all_names = model.builder.feature_names
    indices = {name: all_names.index(name) for name in feature_names}

    classes = np.array(
        [_outcome_class(int(label), int(pred)) for label, pred in zip(y, preds)]
    )
    n = len(observations)
    class_pct = {c: 100.0 * float((classes == c).mean()) for c in _CLASSES}
    means: dict[str, dict[str, float]] = {}
    for c in _CLASSES:
        mask = classes == c
        if mask.any():
            means[c] = {
                name: float(X[mask, idx].mean()) for name, idx in indices.items()
            }
        else:
            means[c] = {name: float("nan") for name in indices}
    return SliceReport(
        slice_name=slice_name, n=n, class_pct=class_pct, class_feature_means=means
    )


def technology_reports(
    model: NBMIntegrityModel,
    dataset: LabelledDataset,
    split: Split,
    feature_names: tuple[str, ...] = ("Ookla (Dev/Loc)", "MLab Test Counts"),
    min_slice: int = 30,
) -> list[SliceReport]:
    """Per-technology reports over a split's test set (paper Table 7)."""
    test = split.test(dataset)
    by_tech: dict[int, list[Observation]] = {}
    for obs in test:
        by_tech.setdefault(obs.technology, []).append(obs)
    out = []
    for tech in sorted(by_tech, key=lambda t: -len(by_tech[t])):
        rows = by_tech[tech]
        if len(rows) < min_slice:
            continue
        name = f"{TECHNOLOGY_NAMES.get(tech, str(tech))} ({tech})"
        out.append(slice_report(model, rows, name, feature_names))
    return out


def state_reports(
    model: NBMIntegrityModel,
    dataset: LabelledDataset,
    split: Split,
    feature_names: tuple[str, ...] = (
        "Ookla (Dev/Loc)",
        "MLab Test Counts",
        "Max Adv. DL Speed (Mbps)",
        "Max Adv. UL Speed (Mbps)",
    ),
    min_slice: int = 100,
) -> list[SliceReport]:
    """Per-state reports over a split's test set (paper Table 8)."""
    test = split.test(dataset)
    by_state: dict[str, list[Observation]] = {}
    for obs in test:
        by_state.setdefault(obs.state, []).append(obs)
    out = []
    for state in sorted(by_state, key=lambda s: -len(by_state[s])):
        rows = by_state[state]
        if len(rows) < min_slice:
            continue
        out.append(slice_report(model, rows, state, feature_names))
    return out


def provider_reports(
    model: NBMIntegrityModel,
    dataset: LabelledDataset,
    split: Split,
    provider_ids: dict[int, str],
    min_slice: int = 20,
) -> list[SliceReport]:
    """Per-provider reports (paper Fig. 6 evaluates the 8 major ISPs)."""
    test = split.test(dataset)
    by_provider: dict[int, list[Observation]] = {}
    for obs in test:
        if obs.provider_id in provider_ids:
            by_provider.setdefault(obs.provider_id, []).append(obs)
    out = []
    for pid, rows in sorted(by_provider.items(), key=lambda kv: -len(kv[1])):
        if len(rows) < min_slice:
            continue
        out.append(slice_report(model, rows, provider_ids[pid]))
    return out


def audit_priority_report(
    store, enrichment=None, top: int = 25
) -> list[dict]:
    """Top audit-priority (state, provider) groups as report rows.

    The report-surface view of :func:`repro.enrich.build_priority`: the
    composite of suspicion percentile, measured overstatement, and
    challenge density, materialized from a built score store.  Returns
    the ``top`` highest-priority rows as the same record dicts the
    ``/v2/analytics/priority`` endpoint pages through.
    """
    from repro.enrich.priority import build_priority

    table = build_priority(store, enrichment=enrichment)
    records, _, _ = table.page(after_rank=0, limit=top)
    return records
