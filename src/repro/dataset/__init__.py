"""Dataset pipeline: observations, likely-served inference, labeling,
balancing, and the paper's three holdout strategies."""

from repro.dataset.balance import balance_dataset
from repro.dataset.labeling import (
    LabelingInputs,
    build_labelled_dataset,
    label_from_challenges,
    label_from_changes,
)
from repro.dataset.likely_served import (
    MAX_GEOLOCATION_RADIUS_M,
    MLabLocalization,
    likely_served_claims,
    localize_mlab_tests,
    service_coverage_scores,
)
from repro.dataset.observations import (
    LabelledDataset,
    LabelSource,
    Observation,
    ObservationColumns,
    observation_columns,
)
from repro.dataset.splits import (
    PAPER_HOLDOUT_STATES,
    Split,
    fcc_adjudicated_split,
    random_observation_split,
    state_holdout_split,
    train_validation_split,
)

__all__ = [
    "balance_dataset",
    "LabelingInputs",
    "build_labelled_dataset",
    "label_from_challenges",
    "label_from_changes",
    "MAX_GEOLOCATION_RADIUS_M",
    "MLabLocalization",
    "likely_served_claims",
    "localize_mlab_tests",
    "service_coverage_scores",
    "LabelledDataset",
    "LabelSource",
    "Observation",
    "ObservationColumns",
    "observation_columns",
    "PAPER_HOLDOUT_STATES",
    "Split",
    "fcc_adjudicated_split",
    "random_observation_split",
    "state_holdout_split",
    "train_validation_split",
]
