"""Per-provider / per-state dataset balancing (paper §4.3).

Challenge- and change-derived labels overwhelmingly mark claims *unserved*
(they record removals), so training on them alone biases the model toward
predicting everything suspicious.  The paper balances by adding synthetic
likely-served observations — ordered by descending service coverage score
— per provider within each state, falling back to balancing the state as
a whole when a provider lacks enough candidates.
"""

from __future__ import annotations

from repro.dataset.likely_served import MLabLocalization, likely_served_claims
from repro.dataset.observations import LabelledDataset, LabelSource, Observation
from repro.fcc.bdc import AvailabilityTable, ClaimKey

__all__ = ["balance_dataset"]


def balance_dataset(
    base: LabelledDataset,
    table: AvailabilityTable,
    coverage_scores: dict[int, float],
    localization: MLabLocalization,
    claim_states: dict[ClaimKey, str],
    coverage_threshold: float = 1.0,
) -> LabelledDataset:
    """Balance unserved/served counts with synthetic likely-served labels.

    For every (state, provider) with more unserved than served labels, add
    the provider's highest-scoring likely-served claims until balanced.
    Any remaining statewide imbalance is patched with other providers'
    candidates in the same state (the paper's state-level fallback).
    """
    candidates = likely_served_claims(
        table, coverage_scores, localization, threshold=coverage_threshold
    )
    used: set[ClaimKey] = {obs.claim_key for obs in base}
    # Candidate pools keyed by (state, provider) and by state, score-ordered.
    by_state_provider: dict[tuple[str, int], list[ClaimKey]] = {}
    by_state: dict[str, list[ClaimKey]] = {}
    for key, _score in candidates:
        state = claim_states.get(key)
        if state is None or key in used:
            continue
        by_state_provider.setdefault((state, key[0]), []).append(key)
        by_state.setdefault(state, []).append(key)

    deficits: dict[tuple[str, int], int] = {}
    for obs in base:
        delta = 1 if obs.unserved else -1
        key = (obs.state, obs.provider_id)
        deficits[key] = deficits.get(key, 0) + delta

    added: list[Observation] = []
    taken: set[ClaimKey] = set()

    def _take(key: ClaimKey, state: str) -> None:
        taken.add(key)
        added.append(
            Observation(
                provider_id=key[0],
                cell=key[1],
                technology=key[2],
                state=state,
                unserved=0,
                source=LabelSource.SYNTHETIC,
            )
        )

    state_residual: dict[str, int] = {}
    for (state, pid), deficit in sorted(deficits.items()):
        if deficit <= 0:
            state_residual[state] = state_residual.get(state, 0)
            continue
        pool = by_state_provider.get((state, pid), [])
        take = 0
        for key in pool:
            if take >= deficit:
                break
            if key in taken:
                continue
            _take(key, state)
            take += 1
        state_residual[state] = state_residual.get(state, 0) + (deficit - take)

    # State-level fallback: patch remaining deficit with any provider's
    # candidates in the state.
    for state, residual in sorted(state_residual.items()):
        if residual <= 0:
            continue
        for key in by_state.get(state, []):
            if residual <= 0:
                break
            if key in taken:
                continue
            _take(key, state)
            residual -= 1

    return LabelledDataset(list(base) + added)
