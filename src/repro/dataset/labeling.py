"""Label assembly: challenges -> changes -> synthetic (paper §4.3).

Label precedence follows the paper: successfully-challenged claims are
unserved and failed challenges served; quietly-removed claims (map diffs
not explained by a public challenge) are unserved; crowdsource-inferred
likely-served claims are served.  The per-provider/per-state balancing
lives in :mod:`repro.dataset.balance`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.likely_served import likely_served_claims
from repro.dataset.observations import LabelledDataset, LabelSource, Observation
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.challenges import ChallengeRecord
from repro.fcc.states import STATES

__all__ = ["LabelingInputs", "label_from_challenges", "label_from_changes", "build_labelled_dataset"]


def _claim_states(table: AvailabilityTable) -> dict[ClaimKey, str]:
    """State of each hex-level claim (from its filing rows)."""
    out: dict[ClaimKey, str] = {}
    keys = table.claim_keys()
    import numpy as np

    uniq, first = np.unique(keys, return_index=True)
    for k, row in zip(uniq, first):
        key = (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
        out[key] = STATES[int(table.state_idx[row])].abbr
    return out


def label_from_challenges(
    challenges: list[ChallengeRecord],
    include_second_release: bool = False,
) -> list[Observation]:
    """Observations labelled by challenge outcomes.

    Successful challenge -> unserved; failed challenge -> served.  The
    paper restricts to the initial NBM release's challenge wave.
    """
    out = []
    for record in challenges:
        if record.major_release != 0 and not include_second_release:
            continue
        out.append(
            Observation(
                provider_id=record.provider_id,
                cell=record.cell,
                technology=record.technology,
                state=record.state,
                unserved=1 if record.succeeded else 0,
                source=LabelSource.CHALLENGE,
                fcc_adjudicated=record.fcc_adjudicated,
            )
        )
    return out


def label_from_changes(
    changes: frozenset[ClaimKey] | set[ClaimKey],
    claim_states: dict[ClaimKey, str],
) -> list[Observation]:
    """Observations from non-archived removals: all labelled unserved."""
    out = []
    for key in sorted(changes):
        state = claim_states.get(key)
        if state is None:
            continue
        out.append(
            Observation(
                provider_id=key[0],
                cell=key[1],
                technology=key[2],
                state=state,
                unserved=1,
                source=LabelSource.CHANGE,
            )
        )
    return out


@dataclass
class LabelingInputs:
    """Everything the labeller consumes (produced by the pipeline)."""

    table: AvailabilityTable
    challenges: list[ChallengeRecord]
    changes: frozenset[ClaimKey]
    coverage_scores: dict[int, float]
    localization: object  # MLabLocalization (duck-typed to avoid import cycle)


def build_labelled_dataset(
    inputs: LabelingInputs,
    use_challenges: bool = True,
    use_changes: bool = True,
    use_synthetic: bool = True,
    coverage_threshold: float = 1.0,
) -> LabelledDataset:
    """Assemble the labelled dataset from the selected sources.

    The source toggles drive the paper's Figure-7 ablation (challenges
    only; + changes; + synthetic; all).  Synthetic candidates are added by
    :mod:`repro.dataset.balance`; here they are appended unbalanced when
    requested without balancing — callers wanting the paper's balanced
    dataset should use :func:`repro.dataset.balance.balance_dataset`.
    """
    observations: list[Observation] = []
    claim_states = _claim_states(inputs.table)
    if use_challenges:
        observations.extend(label_from_challenges(inputs.challenges))
    if use_changes:
        observations.extend(label_from_changes(inputs.changes, claim_states))
    if use_synthetic:
        for key, _score in likely_served_claims(
            inputs.table,
            inputs.coverage_scores,
            inputs.localization,
            threshold=coverage_threshold,
        ):
            state = claim_states.get(key)
            if state is None:
                continue
            observations.append(
                Observation(
                    provider_id=key[0],
                    cell=key[1],
                    technology=key[2],
                    state=state,
                    unserved=0,
                    source=LabelSource.SYNTHETIC,
                )
            )
    return LabelledDataset(observations)
