"""Inferring likely served locations from crowdsourced tests (paper §4.2).

Two crowdsourced signals combine into synthetic "known good" claims:

1. **Ookla service coverage score** — unique testing devices per BSL in a
   hex cell.  A score >= 1 means the cell saw at least one device per
   serviceable location: service is clearly available there from *some*
   provider (Ookla has no provider attribution).
2. **MLab provider localization** — each NDT7 test is attributed to a
   provider through the ASN crosswalk, then localized to the hexes within
   its geolocation accuracy radius (tests with radius > 20 km are
   dropped), intersected with the provider's claimed NBM footprint.

A claim (provider, cell, technology) is *likely served* when the cell's
coverage score clears the threshold, an attributed MLab test could have
run in the cell from that provider's network, and the provider claims the
cell in the NBM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asn.matching import CrosswalkResult
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.fabric import Fabric
from repro.geo import cells_within_radius
from repro.geo.reproject import HexAggregate
from repro.speedtests.mlab import MLabTest
from repro.utils.indexing import MultiColumnIndex

__all__ = [
    "service_coverage_scores",
    "MLabLocalization",
    "localize_mlab_tests",
    "likely_served_claims",
    "MAX_GEOLOCATION_RADIUS_M",
]

#: Paper §4.2.2: tests with accuracy radius above 20 km are excluded.
MAX_GEOLOCATION_RADIUS_M = 20_000.0


def service_coverage_scores(
    fabric: Fabric, hex_aggregates: dict[int, HexAggregate]
) -> dict[int, float]:
    """Ookla unique devices per BSL for every occupied cell.

    Cells with Ookla data but no Fabric locations are skipped (nothing to
    serve); cells with locations but no tests score 0.
    """
    scores: dict[int, float] = {}
    for cell in fabric.occupied_cells:
        n_bsl = fabric.bsl_count_in_cell(cell)
        agg = hex_aggregates.get(cell)
        devices = agg.devices if agg is not None else 0
        scores[cell] = devices / n_bsl if n_bsl else 0.0
    return scores


@dataclass
class MLabLocalization:
    """Per-provider hex localizations of attributed MLab tests."""

    #: provider_id -> set of cells an attributed test may have run in.
    cells_by_provider: dict[int, set[int]]
    #: (provider_id, cell) -> number of attributed tests localized there.
    test_counts: dict[tuple[int, int], int]
    #: Tests dropped for exceeding the radius cap.
    n_dropped_radius: int
    #: Tests dropped because their ASN matched no provider.
    n_dropped_unattributed: int
    #: Lazily-built columnar (provider, cell) -> count index.
    _count_index: "MultiColumnIndex | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _count_values: "np.ndarray | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def provider_test_count(self, provider_id: int, cell: int) -> int:
        return self.test_counts.get((provider_id, int(cell)), 0)

    def provider_test_counts(
        self, provider_ids: np.ndarray, cells: np.ndarray
    ) -> np.ndarray:
        """Attributed test count per (provider, cell) pair, vectorized.

        Element-wise equal to :meth:`provider_test_count`, but resolved
        through a lazily-built two-column index
        (:class:`repro.utils.indexing.MultiColumnIndex`) so batch feature
        building gathers all counts in one pass.
        """
        index, counts = self._count_columns()
        pos = index.positions(
            np.asarray(provider_ids, dtype=np.int64),
            np.asarray(cells, dtype=np.uint64),
        )
        out = np.zeros(pos.size, dtype=np.int64)
        found = pos >= 0
        out[found] = counts[pos[found]]
        return out

    def _count_columns(self) -> tuple[MultiColumnIndex, np.ndarray]:
        if self._count_index is None:
            n = len(self.test_counts)
            pids = np.empty(n, dtype=np.int64)
            cells = np.empty(n, dtype=np.uint64)
            counts = np.empty(n, dtype=np.int64)
            for i, ((pid, cell), count) in enumerate(self.test_counts.items()):
                pids[i] = pid
                cells[i] = cell
                counts[i] = count
            self._count_index = MultiColumnIndex(pids, cells)
            self._count_values = counts
        return self._count_index, self._count_values


def localize_mlab_tests(
    tests: list[MLabTest],
    crosswalk: CrosswalkResult,
    claimed_cells_by_provider: dict[int, set[int]],
    res: int = 8,
    max_radius_m: float = MAX_GEOLOCATION_RADIUS_M,
) -> MLabLocalization:
    """Attribute and localize MLab tests (paper §4.2.2).

    Each test's candidate hexes (centroids within the accuracy radius) are
    intersected with the claimed footprint of every provider its ASN maps
    to.  Shared ASNs legitimately attribute one test to several providers.
    """
    asn_to_providers: dict[int, set[int]] = {}
    for pid, asns in crosswalk.union.items():
        for asn in asns:
            asn_to_providers.setdefault(asn, set()).add(pid)

    cells_by_provider: dict[int, set[int]] = {}
    test_counts: dict[tuple[int, int], int] = {}
    dropped_radius = 0
    dropped_unattributed = 0

    for test in tests:
        if test.accuracy_radius_m > max_radius_m:
            dropped_radius += 1
            continue
        providers = asn_to_providers.get(test.asn)
        if not providers:
            dropped_unattributed += 1
            continue
        candidates = set(
            cells_within_radius(test.lat, test.lng, test.accuracy_radius_m, res)
        )
        for pid in providers:
            claimed = claimed_cells_by_provider.get(pid)
            if not claimed:
                continue
            hits = candidates & claimed
            if not hits:
                continue
            cells_by_provider.setdefault(pid, set()).update(hits)
            for cell in hits:
                key = (pid, int(cell))
                test_counts[key] = test_counts.get(key, 0) + 1

    return MLabLocalization(
        cells_by_provider=cells_by_provider,
        test_counts=test_counts,
        n_dropped_radius=dropped_radius,
        n_dropped_unattributed=dropped_unattributed,
    )


def likely_served_claims(
    table: AvailabilityTable,
    coverage_scores: dict[int, float],
    localization: MLabLocalization,
    threshold: float = 1.0,
) -> list[tuple[ClaimKey, float]]:
    """Candidate "known good" claims, sorted by descending coverage score.

    A claim qualifies when (a) its cell's Ookla coverage score is >= the
    threshold, and (b) an MLab test attributed to the claim's provider was
    localized to the cell.  Returns (claim, score) pairs.
    """
    out: list[tuple[ClaimKey, float]] = []
    for key in table.unique_claims():
        pid, cell, _tech = key
        score = coverage_scores.get(cell, 0.0)
        if score < threshold:
            continue
        provider_cells = localization.cells_by_provider.get(pid)
        if not provider_cells or cell not in provider_cells:
            continue
        out.append((key, score))
    out.sort(key=lambda pair: (-pair[1], pair[0]))
    return out
