"""Labelled observations: the unit of analysis (paper §4.3).

An observation is a (provider, H3-resolution-8 cell, technology) triple —
the natural grain of the public NBM — carrying a binary label:
``unserved=1`` (the claim would fail a challenge; the model's positive,
"suspicious" class) or ``unserved=0`` (served / claim valid).  Each label
records its provenance: public challenge, non-archived map change, or
synthetic likely-served inference.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.fcc.bdc import ClaimKey

__all__ = ["LabelSource", "Observation", "LabelledDataset"]


class LabelSource(enum.Enum):
    """Where a label came from (the paper's three sources)."""

    CHALLENGE = "challenge"
    CHANGE = "change"
    SYNTHETIC = "synthetic"


@dataclass(frozen=True)
class Observation:
    """One labelled (provider, cell, technology) observation."""

    provider_id: int
    cell: int
    technology: int
    state: str
    #: 1 = unserved (claim likely fails a challenge), 0 = served.
    unserved: int
    source: LabelSource
    #: True when the label came from an FCC-adjudicated challenge.
    fcc_adjudicated: bool = False

    @property
    def claim_key(self) -> ClaimKey:
        return (self.provider_id, self.cell, self.technology)


class LabelledDataset:
    """An ordered, de-duplicated collection of observations."""

    def __init__(self, observations: list[Observation]):
        seen: dict[ClaimKey, Observation] = {}
        for obs in observations:
            # First label wins: challenges are added before changes before
            # synthetic, mirroring the paper's precedence.
            seen.setdefault(obs.claim_key, obs)
        self.observations = list(seen.values())

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    def __getitem__(self, index):
        return self.observations[index]

    @property
    def labels(self) -> list[int]:
        return [obs.unserved for obs in self.observations]

    def composition(self) -> dict[LabelSource, float]:
        """Fraction of observations per label source (paper: 51/22/27 %)."""
        counts = Counter(obs.source for obs in self.observations)
        total = max(1, len(self.observations))
        return {source: counts.get(source, 0) / total for source in LabelSource}

    def class_balance(self) -> float:
        """Fraction of observations labelled unserved."""
        if not self.observations:
            return 0.0
        return sum(self.labels) / len(self.observations)

    def by_state(self) -> dict[str, list[Observation]]:
        out: dict[str, list[Observation]] = {}
        for obs in self.observations:
            out.setdefault(obs.state, []).append(obs)
        return out

    def by_provider(self) -> dict[int, list[Observation]]:
        out: dict[int, list[Observation]] = {}
        for obs in self.observations:
            out.setdefault(obs.provider_id, []).append(obs)
        return out

    def filter(self, predicate) -> "LabelledDataset":
        """A new dataset keeping observations where ``predicate(obs)``."""
        return LabelledDataset([obs for obs in self.observations if predicate(obs)])

    def states(self) -> set[str]:
        return {obs.state for obs in self.observations}
