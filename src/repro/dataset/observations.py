"""Labelled observations: the unit of analysis (paper §4.3).

An observation is a (provider, H3-resolution-8 cell, technology) triple —
the natural grain of the public NBM — carrying a binary label:
``unserved=1`` (the claim would fail a challenge; the model's positive,
"suspicious" class) or ``unserved=0`` (served / claim valid).  Each label
records its provenance: public challenge, non-archived map change, or
synthetic likely-served inference.

Batch consumers (feature building, scoring) work on
:class:`ObservationColumns` — the struct-of-arrays transpose of an
observation list produced by :func:`observation_columns` in one
attribute-extraction pass, after which every per-observation lookup
becomes a vectorized gather.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.fcc.bdc import ClaimKey

__all__ = [
    "LabelSource",
    "Observation",
    "ObservationColumns",
    "LabelledDataset",
    "observation_columns",
]


class LabelSource(enum.Enum):
    """Where a label came from (the paper's three sources)."""

    CHALLENGE = "challenge"
    CHANGE = "change"
    SYNTHETIC = "synthetic"


@dataclass(frozen=True)
class Observation:
    """One labelled (provider, cell, technology) observation."""

    provider_id: int
    cell: int
    technology: int
    state: str
    #: 1 = unserved (claim likely fails a challenge), 0 = served.
    unserved: int
    source: LabelSource
    #: True when the label came from an FCC-adjudicated challenge.
    fcc_adjudicated: bool = False

    @property
    def claim_key(self) -> ClaimKey:
        return (self.provider_id, self.cell, self.technology)


@dataclass(frozen=True)
class ObservationColumns:
    """Struct-of-arrays transpose of an observation batch.

    Parallel arrays aligned with the source observation order — the form
    batch feature building and scoring consume.
    """

    provider_id: np.ndarray  # int64
    cell: np.ndarray  # uint64 (H3 ids use the full 64 bits)
    technology: np.ndarray  # int64
    state: np.ndarray  # object (state abbreviations)
    unserved: np.ndarray  # int64 labels

    def __len__(self) -> int:
        return int(self.provider_id.size)


def observation_columns(observations: list[Observation]) -> ObservationColumns:
    """Transpose observations into parallel arrays in one pass.

    This is the only per-observation Python loop left on the batch path;
    it does pure attribute extraction, leaving all claim/test/encoder
    lookups to vectorized gathers downstream.
    """
    n = len(observations)
    provider_id = np.empty(n, dtype=np.int64)
    cell = np.empty(n, dtype=np.uint64)
    technology = np.empty(n, dtype=np.int64)
    state = np.empty(n, dtype=object)
    unserved = np.empty(n, dtype=np.int64)
    for i, obs in enumerate(observations):
        provider_id[i] = obs.provider_id
        cell[i] = obs.cell
        technology[i] = obs.technology
        state[i] = obs.state
        unserved[i] = obs.unserved
    return ObservationColumns(
        provider_id=provider_id,
        cell=cell,
        technology=technology,
        state=state,
        unserved=unserved,
    )


class LabelledDataset:
    """An ordered, de-duplicated collection of observations."""

    def __init__(self, observations: list[Observation]):
        seen: dict[ClaimKey, Observation] = {}
        for obs in observations:
            # First label wins: challenges are added before changes before
            # synthetic, mirroring the paper's precedence.
            seen.setdefault(obs.claim_key, obs)
        self.observations = list(seen.values())

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    def __getitem__(self, index):
        return self.observations[index]

    @property
    def labels(self) -> list[int]:
        return [obs.unserved for obs in self.observations]

    def composition(self) -> dict[LabelSource, float]:
        """Fraction of observations per label source (paper: 51/22/27 %)."""
        counts = Counter(obs.source for obs in self.observations)
        total = max(1, len(self.observations))
        return {source: counts.get(source, 0) / total for source in LabelSource}

    def class_balance(self) -> float:
        """Fraction of observations labelled unserved."""
        if not self.observations:
            return 0.0
        return sum(self.labels) / len(self.observations)

    def by_state(self) -> dict[str, list[Observation]]:
        out: dict[str, list[Observation]] = {}
        for obs in self.observations:
            out.setdefault(obs.state, []).append(obs)
        return out

    def by_provider(self) -> dict[int, list[Observation]]:
        out: dict[int, list[Observation]] = {}
        for obs in self.observations:
            out.setdefault(obs.provider_id, []).append(obs)
        return out

    def filter(self, predicate) -> "LabelledDataset":
        """A new dataset keeping observations where ``predicate(obs)``."""
        return LabelledDataset([obs for obs in self.observations if predicate(obs)])

    def states(self) -> set[str]:
        return {obs.state for obs in self.observations}
