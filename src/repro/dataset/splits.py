"""Holdout strategies mirroring the paper's evaluation (§6.2).

Three holdouts, each answering a question a would-be challenger faces:

* **random observation holdout** (§6.2.1 / Fig. 5a) — 10 % of labelled
  observations drawn uniformly;
* **FCC-adjudicated holdout** (§6.2.1 / Fig. 5b) — 10 % of the
  observations whose labels came from FCC-adjudicated challenges (a
  standardized but noisier subset);
* **state holdout** (§6.2.2 / Fig. 5c) — entire states excluded from
  training; the paper drew Nebraska, Georgia, Oklahoma, Missouri,
  Indiana, and South Carolina.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.observations import LabelledDataset, Observation
from repro.utils.rng import stream_rng

__all__ = [
    "Split",
    "PAPER_HOLDOUT_STATES",
    "random_observation_split",
    "fcc_adjudicated_split",
    "state_holdout_split",
    "train_validation_split",
]

#: The states the paper randomly selected for the stratified holdout.
PAPER_HOLDOUT_STATES = ("NE", "GA", "OK", "MO", "IN", "SC")


@dataclass(frozen=True)
class Split:
    """Train/test partition as index arrays into a dataset."""

    train_idx: np.ndarray
    test_idx: np.ndarray

    def train(self, dataset: LabelledDataset) -> list[Observation]:
        return [dataset[i] for i in self.train_idx]

    def test(self, dataset: LabelledDataset) -> list[Observation]:
        return [dataset[i] for i in self.test_idx]


def random_observation_split(
    dataset: LabelledDataset, test_fraction: float = 0.1, seed: int = 0
) -> Split:
    """Uniform random observation holdout (paper Fig. 5a)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    rng = stream_rng(seed, "split", "random")
    order = rng.permutation(n)
    n_test = max(1, int(round(test_fraction * n)))
    return Split(train_idx=np.sort(order[n_test:]), test_idx=np.sort(order[:n_test]))


def fcc_adjudicated_split(
    dataset: LabelledDataset, test_fraction: float = 0.1, seed: int = 0
) -> Split:
    """Holdout drawn only from FCC-adjudicated observations (Fig. 5b).

    The held-out set contains exclusively FCC-adjudicated labels; all
    remaining observations (adjudicated or not) train.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    adjudicated = np.array(
        [i for i, obs in enumerate(dataset) if obs.fcc_adjudicated], dtype=np.int64
    )
    if adjudicated.size == 0:
        raise ValueError("dataset has no FCC-adjudicated observations")
    rng = stream_rng(seed, "split", "fcc")
    order = rng.permutation(adjudicated.size)
    n_test = max(1, int(round(test_fraction * adjudicated.size)))
    test_idx = np.sort(adjudicated[order[:n_test]])
    mask = np.ones(len(dataset), dtype=bool)
    mask[test_idx] = False
    return Split(train_idx=np.where(mask)[0], test_idx=test_idx)


def state_holdout_split(
    dataset: LabelledDataset,
    holdout_states: tuple[str, ...] = PAPER_HOLDOUT_STATES,
) -> Split:
    """Hold out entire states (paper Fig. 5c)."""
    holdout = {s.upper() for s in holdout_states}
    test_idx = np.array(
        [i for i, obs in enumerate(dataset) if obs.state in holdout], dtype=np.int64
    )
    if test_idx.size == 0:
        raise ValueError(f"no observations in holdout states {sorted(holdout)}")
    mask = np.ones(len(dataset), dtype=bool)
    mask[test_idx] = False
    return Split(train_idx=np.where(mask)[0], test_idx=test_idx)


def train_validation_split(
    split: Split, validation_fraction: float = 0.1, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Carve a validation set out of a split's training indices."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = stream_rng(seed, "split", "validation")
    order = rng.permutation(split.train_idx.size)
    n_val = max(1, int(round(validation_fraction * split.train_idx.size)))
    val = np.sort(split.train_idx[order[:n_val]])
    train = np.sort(split.train_idx[order[n_val:]])
    return train, val
