"""Measured-truth enrichment: joining what was *measured* against what
was *claimed*.

The base feature set (paper Table 4) deliberately uses only the
*presence* of speed tests; this subsystem surfaces the strongest
external signal the paper leaves on the table — the **overstatement
ratio** (claimed ÷ measured speed per cell × provider, the number the
Texas truth map is built on) — plus challenge-outcome joins, and turns
both into model features and audit-priority report surfaces.

=====================  ======================================================
Module                 Contents
=====================  ======================================================
``enrich.truthmap``    tile-level measured-speed aggregates per
                       (provider, cell) from attributed MLab tests,
                       persisted as an mmap-loadable columnar bundle
``enrich.overstatement``  vectorized per-claim overstatement ratios with
                       explicit missing-tile/zero-measurement semantics,
                       challenge filed/upheld joins, and the enriched
                       feature block ``FeatureBuilder`` appends behind a
                       feature-set version bump
``enrich.priority``    composite audit-priority scores (suspicion +
                       overstatement + challenge density, each
                       percentile-ranked), paginated for
                       ``GET /v2/analytics/priority``
=====================  ======================================================
"""

from repro.enrich.overstatement import (
    ENRICHED_FEATURE_SET_VERSION,
    ChallengeJoin,
    Enrichment,
    overstatement_ratios,
)
from repro.enrich.priority import PriorityTable, build_priority
from repro.enrich.truthmap import TruthMap, build_truth_map

__all__ = [
    "ENRICHED_FEATURE_SET_VERSION",
    "ChallengeJoin",
    "Enrichment",
    "overstatement_ratios",
    "PriorityTable",
    "build_priority",
    "TruthMap",
    "build_truth_map",
]
