"""Per-claim overstatement ratios and challenge-outcome join features.

Two joins against the claim grain, both vectorized:

* **Overstatement** — claimed ÷ measured speed against the truth map's
  per-(provider, cell) tiles, with the semantics spelled out instead of
  folded into a sentinel: a claim whose tile (or direction) was never
  measured has a ``NaN`` *ratio* (no evidence), a measured ``0.0`` also
  yields ``NaN`` (the ratio is undefined; the *feature* path never
  produces it because non-positive samples are excluded upstream), and
  only a positive measurement yields a finite ratio.
* **Challenges** — filed / upheld counts per (provider, cell) from the
  simulated BDC challenge process (``upheld`` = outcomes whose
  ``succeeded`` flag is set: conceded, service changed, or FCC upheld).

:class:`Enrichment` packages both into the feature block
``FeatureBuilder`` appends after its embedding columns, behind a
feature-set version bump (base = 1, enriched = 2).  Feature columns are
always finite: missing evidence contributes ``0.0`` alongside an
explicit tile-present indicator, so the model can tell "no tile" from
"tile says the claim holds".  The log ratios use ``log2((c+1)/(m+1))``
— symmetric around 0, finite for zero speeds, monotone in the raw ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.enrich.truthmap import TruthMap
from repro.fcc.challenges import ChallengeRecord
from repro.utils.indexing import MultiColumnIndex

__all__ = [
    "ENRICH_FEATURES",
    "ENRICHED_FEATURE_SET_VERSION",
    "BASE_FEATURE_SET_VERSION",
    "ChallengeJoin",
    "Enrichment",
    "overstatement_ratios",
]

#: Feature-set versions stamped into encoder manifests: bundles and
#: artifacts refuse to restore across a version mismatch.
BASE_FEATURE_SET_VERSION = 1
ENRICHED_FEATURE_SET_VERSION = 2

#: Names of the enrichment feature columns, in order.
ENRICH_FEATURES = (
    "Overstatement Log2 (DL)",
    "Overstatement Log2 (UL)",
    "Measured Median DL (Mbps)",
    "Truth Tile Tests",
    "Truth Tile Present",
    "Challenges Filed",
    "Challenges Upheld",
)


def overstatement_ratios(claimed, measured) -> np.ndarray:
    """Raw claimed ÷ measured ratios with explicit missing semantics.

    ``NaN`` marks *no evidence*: a ``NaN`` measurement (unmeasured tile
    or direction) and a non-positive measurement (the ratio is
    undefined) both yield ``NaN`` — never ``inf`` and never a silent
    ``0.0``.  A zero claim against a positive measurement is a genuine
    ``0.0`` ratio (understatement).
    """
    claimed = np.asarray(claimed, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        ratio = claimed / measured
    ratio = np.where(np.isfinite(measured) & (measured > 0.0), ratio, np.nan)
    return ratio


@dataclass(frozen=True)
class ChallengeJoin:
    """Filed / upheld challenge counts per (provider, cell)."""

    provider_id: np.ndarray  # int64
    cell: np.ndarray  # uint64
    filed: np.ndarray  # int64 — challenges filed against the pair
    upheld: np.ndarray  # int64 — of those, outcomes with succeeded=True
    _index: MultiColumnIndex | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.provider_id.size)

    @classmethod
    def from_records(cls, records: list[ChallengeRecord]) -> "ChallengeJoin":
        """Aggregate resolved challenges to the (provider, cell) grain.

        Technology-agnostic by design, matching the truth map's grain: a
        challenge proving a cell unservable is evidence against every
        technology the provider claims there.
        """
        filed: dict[tuple[int, int], int] = {}
        upheld: dict[tuple[int, int], int] = {}
        for record in records:
            key = (record.provider_id, record.cell)
            filed[key] = filed.get(key, 0) + 1
            if record.succeeded:
                upheld[key] = upheld.get(key, 0) + 1
        keys = sorted(filed)
        n = len(keys)
        provider_id = np.empty(n, dtype=np.int64)
        cell = np.empty(n, dtype=np.uint64)
        filed_arr = np.empty(n, dtype=np.int64)
        upheld_arr = np.empty(n, dtype=np.int64)
        for i, key in enumerate(keys):
            provider_id[i] = key[0]
            cell[i] = key[1]
            filed_arr[i] = filed[key]
            upheld_arr[i] = upheld.get(key, 0)
        return cls(
            provider_id=provider_id,
            cell=cell,
            filed=filed_arr,
            upheld=upheld_arr,
        )

    @property
    def index(self) -> MultiColumnIndex:
        if self._index is None:
            object.__setattr__(
                self, "_index", MultiColumnIndex(self.provider_id, self.cell)
            )
        return self._index

    def counts(self, provider_id, cell) -> tuple[np.ndarray, np.ndarray]:
        """(filed, upheld) per queried (provider, cell); zeros on miss."""
        provider_id = np.asarray(provider_id, dtype=np.int64)
        if not len(self):
            zeros = np.zeros(provider_id.size, dtype=np.int64)
            return zeros, zeros.copy()
        pos = self.index.positions(
            provider_id,
            np.asarray(cell, dtype=np.uint64),
        )
        found = pos >= 0
        safe = np.where(found, pos, 0)
        filed = np.where(found, self.filed[safe], 0)
        upheld = np.where(found, self.upheld[safe], 0)
        return filed, upheld


@dataclass(frozen=True)
class Enrichment:
    """The measured-truth join a ``FeatureBuilder`` vectorizes from.

    Bundles the truth map with an optional challenge join; either part
    can be absent at the claim level (missing tiles, unchallenged
    pairs), and every output column stays finite.
    """

    truthmap: TruthMap
    challenges: ChallengeJoin | None = None

    @property
    def feature_names(self) -> list[str]:
        return list(ENRICH_FEATURES)

    @property
    def dim(self) -> int:
        return len(ENRICH_FEATURES)

    def feature_columns(
        self, provider_id, cell, claimed_down, claimed_up
    ) -> np.ndarray:
        """The (n, 7) enrichment block for a claim batch.

        ``claimed_down`` / ``claimed_up`` are the published claim speeds
        the caller already gathered (the builder's claim columns).  Log
        ratios are 0.0 where the direction is unmeasured; the explicit
        ``Truth Tile Present`` indicator (plus the test count) lets the
        model distinguish "no tile" from "measured, claim plausible".
        """
        provider_id = np.asarray(provider_id, dtype=np.int64)
        cell = np.asarray(cell, dtype=np.uint64)
        claimed_down = np.asarray(claimed_down, dtype=np.float64)
        claimed_up = np.asarray(claimed_up, dtype=np.float64)
        n = provider_id.size
        X = np.zeros((n, self.dim))
        tm = self.truthmap
        pos = tm.positions(provider_id, cell)
        present = pos >= 0
        safe = np.where(present, pos, 0)

        med_down = tm.median_down[safe]
        med_up = tm.median_up[safe]
        down_ok = present & np.isfinite(med_down)
        up_ok = present & np.isfinite(med_up)
        # Fill unmeasured slots before the log so NaN never propagates.
        med_down_f = np.where(down_ok, med_down, 1.0)
        med_up_f = np.where(up_ok, med_up, 1.0)
        X[:, 0] = np.where(
            down_ok, np.log2((claimed_down + 1.0) / (med_down_f + 1.0)), 0.0
        )
        X[:, 1] = np.where(
            up_ok, np.log2((claimed_up + 1.0) / (med_up_f + 1.0)), 0.0
        )
        X[:, 2] = np.where(down_ok, med_down_f, 0.0)
        X[:, 3] = np.where(present, tm.n_tests[safe], 0).astype(np.float64)
        X[:, 4] = present.astype(np.float64)
        if self.challenges is not None and len(self.challenges):
            filed, upheld = self.challenges.counts(provider_id, cell)
            X[:, 5] = filed.astype(np.float64)
            X[:, 6] = upheld.astype(np.float64)
        return X
