"""Composite audit-priority scores (fiber-opportunity-map style).

Ranks (state, provider) groups by how much an auditor should care:
three component signals — mean suspicion percentile from the score
store, mean download overstatement from the enrichment join, and
challenge density (filed + upheld per claim) — are each
percentile-ranked to a common 0–100 scale across groups and combined
with fixed weights.  Components whose inputs are unavailable (no
enrichment, no challenge join) drop out and the remaining weights
renormalize, so a store-only service still serves a suspicion-ranked
priority surface.

:func:`build_priority` materializes the whole table once per store
build (every input is already columnar, so it is a handful of
``bincount`` group-bys); :meth:`PriorityTable.page` serves the
``GET /v2/analytics/priority`` walk in descending-priority rank order
with the same after-rank cursor shape as the claims walk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fcc.states import STATES
from repro.obs.metrics import get_metrics

__all__ = ["PriorityTable", "build_priority", "PRIORITY_WEIGHTS"]

#: Component weights of the composite score, renormalized over the
#: components actually available for a given build.
PRIORITY_WEIGHTS = {
    "suspicion": 0.5,
    "overstatement": 0.3,
    "challenges": 0.2,
}


def _percentile_rank(values: np.ndarray) -> np.ndarray:
    """Each value's percentile (0–100] among ``values`` (ties share)."""
    sorted_values = np.sort(values)
    return (
        100.0
        * np.searchsorted(sorted_values, values, side="right")
        / values.size
    )


@dataclass(frozen=True)
class PriorityTable:
    """Audit-priority rows in descending-priority order (rank 1 = first).

    Parallel arrays, one row per (state, provider) group present in the
    score store, pre-sorted by descending composite priority (ties break
    on ascending (state, provider) — the group enumeration order — so
    the ranking is deterministic).
    """

    state_idx: np.ndarray  # int16
    provider_id: np.ndarray  # int64
    n_claims: np.ndarray  # int64
    mean_suspicion_percentile: np.ndarray  # float64
    mean_overstatement_log2: np.ndarray  # float64 (0.0 without enrichment)
    challenges_filed: np.ndarray  # int64
    challenges_upheld: np.ndarray  # int64
    priority: np.ndarray  # float64, 0-100 composite
    #: Which components contributed (doc/debug surface for responses).
    components: tuple[str, ...]

    def __len__(self) -> int:
        return int(self.priority.size)

    def record(self, row: int) -> dict:
        """One priority row as a JSON-safe record dict."""
        return {
            "state": STATES[int(self.state_idx[row])].abbr,
            "provider_id": int(self.provider_id[row]),
            "n_claims": int(self.n_claims[row]),
            "mean_suspicion_percentile": float(
                self.mean_suspicion_percentile[row]
            ),
            "mean_overstatement_log2": float(
                self.mean_overstatement_log2[row]
            ),
            "challenges_filed": int(self.challenges_filed[row]),
            "challenges_upheld": int(self.challenges_upheld[row]),
            "priority": float(self.priority[row]),
            "rank": int(row + 1),
        }

    def page(
        self,
        after_rank: int = 0,
        limit: int = 100,
        state_idx: int | None = None,
    ) -> tuple[list[dict], int | None, int]:
        """One page of the descending-priority walk.

        Ranks are positions in the *unfiltered* priority order (1-based),
        so a cursor stays valid across filtered and unfiltered walks of
        the same build.  Returns ``(records, next_rank, total)`` with
        ``next_rank=None`` on the last page.
        """
        if state_idx is None:
            mask = np.ones(len(self), dtype=bool)
        else:
            mask = self.state_idx == np.int16(state_idx)
        rows = np.flatnonzero(mask)
        total = int(rows.size)
        rows = rows[rows >= after_rank]
        page_rows = rows[:limit]
        next_rank = (
            int(page_rows[-1]) + 1
            if page_rows.size and rows.size > page_rows.size
            else None
        )
        return [self.record(int(r)) for r in page_rows], next_rank, total


def build_priority(store, enrichment=None, weights=None) -> PriorityTable:
    """Materialize the priority table for one score store build.

    ``store`` is a :class:`repro.serve.store.ClaimScoreStore`;
    ``enrichment`` (optional) supplies the overstatement and challenge
    components.  All group-bys run over the store's columnar claims, so
    the build is vectorized end to end.
    """
    with get_metrics().histogram("enrich_build_seconds", stage="priority").time():
        return _build_priority(store, enrichment, weights)


def _build_priority(store, enrichment, weights) -> PriorityTable:
    claims = store.claims
    weights = dict(PRIORITY_WEIGHTS if weights is None else weights)
    group_keys = np.stack(
        [claims.state_idx.astype(np.int64), claims.provider_id], axis=1
    )
    uniq, inverse = np.unique(group_keys, axis=0, return_inverse=True)
    n_groups = uniq.shape[0]
    n_claims = np.bincount(inverse, minlength=n_groups).astype(np.int64)
    denom = n_claims.astype(np.float64)
    mean_pct = (
        np.bincount(inverse, weights=store.percentile, minlength=n_groups)
        / denom
    )

    over_mean = np.zeros(n_groups)
    filed = np.zeros(n_groups, dtype=np.int64)
    upheld = np.zeros(n_groups, dtype=np.int64)
    components = ["suspicion"]
    parts = {"suspicion": _percentile_rank(mean_pct)}
    if enrichment is not None:
        enriched = enrichment.feature_columns(
            claims.provider_id,
            claims.cell,
            claims.max_download_mbps,
            claims.max_upload_mbps,
        )
        over_mean = (
            np.bincount(inverse, weights=enriched[:, 0], minlength=n_groups)
            / denom
        )
        components.append("overstatement")
        parts["overstatement"] = _percentile_rank(over_mean)
        if enrichment.challenges is not None and len(enrichment.challenges):
            filed = np.bincount(
                inverse, weights=enriched[:, 5], minlength=n_groups
            ).astype(np.int64)
            upheld = np.bincount(
                inverse, weights=enriched[:, 6], minlength=n_groups
            ).astype(np.int64)
            density = (filed + upheld).astype(np.float64) / denom
            components.append("challenges")
            parts["challenges"] = _percentile_rank(density)

    total_weight = sum(weights[name] for name in components)
    priority = np.zeros(n_groups)
    for name in components:
        priority += (weights[name] / total_weight) * parts[name]

    order = np.argsort(-priority, kind="stable")
    return PriorityTable(
        state_idx=uniq[order, 0].astype(np.int16),
        provider_id=uniq[order, 1].astype(np.int64),
        n_claims=n_claims[order],
        mean_suspicion_percentile=mean_pct[order],
        mean_overstatement_log2=over_mean[order],
        challenges_filed=filed[order],
        challenges_upheld=upheld[order],
        priority=priority[order],
        components=tuple(components),
    )
