"""Tile-level measured-truth aggregates per (provider, cell).

The truth map is the enrichment layer's ground surface: every attributed
MLab test is localized to the hex cells it may have run in (the same
attribution pipeline as :func:`repro.dataset.likely_served.localize_mlab_tests`
— ASN crosswalk union, accuracy-radius cap, intersection with the
provider's claimed footprint) and its measured throughputs accumulate
per (provider, cell) tile.  Each tile then aggregates *per direction*
through :func:`repro.speedtests.aggregate.directional_summary`: median
and p90 measured download/upload, with an unmeasured direction coded as
``NaN`` — never ``0.0`` (a zero measurement and a missing measurement
mean opposite things to an overstatement ratio).

The result is a frozen struct-of-arrays table in sorted
(provider, cell) order with a lazy two-column composite index, persisted
the same way the national shard store persists claims: raw
``.npy`` files — one per column — under a manifest written last, so a
saved bundle loads read-only and zero-copy via
``numpy.load(mmap_mode="r")`` alongside the ``repro.store`` shards.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.asn.matching import CrosswalkResult
from repro.dataset.likely_served import MAX_GEOLOCATION_RADIUS_M
from repro.geo import cells_within_radius
from repro.obs.metrics import get_metrics
from repro.speedtests.aggregate import directional_summary
from repro.speedtests.mlab import MLabTest
from repro.utils.indexing import MultiColumnIndex

__all__ = ["TruthMap", "build_truth_map", "TRUTHMAP_MANIFEST_NAME"]

TRUTHMAP_MANIFEST_NAME = "manifest.json"

#: Manifest major version; bump on layout changes.
_SCHEMA = 1

_INDEX_PREFIX = "index__"

#: Name and dtype of every persisted truth-map column, in order.
_COLUMNS = (
    ("provider_id", np.int64),
    ("cell", np.uint64),
    ("median_down", np.float64),
    ("p90_down", np.float64),
    ("median_up", np.float64),
    ("p90_up", np.float64),
    ("n_tests", np.int64),
)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class TruthMap:
    """Measured-speed aggregates, one row per (provider, cell) tile.

    Parallel arrays in ascending (provider_id, cell) order; the speed
    columns carry ``NaN`` for directions with no valid measurement.
    ``positions`` maps arrays of (provider, cell) pairs to row positions
    (``-1`` = no tile) through a lazily-built composite index, so the
    feature path gathers a whole batch's truth in one pass.
    """

    provider_id: np.ndarray  # int64
    cell: np.ndarray  # uint64
    median_down: np.ndarray  # float64, NaN = direction unmeasured
    p90_down: np.ndarray  # float64
    median_up: np.ndarray  # float64
    p90_up: np.ndarray  # float64
    n_tests: np.ndarray  # int64 — attributed tests localized to the tile
    _index: MultiColumnIndex | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.provider_id.size)

    @property
    def index(self) -> MultiColumnIndex:
        """The (provider, cell) composite index, built on first use."""
        if self._index is None:
            object.__setattr__(
                self,
                "_index",
                MultiColumnIndex(self.provider_id, self.cell),
            )
        return self._index

    def positions(self, provider_id, cell) -> np.ndarray:
        """Tile row per (provider, cell) query; ``-1`` marks no tile."""
        return self.index.positions(
            np.asarray(provider_id, dtype=np.int64),
            np.asarray(cell, dtype=np.uint64),
        )

    def export_arrays(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name, _ in _COLUMNS}

    @classmethod
    def from_arrays(
        cls, arrays: dict, index: MultiColumnIndex | None = None
    ) -> "TruthMap":
        fields = {
            name: np.ascontiguousarray(np.asarray(arrays[name]), dtype=dtype)
            for name, dtype in _COLUMNS
        }
        n = fields["provider_id"].size
        for name, _ in _COLUMNS:
            if fields[name].ndim != 1 or fields[name].size != n:
                raise ValueError(
                    f"truth-map column {name!r} must be 1-D with {n} rows, "
                    f"got shape {fields[name].shape}"
                )
        return cls(**fields, _index=index)

    # -- persistence ---------------------------------------------------------

    def save(self, root: str) -> str:
        """Write the bundle under ``root`` (manifest committed last).

        One raw ``.npy`` per column plus the persisted composite index,
        each content-hashed in the manifest; ``os.replace`` of the
        manifest is the commit point, so an interrupted save never
        invalidates a previously committed bundle.
        """
        os.makedirs(os.path.join(root, "arrays"), exist_ok=True)
        arrays = dict(self.export_arrays())
        for key, arr in self.index.export_state().items():
            arrays[f"{_INDEX_PREFIX}{key}"] = arr
        files = {}
        for key, arr in arrays.items():
            rel = os.path.join("arrays", f"{key}.npy")
            target = os.path.join(root, rel)
            np.save(target, np.ascontiguousarray(arr))
            files[key] = {
                "path": rel.replace(os.sep, "/"),
                "sha256": _sha256_file(target),
                "dtype": str(np.asarray(arr).dtype),
            }
        manifest = {
            "schema": _SCHEMA,
            "kind": "truth-map",
            "n_rows": len(self),
            "columns": {
                name: str(np.dtype(dtype)) for name, dtype in _COLUMNS
            },
            "files": files,
        }
        tmp = os.path.join(root, TRUTHMAP_MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, os.path.join(root, TRUTHMAP_MANIFEST_NAME))
        return root

    @classmethod
    def load(cls, root: str, mmap: bool = True) -> "TruthMap":
        """Open a saved bundle; ``mmap=True`` maps every column read-only.

        The persisted composite index loads the same way, so lookups on
        a national-scale map touch only the pages a query needs.
        """
        manifest_path = os.path.join(root, TRUTHMAP_MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no truth-map manifest at {manifest_path}")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("kind") != "truth-map":
            raise ValueError(
                f"artifact kind {manifest.get('kind')!r} is not a truth map"
            )
        mode = "r" if mmap else None
        arrays: dict[str, np.ndarray] = {}
        index_state: dict[str, np.ndarray] = {}
        for key, meta in manifest["files"].items():
            arr = np.load(
                os.path.join(root, meta["path"]),
                mmap_mode=mode,
                allow_pickle=False,
            )
            if str(arr.dtype) != meta["dtype"]:
                raise ValueError(
                    f"truth-map file {key!r} has dtype {arr.dtype}, "
                    f"manifest says {meta['dtype']}"
                )
            if key.startswith(_INDEX_PREFIX):
                index_state[key[len(_INDEX_PREFIX):]] = arr
            else:
                arrays[key] = arr
        missing = {name for name, _ in _COLUMNS} - set(arrays)
        if missing:
            raise ValueError(f"truth map is missing columns {sorted(missing)}")
        index = (
            MultiColumnIndex.from_state(index_state) if index_state else None
        )
        out = cls.from_arrays(arrays, index=index)
        if int(manifest["n_rows"]) != len(out):
            raise ValueError(
                f"truth-map row count {len(out)} disagrees with manifest "
                f"({manifest['n_rows']})"
            )
        return out


def build_truth_map(
    tests: list[MLabTest],
    crosswalk: CrosswalkResult,
    claimed_cells_by_provider: dict[int, set[int]],
    res: int = 8,
    max_radius_m: float = MAX_GEOLOCATION_RADIUS_M,
) -> TruthMap:
    """Aggregate attributed MLab tests into per-(provider, cell) tiles.

    Attribution and localization mirror
    :func:`repro.dataset.likely_served.localize_mlab_tests` exactly —
    crosswalk-union ASN attribution, the 20 km accuracy-radius cap,
    candidate hexes intersected with the provider's claimed footprint —
    so a tile's ``n_tests`` equals the localization's test count for the
    same key.  On top of the counts, each tile accumulates the tests'
    measured throughputs and aggregates them per direction
    (:func:`repro.speedtests.aggregate.directional_summary`): an
    unmeasured direction is ``NaN``, never ``0.0``.
    """
    with get_metrics().histogram("enrich_build_seconds", stage="truthmap").time():
        asn_to_providers: dict[int, set[int]] = {}
        for pid, asns in crosswalk.union.items():
            for asn in asns:
                asn_to_providers.setdefault(asn, set()).add(pid)

        down_samples: dict[tuple[int, int], list[float]] = {}
        up_samples: dict[tuple[int, int], list[float]] = {}
        counts: dict[tuple[int, int], int] = {}
        for test in tests:
            if test.accuracy_radius_m > max_radius_m:
                continue
            providers = asn_to_providers.get(test.asn)
            if not providers:
                continue
            candidates = set(
                cells_within_radius(test.lat, test.lng, test.accuracy_radius_m, res)
            )
            for pid in providers:
                claimed = claimed_cells_by_provider.get(pid)
                if not claimed:
                    continue
                hits = candidates & claimed
                for cell in hits:
                    key = (pid, int(cell))
                    counts[key] = counts.get(key, 0) + 1
                    down_samples.setdefault(key, []).append(test.download_mbps)
                    up_samples.setdefault(key, []).append(test.upload_mbps)

        keys = sorted(counts)
        n = len(keys)
        provider_id = np.empty(n, dtype=np.int64)
        cell = np.empty(n, dtype=np.uint64)
        median_down = np.empty(n, dtype=np.float64)
        p90_down = np.empty(n, dtype=np.float64)
        median_up = np.empty(n, dtype=np.float64)
        p90_up = np.empty(n, dtype=np.float64)
        n_tests = np.empty(n, dtype=np.int64)
        for i, key in enumerate(keys):
            pid, c = key
            summary = directional_summary(down_samples[key], up_samples[key])
            provider_id[i] = pid
            cell[i] = c
            median_down[i] = summary.median_down
            p90_down[i] = summary.p90_down
            median_up[i] = summary.median_up
            p90_up[i] = summary.p90_up
            n_tests[i] = counts[key]
        return TruthMap(
            provider_id=provider_id,
            cell=cell,
            median_down=median_down,
            p90_down=p90_down,
            median_up=median_up,
            p90_up=p90_up,
            n_tests=n_tests,
        )
