"""FCC Broadband Data Collection substrate (simulated): states, the BSL
Fabric, providers and their claim strategies, BDC filings, the challenge
process, NBM releases/map diffs, and FRN registration data."""

from repro.fcc.bdc import AvailabilityTable, ClaimColumns, ClaimKey, generate_filings
from repro.fcc.challenges import (
    ChallengeConfig,
    ChallengeOutcome,
    ChallengeReason,
    ChallengeRecord,
    outcome_distribution,
    reason_distribution,
    simulate_challenges,
)
from repro.fcc.fabric import BSL, Fabric, FabricConfig, Town, generate_fabric
from repro.fcc.frn import FRNRecord, ProviderIDTable, build_provider_id_table
from repro.fcc.providers import (
    MAJOR_ISPS,
    TECHNOLOGY_CODES,
    TECHNOLOGY_NAMES,
    FootprintPair,
    Methodology,
    Provider,
    ProviderConfig,
    ProviderUniverse,
    ServiceTier,
    generate_providers,
    methodology_text,
)
from repro.fcc.releases import (
    MapDiff,
    ReleaseTimeline,
    RemovalCause,
    RemovalEvent,
    build_release_timeline,
    diff_releases,
    infer_unarchived_changes,
)
from repro.fcc.states import (
    STATES,
    StateInfo,
    challenge_weights,
    contiguous_states,
    state_by_abbr,
    states_adjacent_to,
)

__all__ = [
    "AvailabilityTable",
    "ClaimColumns",
    "ClaimKey",
    "generate_filings",
    "ChallengeConfig",
    "ChallengeOutcome",
    "ChallengeReason",
    "ChallengeRecord",
    "outcome_distribution",
    "reason_distribution",
    "simulate_challenges",
    "BSL",
    "Fabric",
    "FabricConfig",
    "Town",
    "generate_fabric",
    "FRNRecord",
    "ProviderIDTable",
    "build_provider_id_table",
    "MAJOR_ISPS",
    "TECHNOLOGY_CODES",
    "TECHNOLOGY_NAMES",
    "FootprintPair",
    "Methodology",
    "Provider",
    "ProviderConfig",
    "ProviderUniverse",
    "ServiceTier",
    "generate_providers",
    "methodology_text",
    "MapDiff",
    "ReleaseTimeline",
    "RemovalCause",
    "RemovalEvent",
    "build_release_timeline",
    "diff_releases",
    "infer_unarchived_changes",
    "STATES",
    "StateInfo",
    "challenge_weights",
    "contiguous_states",
    "state_by_abbr",
    "states_adjacent_to",
]
