"""BDC availability filings and the assembled National Broadband Map.

Every six months each ISP files, for every Broadband Serviceable Location
it serves (or could serve within ten business days), the technology and
maximum advertised speeds offered there (paper Table 1).  This module
generates those filings from the provider universe's claimed footprints
and assembles them into the initial public NBM release.

The table keeps a simulation-internal ``truly_served`` flag per record —
the ground truth the paper never observes directly, used here to drive the
challenge process and to score the final model.  Speed clamping follows
the NBM convention: download below 10 Mbps and upload below 1 Mbps are
published as 0.

Data layout (two granularities, both struct-of-arrays)
------------------------------------------------------

=======================  =====================================================
Surface                  Contents
=======================  =====================================================
:class:`AvailabilityTable`  one row per (provider, BSL, technology) filing
                            record: ids, cell, state, advertised speeds,
                            latency tier, ``truly_served`` ground truth
:class:`ClaimColumns`       frozen columnar roll-up to the hex grain — one
                            row per distinct (provider, cell, technology)
                            claim: claimed-BSL count, published max
                            download/upload, low-latency flag
=======================  =====================================================

:meth:`AvailabilityTable.columnar` builds (and caches) the roll-up; its
:meth:`ClaimColumns.positions` maps *arrays* of claim keys to row
positions in one vectorized lookup (:class:`repro.utils.indexing.MultiColumnIndex`),
so batch consumers — feature building above all — replace a Python
``dict.get`` per observation with a handful of fancy-indexed gathers.
The scalar ``dict``-shaped accessors remain as the readable reference
path; property tests assert both agree exactly, including on keys absent
from the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fcc.fabric import Fabric
from repro.fcc.providers import ProviderUniverse
from repro.fcc.states import STATES
from repro.utils.indexing import MultiColumnIndex
from repro.utils.rng import stream_rng

__all__ = [
    "AvailabilityTable",
    "ClaimColumns",
    "ClaimKey",
    "generate_filings",
    "NBM_SPEED_FLOORS",
]

#: NBM publication floors: below these, speeds are reported as 0.
NBM_SPEED_FLOORS = (10.0, 1.0)  # (download Mbps, upload Mbps)

#: Hex-level claim identity used across challenges / releases / datasets.
ClaimKey = tuple[int, int, int]  # (provider_id, cell, technology)


@dataclass(frozen=True)
class ClaimColumns:
    """Frozen columnar view of the distinct hex-level claims.

    Parallel arrays, one row per (provider, cell, technology) claim in
    lexicographic key order, carrying the aggregates feature building
    consumes.  ``positions`` maps arrays of claim-key components to row
    positions in one vectorized lookup (``-1`` for keys not in the
    table), so callers gather ``claimed_count``/speed/latency columns by
    fancy index instead of a per-key ``dict`` probe.
    """

    provider_id: np.ndarray  # int64
    cell: np.ndarray  # uint64
    technology: np.ndarray  # int16
    claimed_count: np.ndarray  # int64 — BSL filing rows per claim
    max_download_mbps: np.ndarray  # float64, published (post-floor) max
    max_upload_mbps: np.ndarray  # float64, published (post-floor) max
    low_latency: np.ndarray  # bool — any record low-latency
    #: Filing state per claim (index into repro.fcc.states.STATES, from
    #: the claim's first filing row — the labeling convention).
    state_idx: np.ndarray  # int16
    #: Composite-key index; ``None`` until first lookup (lazy).  Sharded
    #: stores hold many small per-shard tables, most of which are never
    #: probed, so index construction is deferred to first use (or a
    #: persisted index is passed in — see ``MultiColumnIndex.from_state``).
    _index: MultiColumnIndex | None = field(
        default=None, repr=False, compare=False
    )

    #: Name and dtype of every exported column, in order.
    EXPORT_FIELDS = (
        ("provider_id", np.int64),
        ("cell", np.uint64),
        ("technology", np.int16),
        ("claimed_count", np.int64),
        ("max_download_mbps", np.float64),
        ("max_upload_mbps", np.float64),
        ("low_latency", bool),
        ("state_idx", np.int16),
    )

    def __len__(self) -> int:
        return int(self.provider_id.size)

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The parallel claim columns as a plain name->array dict.

        The pickle-free payload the serve layer persists; composite-key
        indexes are deterministic from the key columns, so
        :meth:`from_arrays` rebuilds them rather than serializing them.
        """
        return {name: getattr(self, name) for name, _ in self.EXPORT_FIELDS}

    @classmethod
    def from_arrays(
        cls, arrays: dict, index: MultiColumnIndex | None = None
    ) -> "ClaimColumns":
        """Rebuild a claim store from exported columns.

        The composite-key index rebuilds lazily on first ``positions``
        call unless a prebuilt (e.g. persisted) ``index`` is supplied.
        """
        fields = {
            name: np.ascontiguousarray(np.asarray(arrays[name]), dtype=dtype)
            for name, dtype in cls.EXPORT_FIELDS
        }
        n = fields["provider_id"].size
        for name, _ in cls.EXPORT_FIELDS:
            if fields[name].ndim != 1 or fields[name].size != n:
                raise ValueError(
                    f"claim column {name!r} must be 1-D with {n} rows, "
                    f"got shape {fields[name].shape}"
                )
        return cls(**fields, _index=index)

    def take(self, rows: np.ndarray) -> "ClaimColumns":
        """A new claim store holding ``rows`` (in the given order).

        Shard extraction: relative key order is whatever ``rows``
        encodes, and the subset's index rebuilds lazily on first lookup.
        """
        rows = np.asarray(rows, dtype=np.intp)
        return ClaimColumns.from_arrays(
            {name: getattr(self, name)[rows] for name, _ in self.EXPORT_FIELDS}
        )

    @property
    def index(self) -> MultiColumnIndex:
        """The composite-key index, built on first use."""
        if self._index is None:
            object.__setattr__(
                self,
                "_index",
                MultiColumnIndex(
                    self.provider_id,
                    self.cell,
                    self.technology.astype(np.int64),
                ),
            )
        return self._index

    def positions(
        self, provider_id: np.ndarray, cell: np.ndarray, technology: np.ndarray
    ) -> np.ndarray:
        """Row position per queried claim key; ``-1`` marks a miss."""
        return self.index.positions(
            np.asarray(provider_id, dtype=np.int64),
            np.asarray(cell, dtype=np.uint64),
            np.asarray(technology, dtype=np.int64),
        )

    def key_at(self, row: int) -> ClaimKey:
        return (
            int(self.provider_id[row]),
            int(self.cell[row]),
            int(self.technology[row]),
        )


@dataclass
class AvailabilityTable:
    """All BSL-level availability records of one filing round (SoA layout).

    One row = one (provider, BSL, technology) claim.  ``truly_served`` is
    simulation ground truth and is *not* part of the public NBM view.
    """

    provider_id: np.ndarray  # int64
    bsl_id: np.ndarray  # int64
    technology: np.ndarray  # int16
    cell: np.ndarray  # uint64
    state_idx: np.ndarray  # int16
    max_download_mbps: np.ndarray  # float64 (as advertised, pre-floor)
    max_upload_mbps: np.ndarray  # float64
    low_latency: np.ndarray  # bool
    truly_served: np.ndarray  # bool
    #: Cached hex-level columnar roll-up (built on first use).
    _columnar: "ClaimColumns | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.provider_id.size)

    # -- public (NBM) views -------------------------------------------------

    def published_download(self) -> np.ndarray:
        """Download speeds as published in the NBM (sub-floor -> 0)."""
        out = self.max_download_mbps.copy()
        out[out < NBM_SPEED_FLOORS[0]] = 0.0
        return out

    def published_upload(self) -> np.ndarray:
        """Upload speeds as published in the NBM (sub-floor -> 0)."""
        out = self.max_upload_mbps.copy()
        out[out < NBM_SPEED_FLOORS[1]] = 0.0
        return out

    def state_abbr(self, row: int) -> str:
        return STATES[int(self.state_idx[row])].abbr

    # -- hex-level aggregation ---------------------------------------------

    def claim_keys(self) -> np.ndarray:
        """Row-aligned structured array of (provider_id, cell, technology)."""
        keys = np.empty(
            len(self),
            dtype=[("provider_id", np.int64), ("cell", np.uint64), ("technology", np.int16)],
        )
        keys["provider_id"] = self.provider_id
        keys["cell"] = self.cell
        keys["technology"] = self.technology
        return keys

    def unique_claims(self) -> list[ClaimKey]:
        """Distinct hex-level claims (provider, cell, technology)."""
        keys = self.claim_keys()
        uniq = np.unique(keys)
        return [
            (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
            for k in uniq
        ]

    def columnar(self) -> ClaimColumns:
        """The hex-level claims as frozen parallel arrays (cached).

        Aggregation matches the scalar reference exactly: per claim, the
        count of BSL filing rows, elementwise-max *published* speeds
        (post NBM floors), and the OR of the low-latency flags.
        """
        if self._columnar is not None:
            return self._columnar
        keys = self.claim_keys()
        uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
        n = uniq.size
        counts = np.bincount(inverse, minlength=n)
        down = np.zeros(n)
        up = np.zeros(n)
        lowlat = np.zeros(n, dtype=bool)
        np.maximum.at(down, inverse, self.published_download())
        np.maximum.at(up, inverse, self.published_upload())
        np.logical_or.at(lowlat, inverse, self.low_latency)
        provider_id = np.ascontiguousarray(uniq["provider_id"], dtype=np.int64)
        cell = np.ascontiguousarray(uniq["cell"], dtype=np.uint64)
        technology = np.ascontiguousarray(uniq["technology"], dtype=np.int16)
        columns = ClaimColumns(
            provider_id=provider_id,
            cell=cell,
            technology=technology,
            claimed_count=counts.astype(np.int64),
            max_download_mbps=down,
            max_upload_mbps=up,
            low_latency=lowlat,
            # State of each claim's first filing row — identical to the
            # labeling convention (dataset.labeling._claim_states).
            state_idx=self.state_idx[first].astype(np.int16),
            _index=MultiColumnIndex(
                provider_id, cell, technology.astype(np.int64)
            ),
        )
        self._columnar = columns
        return columns

    def rows_for_claim(self, key: ClaimKey) -> np.ndarray:
        """Row indices matching a hex-level claim (linear scan, test-sized)."""
        pid, cell, tech = key
        return np.where(
            (self.provider_id == pid)
            & (self.cell == np.uint64(cell))
            & (self.technology == tech)
        )[0]

    def provider_location_counts(self) -> dict[int, int]:
        """Number of BSL claims per provider (paper Fig. 4 uses these)."""
        pids, counts = np.unique(self.provider_id, return_counts=True)
        return {int(p): int(c) for p, c in zip(pids, counts)}

    def subset(self, mask: np.ndarray) -> "AvailabilityTable":
        """A new table containing only rows where ``mask`` is True."""
        return AvailabilityTable(
            provider_id=self.provider_id[mask],
            bsl_id=self.bsl_id[mask],
            technology=self.technology[mask],
            cell=self.cell[mask],
            state_idx=self.state_idx[mask],
            max_download_mbps=self.max_download_mbps[mask],
            max_upload_mbps=self.max_upload_mbps[mask],
            low_latency=self.low_latency[mask],
            truly_served=self.truly_served[mask],
        )


def generate_filings(
    fabric: Fabric,
    universe: ProviderUniverse,
    seed: int = 0,
    claim_fraction_range: tuple[float, float] = (0.55, 0.95),
) -> AvailabilityTable:
    """Generate BSL-level availability records from claimed footprints.

    Within each claimed hex a provider reports a per-provider random
    fraction of the hex's BSLs (the paper's "percentage of locations
    claimed" feature).  Records in overclaimed hexes carry
    ``truly_served=False``.
    """
    cols: dict[str, list[np.ndarray]] = {
        "provider_id": [], "bsl_id": [], "technology": [], "cell": [],
        "state_idx": [], "down": [], "up": [], "lowlat": [], "served": [],
    }
    state_index = {s.abbr: i for i, s in enumerate(STATES)}
    for provider in universe.providers:
        rng = stream_rng(seed, "filings", provider.provider_id)
        claim_fraction = float(rng.uniform(*claim_fraction_range))
        for (pid, state, tech), fp in universe.footprints.items():
            if pid != provider.provider_id:
                continue
            tier = provider.tier_for(tech)
            filing_state = state_index[state]
            for cell in sorted(fp.claimed_cells):
                rows = fabric.bsls_in_cell(cell)
                # Hex cells can straddle state borders; a filing only covers
                # the BSLs in the filing's own state.
                rows = rows[fabric.state_idx[rows] == filing_state]
                if rows.size == 0:
                    continue
                take = max(1, int(round(claim_fraction * rows.size)))
                chosen = (
                    rows
                    if take >= rows.size
                    else rng.choice(rows, size=take, replace=False)
                )
                n = chosen.size
                served = cell in fp.true_cells
                cols["provider_id"].append(np.full(n, pid, dtype=np.int64))
                cols["bsl_id"].append(chosen.astype(np.int64))
                cols["technology"].append(np.full(n, tech, dtype=np.int16))
                cols["cell"].append(np.full(n, cell, dtype=np.uint64))
                cols["state_idx"].append(fabric.state_idx[chosen].astype(np.int16))
                cols["down"].append(np.full(n, tier.max_download_mbps))
                cols["up"].append(np.full(n, tier.max_upload_mbps))
                cols["lowlat"].append(np.full(n, tier.low_latency, dtype=bool))
                cols["served"].append(np.full(n, served, dtype=bool))

    def _cat(name, dtype):
        if not cols[name]:
            return np.empty(0, dtype=dtype)
        return np.concatenate(cols[name]).astype(dtype)

    return AvailabilityTable(
        provider_id=_cat("provider_id", np.int64),
        bsl_id=_cat("bsl_id", np.int64),
        technology=_cat("technology", np.int16),
        cell=_cat("cell", np.uint64),
        state_idx=_cat("state_idx", np.int16),
        max_download_mbps=_cat("down", np.float64),
        max_upload_mbps=_cat("up", np.float64),
        low_latency=_cat("lowlat", bool),
        truly_served=_cat("served", bool),
    )
