"""The BDC challenge process (paper §3 "Correcting the NBM", Tables 2-3).

Individuals and organizations dispute providers' availability claims; the
provider concedes or contests; unresolved disputes go to FCC adjudication.
This module simulates that lifecycle over the hex-level claims of an
initial filing round, calibrated to the paper's documented marginals:

* state participation is wildly skewed (Fig. 2): challenge volume follows
  the per-state campaign weights, with ~10 states carrying ~90 %;
* challengers have local knowledge, so challenged claims skew toward
  genuinely-overclaimed ones — the targeting bias is solved per state so
  that ~69 % of challenges succeed (Table 2);
* outcome mix matches Table 2 (conceded 39 %, service changed 22 %, FCC
  upheld 8 %, withdrawn 15 %, FCC overturned 16 %) with a small FCC error
  rate that later shows up as label noise in the FCC-adjudicated holdout
  (paper Fig. 5b);
* challenge reasons follow Table 3, modulated by technology (wireless
  claims draw "No Signal", wireline draws installation failures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.providers import ProviderUniverse
from repro.fcc.states import STATES, challenge_weights
from repro.utils.rng import stream_rng

__all__ = [
    "ChallengeOutcome",
    "ChallengeReason",
    "ChallengeRecord",
    "ChallengeConfig",
    "simulate_challenges",
    "outcome_distribution",
    "reason_distribution",
]


class ChallengeOutcome(enum.Enum):
    """Primary challenge outcomes (paper Table 2)."""

    PROVIDER_CONCEDED = "Provider Conceded"
    SERVICE_CHANGED = "Service Changed"
    FCC_UPHELD = "FCC Upheld"
    CHALLENGE_WITHDRAWN = "Challenge Withdrawn"
    FCC_OVERTURNED = "FCC Overturned"

    @property
    def succeeded(self) -> bool:
        """Whether the challenge removed/modified the provider's claim."""
        return self in (
            ChallengeOutcome.PROVIDER_CONCEDED,
            ChallengeOutcome.SERVICE_CHANGED,
            ChallengeOutcome.FCC_UPHELD,
        )


class ChallengeReason(enum.Enum):
    """Stated reasons for challenges (paper Table 3)."""

    TECHNOLOGY_UNAVAILABLE = "Technology Unavailable"
    SPEEDS_UNAVAILABLE = "Speed(s) Unavailable"
    SERVICE_REQUEST_DENIED = "Service Request Denied"
    NO_SIGNAL = "No Signal"
    HIGHER_FEE = "Asked Higher than Standard Connection Fee"
    NOT_WITHIN_10_DAYS = "Failed to Provide Service within 10 Biz-days"
    PROVIDER_NOT_READY = "Provider not Ready (dependency on new equipment)"
    INSTALL_TIMELINE = "Failed to Install Service within Timeline"


#: Baseline reason mix (Table 3 percentages).
_REASON_BASE = {
    ChallengeReason.TECHNOLOGY_UNAVAILABLE: 0.55,
    ChallengeReason.SPEEDS_UNAVAILABLE: 0.43,
    ChallengeReason.SERVICE_REQUEST_DENIED: 0.010,
    ChallengeReason.NO_SIGNAL: 0.008,
    ChallengeReason.HIGHER_FEE: 0.0008,
    ChallengeReason.NOT_WITHIN_10_DAYS: 0.0006,
    ChallengeReason.PROVIDER_NOT_READY: 0.0003,
    ChallengeReason.INSTALL_TIMELINE: 0.0003,
}


@dataclass(frozen=True)
class ChallengeRecord:
    """One resolved challenge against one hex-level claim."""

    challenge_id: int
    provider_id: int
    cell: int
    technology: int
    state: str
    n_bsls: int
    reason: ChallengeReason
    outcome: ChallengeOutcome
    #: True when the FCC (not the parties) decided the challenge.
    fcc_adjudicated: bool
    #: Minor-release index at which the resolution appears on the map.
    resolved_release: int
    #: Major NBM release the challenge targets (0 = initial, paper's focus).
    major_release: int

    @property
    def succeeded(self) -> bool:
        return self.outcome.succeeded

    @property
    def claim_key(self) -> ClaimKey:
        return (self.provider_id, self.cell, self.technology)


@dataclass(frozen=True)
class ChallengeConfig:
    """Calibration knobs for the challenge simulator."""

    #: Fraction of all hex-level claims that get challenged (initial NBM).
    #: Acts as a cap: state campaigns are additionally sized by how many
    #: suspicious claims their field data actually surfaces.
    challenge_rate: float = 0.12
    #: Target share of challenges that hit genuinely-overclaimed cells.
    target_success_share: float = 0.69
    #: P(service changed | disputed valid-seeming but false claim).
    service_changed_given_negotiated: float = 0.62
    #: P(FCC correctly upholds a challenge to a false claim).
    fcc_accuracy_on_false: float = 0.93
    #: P(FCC correctly overturns a challenge to a valid claim).
    fcc_accuracy_on_true: float = 0.93
    #: P(withdrawn | challenged claim is valid).
    withdrawn_given_true: float = 0.48
    #: In bulk campaign states, P(provider concedes or revises a challenged
    #: claim that is actually valid) — contesting thousands of challenges
    #: costs more than conceding marginal locations.  These concessions are
    #: the main source of label noise in challenge-derived datasets.
    bulk_concession_rate: float = 0.25
    #: Of bulk concessions, the share recorded as "Provider Conceded"
    #: (the rest appear as "Service Changed" filing revisions).
    bulk_conceded_share: float = 0.60
    #: Normalized state weight above which a state is a "campaign" state.
    campaign_weight_threshold: float = 0.03
    #: Campaign budgets are capped so genuinely-false claims make up at
    #: least this share of a campaign state's challenges.
    campaign_false_share: float = 0.60
    #: Number of bi-weekly minor releases in the simulated year.
    n_minor_releases: int = 24
    #: Relative challenge volume of the second major release (Fig. 1 shows
    #: ~two orders of magnitude fewer challenges than the initial release).
    second_release_volume_ratio: float = 0.013

    def validate(self) -> "ChallengeConfig":
        for name in (
            "challenge_rate",
            "target_success_share",
            "service_changed_given_negotiated",
            "fcc_accuracy_on_false",
            "fcc_accuracy_on_true",
            "withdrawn_given_true",
            "second_release_volume_ratio",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.n_minor_releases < 2:
            raise ValueError("n_minor_releases must be >= 2")
        return self


def _claim_truth_by_key(
    table: AvailabilityTable,
) -> tuple[list[ClaimKey], np.ndarray, np.ndarray, np.ndarray]:
    """Hex-level claims with truth flag, state index, and BSL count."""
    keys = table.claim_keys()
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.r_[
        0, np.where(sorted_keys[1:] != sorted_keys[:-1])[0] + 1, keys.size
    ]
    claims: list[ClaimKey] = []
    truth = np.empty(boundaries.size - 1, dtype=bool)
    state_idx = np.empty(boundaries.size - 1, dtype=np.int16)
    n_bsls = np.empty(boundaries.size - 1, dtype=np.int64)
    for i in range(boundaries.size - 1):
        row = order[boundaries[i]]
        k = keys[row]
        claims.append((int(k["provider_id"]), int(k["cell"]), int(k["technology"])))
        truth[i] = table.truly_served[row]
        state_idx[i] = table.state_idx[row]
        n_bsls[i] = boundaries[i + 1] - boundaries[i]
    return claims, truth, state_idx, n_bsls


def _stratified_targets(
    rng: np.random.Generator,
    rows: np.ndarray,
    truth: np.ndarray,
    budget: int,
    target_success_share: float,
) -> np.ndarray:
    """Pick ``budget`` claims so ~``target_success_share`` are overclaimed.

    Challengers have local knowledge (field surveys, resident reports), so
    they overwhelmingly target claims that will fail; we sample the false
    and valid strata separately to hit the documented share.  When a
    state's false-claim pool runs dry (small states with aggressive
    campaigns), the remainder comes from valid claims — success rates
    degrade there exactly as they would in practice.
    """
    false_pool = rows[~truth[rows]]
    true_pool = rows[truth[rows]]
    n_false = min(int(round(target_success_share * budget)), false_pool.size)
    n_true = min(budget - n_false, true_pool.size)
    chosen = []
    if n_false:
        chosen.append(rng.choice(false_pool, size=n_false, replace=False))
    if n_true:
        chosen.append(rng.choice(true_pool, size=n_true, replace=False))
    if not chosen:
        return np.empty(0, dtype=rows.dtype)
    return np.concatenate(chosen)


def _draw_reason(rng: np.random.Generator, technology: int) -> ChallengeReason:
    reasons = list(_REASON_BASE.keys())
    probs = np.array([_REASON_BASE[r] for r in reasons])
    if technology in (70, 71):
        # Wireless: "No Signal" displaces some "Technology Unavailable".
        probs[reasons.index(ChallengeReason.NO_SIGNAL)] += 0.05
        probs[reasons.index(ChallengeReason.TECHNOLOGY_UNAVAILABLE)] -= 0.05
    probs = probs / probs.sum()
    return reasons[int(rng.choice(len(reasons), p=probs))]


def _resolve(
    rng: np.random.Generator,
    is_false_claim: bool,
    concede_propensity: float,
    config: ChallengeConfig,
    bulk_campaign: bool = False,
) -> tuple[ChallengeOutcome, bool, int]:
    """Resolve one challenge: (outcome, fcc_adjudicated, resolution delay).

    Delay is in minor releases: concessions land quickly, FCC adjudication
    takes up to seven months (paper §3).  In bulk campaign states a
    provider may concede even a *valid* claim rather than contest
    thousands of filings individually.
    """
    if is_false_claim:
        if rng.random() < concede_propensity:
            return ChallengeOutcome.PROVIDER_CONCEDED, False, int(rng.integers(1, 5))
        if rng.random() < config.service_changed_given_negotiated:
            return ChallengeOutcome.SERVICE_CHANGED, False, int(rng.integers(3, 9))
        if rng.random() < config.fcc_accuracy_on_false:
            return ChallengeOutcome.FCC_UPHELD, True, int(rng.integers(8, 15))
        return ChallengeOutcome.FCC_OVERTURNED, True, int(rng.integers(8, 15))
    if bulk_campaign and rng.random() < config.bulk_concession_rate:
        if rng.random() < config.bulk_conceded_share:
            return ChallengeOutcome.PROVIDER_CONCEDED, False, int(rng.integers(1, 5))
        return ChallengeOutcome.SERVICE_CHANGED, False, int(rng.integers(3, 9))
    if rng.random() < config.withdrawn_given_true:
        return ChallengeOutcome.CHALLENGE_WITHDRAWN, False, int(rng.integers(2, 7))
    if rng.random() < config.fcc_accuracy_on_true:
        return ChallengeOutcome.FCC_OVERTURNED, True, int(rng.integers(8, 15))
    return ChallengeOutcome.FCC_UPHELD, True, int(rng.integers(8, 15))


def simulate_challenges(
    table: AvailabilityTable,
    universe: ProviderUniverse,
    config: ChallengeConfig | None = None,
    seed: int = 0,
) -> list[ChallengeRecord]:
    """Run the challenge process over an initial filing round."""
    config = (config or ChallengeConfig()).validate()
    claims, truth, state_idx, n_bsls = _claim_truth_by_key(table)
    weights_by_state = challenge_weights()
    total_budget = int(round(config.challenge_rate * len(claims)))
    records: list[ChallengeRecord] = []
    challenge_id = 0

    state_rows: dict[int, np.ndarray] = {}
    for i, s in enumerate(STATES):
        rows = np.where(state_idx == i)[0]
        if rows.size:
            state_rows[i] = rows

    for i, rows in state_rows.items():
        state = STATES[i]
        rng = stream_rng(seed, "challenges", state.abbr)
        weight = weights_by_state[state.abbr]
        bulk_campaign = weight >= config.campaign_weight_threshold
        budget = int(round(total_budget * weight))
        # Outside campaign states, challengers only file what their field
        # evidence supports, so the budget is capped by the pool of
        # genuinely-suspicious claims.  Campaign states challenge at scale
        # regardless (and providers bulk-concede).
        false_pool = int((~truth[rows]).sum())
        floor_share = (
            config.campaign_false_share if bulk_campaign else config.target_success_share
        )
        cap = min(rows.size, int(round(false_pool / max(floor_share, 1e-9))))
        budget = min(budget, cap)
        if budget == 0:
            continue
        chosen = _stratified_targets(
            rng, rows, truth, budget, config.target_success_share
        )
        for row in chosen:
            pid, cell, tech = claims[row]
            provider = universe.provider(pid)
            outcome, adjudicated, delay = _resolve(
                rng, not truth[row], provider.concede_propensity, config,
                bulk_campaign=bulk_campaign,
            )
            records.append(
                ChallengeRecord(
                    challenge_id=challenge_id,
                    provider_id=pid,
                    cell=cell,
                    technology=tech,
                    state=state.abbr,
                    n_bsls=int(n_bsls[row]),
                    reason=_draw_reason(rng, tech),
                    outcome=outcome,
                    fcc_adjudicated=adjudicated,
                    resolved_release=min(delay, config.n_minor_releases),
                    major_release=0,
                )
            )
            challenge_id += 1

    # A thin second wave against the next major release (paper Fig. 1).
    rng = stream_rng(seed, "challenges", "second-release")
    n_second = int(round(len(records) * config.second_release_volume_ratio))
    if n_second and claims:
        idx = rng.choice(len(claims), size=min(n_second, len(claims)), replace=False)
        for row in idx:
            pid, cell, tech = claims[row]
            provider = universe.provider(pid)
            outcome, adjudicated, delay = _resolve(
                rng, not truth[row], provider.concede_propensity, config
            )
            records.append(
                ChallengeRecord(
                    challenge_id=challenge_id,
                    provider_id=pid,
                    cell=cell,
                    technology=tech,
                    state=STATES[int(state_idx[row])].abbr,
                    n_bsls=int(n_bsls[row]),
                    reason=_draw_reason(rng, tech),
                    outcome=outcome,
                    fcc_adjudicated=adjudicated,
                    resolved_release=min(delay, config.n_minor_releases),
                    major_release=1,
                )
            )
            challenge_id += 1
    return records


def outcome_distribution(records: list[ChallengeRecord]) -> dict[str, tuple[int, float]]:
    """BSL-weighted outcome counts and shares (paper Table 2 layout)."""
    totals: dict[ChallengeOutcome, int] = {o: 0 for o in ChallengeOutcome}
    for record in records:
        totals[record.outcome] += record.n_bsls
    grand = sum(totals.values()) or 1
    out = {}
    successful = sum(v for o, v in totals.items() if o.succeeded)
    failed = grand - successful
    out["Successful"] = (successful, 100.0 * successful / grand)
    for o in (
        ChallengeOutcome.PROVIDER_CONCEDED,
        ChallengeOutcome.SERVICE_CHANGED,
        ChallengeOutcome.FCC_UPHELD,
    ):
        out[o.value] = (totals[o], 100.0 * totals[o] / grand)
    out["Failed"] = (failed, 100.0 * failed / grand)
    for o in (ChallengeOutcome.CHALLENGE_WITHDRAWN, ChallengeOutcome.FCC_OVERTURNED):
        out[o.value] = (totals[o], 100.0 * totals[o] / grand)
    return out


def reason_distribution(records: list[ChallengeRecord]) -> dict[str, tuple[int, float]]:
    """Reason counts and shares (paper Table 3 layout)."""
    totals: dict[ChallengeReason, int] = {r: 0 for r in ChallengeReason}
    for record in records:
        totals[record.reason] += record.n_bsls
    grand = sum(totals.values()) or 1
    return {
        r.value: (totals[r], 100.0 * totals[r] / grand)
        for r in sorted(totals, key=lambda r: -totals[r])
    }
