"""The Broadband Serviceable Location Fabric (simulated).

The real Fabric — every broadband-serviceable structure in the US — is a
licensed CostQuest dataset the paper could not redistribute.  This module
generates a synthetic Fabric with the spatial statistics the pipeline
depends on:

* locations cluster into towns (2-D Gaussian blobs around town centres,
  with Zipf-distributed town sizes) plus rural *hamlets* — small clusters
  of a few locations, the way rural structures group along roads;
* the per-hex location density matches the paper's Figure 9 (median ≈ 4
  BSLs per resolution-8 hex cell);
* each location carries unit counts and a building type, with community
  anchor institutions (CAIs) flagged separately as in the BDC.

Storage is struct-of-arrays for scale; :class:`BSL` offers a per-row view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fcc.states import STATES, StateInfo, state_by_abbr
from repro.geo import hexgrid
from repro.utils.indexing import ColumnIndex
from repro.utils.rng import stream_rng

__all__ = ["FabricConfig", "BSL", "Town", "Fabric", "generate_fabric"]

#: Building-type codes.
RESIDENTIAL, BUSINESS, CAI = 0, 1, 2
_BUILDING_TYPE_NAMES = {RESIDENTIAL: "residential", BUSINESS: "business", CAI: "cai"}


@dataclass(frozen=True)
class FabricConfig:
    """Knobs controlling synthetic Fabric generation."""

    #: BSLs generated per million of state population.
    locations_per_million: int = 1500
    #: Towns per million of state population.
    towns_per_million: float = 2.5
    #: Std-dev of the town Gaussian in km.
    town_sigma_km: float = 1.0
    #: Zipf exponent for town sizes (larger -> more top-heavy).
    town_zipf_exponent: float = 0.9
    #: Fraction of BSLs placed in rural hamlets rather than towns.
    rural_fraction: float = 0.15
    #: Mean BSLs per rural hamlet (hamlet sizes are Poisson around this).
    #: Calibrated together with ``town_sigma_km`` and ``hamlet_sigma_km`` so
    #: the median BSL count per occupied res-8 hex is 4 (paper Fig. 9).
    hamlet_mean_size: float = 8.0
    #: Spatial spread of a hamlet in km.
    hamlet_sigma_km: float = 0.08
    #: Hex resolution for localization (the NBM publishes res 8).
    hex_resolution: int = 8
    #: Fraction of locations that are businesses / community anchors.
    business_fraction: float = 0.07
    cai_fraction: float = 0.01

    def validate(self) -> "FabricConfig":
        if self.locations_per_million < 1:
            raise ValueError("locations_per_million must be >= 1")
        if not 0.0 <= self.rural_fraction <= 1.0:
            raise ValueError("rural_fraction must be in [0, 1]")
        if self.business_fraction + self.cai_fraction > 0.5:
            raise ValueError("business + CAI fractions unreasonably high")
        return self


@dataclass(frozen=True)
class Town:
    """A population cluster BSLs are generated around."""

    state: str
    lat: float
    lng: float
    weight: float


@dataclass(frozen=True)
class BSL:
    """One Broadband Serviceable Location (a row view into the Fabric)."""

    bsl_id: int
    lat: float
    lng: float
    state: str
    unit_count: int
    building_type: str
    cell: int


class Fabric:
    """The synthetic BSL Fabric: arrays plus spatial/state indexes."""

    def __init__(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        state_idx: np.ndarray,
        unit_counts: np.ndarray,
        building_types: np.ndarray,
        cells: np.ndarray,
        towns: list[Town],
        config: FabricConfig,
    ):
        self.lats = lats
        self.lngs = lngs
        self.state_idx = state_idx
        self.unit_counts = unit_counts
        self.building_types = building_types
        self.cells = cells
        self.towns = towns
        self.config = config
        self._state_abbrs = np.array([s.abbr for s in STATES])
        # cell id -> array of BSL row indices
        order = np.argsort(cells, kind="stable")
        sorted_cells = cells[order]
        boundaries = np.r_[0, np.where(np.diff(sorted_cells))[0] + 1, cells.size]
        self._by_cell: dict[int, np.ndarray] = {
            int(sorted_cells[boundaries[i]]): order[boundaries[i] : boundaries[i + 1]]
            for i in range(boundaries.size - 1)
        }
        self._by_state: dict[str, np.ndarray] = {
            s.abbr: np.where(state_idx == i)[0] for i, s in enumerate(STATES)
        }
        # Occupied-cell index + per-cell BSL counts for batched lookups.
        occupied = sorted_cells[boundaries[:-1]].astype(np.uint64)
        self._occupied_index = ColumnIndex(occupied)
        self._occupied_counts = np.diff(boundaries).astype(np.int64)

    # -- size and row access ------------------------------------------------

    def __len__(self) -> int:
        return int(self.lats.size)

    def bsl(self, bsl_id: int) -> BSL:
        """Materialize one row as a :class:`BSL`."""
        if not 0 <= bsl_id < len(self):
            raise IndexError(f"bsl_id {bsl_id} out of range")
        return BSL(
            bsl_id=bsl_id,
            lat=float(self.lats[bsl_id]),
            lng=float(self.lngs[bsl_id]),
            state=str(self._state_abbrs[self.state_idx[bsl_id]]),
            unit_count=int(self.unit_counts[bsl_id]),
            building_type=_BUILDING_TYPE_NAMES[int(self.building_types[bsl_id])],
            cell=int(self.cells[bsl_id]),
        )

    # -- indexes ------------------------------------------------------------

    @property
    def occupied_cells(self) -> list[int]:
        """Hex cells containing at least one BSL."""
        return list(self._by_cell.keys())

    def bsls_in_cell(self, cell: int) -> np.ndarray:
        """Row indices of BSLs in a hex cell (empty array if none)."""
        return self._by_cell.get(int(cell), np.empty(0, dtype=np.int64))

    def bsl_count_in_cell(self, cell: int) -> int:
        return int(self.bsls_in_cell(cell).size)

    def bsl_counts_in_cells(self, cells: np.ndarray) -> np.ndarray:
        """BSL count per queried cell (0 for unoccupied), vectorized.

        One indexed lookup over the occupied-cell table replaces a
        ``bsl_count_in_cell`` call per cell; equal to the scalar method
        element-wise.
        """
        cells = np.asarray(cells, dtype=np.uint64)
        if self._occupied_counts.size == 0 or cells.size == 0:
            return np.zeros(cells.size, dtype=np.int64)
        pos = self._occupied_index.positions(cells)
        found = pos >= 0
        return np.where(
            found, self._occupied_counts[np.where(found, pos, 0)], 0
        ).astype(np.int64)

    def bsls_in_state(self, abbr: str) -> np.ndarray:
        """Row indices of BSLs in a state."""
        state_by_abbr(abbr)  # validate
        return self._by_state.get(abbr.upper(), np.empty(0, dtype=np.int64))

    def cells_in_state(self, abbr: str) -> list[int]:
        """Distinct occupied cells in a state."""
        rows = self.bsls_in_state(abbr)
        return [int(c) for c in np.unique(self.cells[rows])]

    def towns_in_state(self, abbr: str) -> list[Town]:
        return [t for t in self.towns if t.state == abbr.upper()]

    def state_of_cell(self, cell: int) -> str | None:
        """State of a cell's BSLs (None for unoccupied cells)."""
        rows = self.bsls_in_cell(cell)
        if rows.size == 0:
            return None
        return str(self._state_abbrs[self.state_idx[rows[0]]])

    def bsls_per_cell_distribution(self) -> np.ndarray:
        """Array of per-occupied-cell BSL counts (paper Fig. 9)."""
        return np.array([rows.size for rows in self._by_cell.values()])


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


def generate_fabric(
    config: FabricConfig | None = None,
    seed: int = 0,
    states: tuple[StateInfo, ...] = STATES,
) -> Fabric:
    """Generate a synthetic Fabric (see module docstring for the model)."""
    config = (config or FabricConfig()).validate()
    all_lats: list[np.ndarray] = []
    all_lngs: list[np.ndarray] = []
    all_state_idx: list[np.ndarray] = []
    towns: list[Town] = []
    state_index_map = {s.abbr: i for i, s in enumerate(STATES)}

    for state in states:
        rng = stream_rng(seed, "fabric", state.abbr)
        n_bsl = max(10, int(round(config.locations_per_million * state.population_m)))
        n_towns = max(1, int(round(config.towns_per_million * state.population_m)))
        # Inset town centres so the Gaussian blobs stay mostly inside the box.
        lat_margin = 0.05 * (state.lat_max - state.lat_min)
        lng_margin = 0.05 * (state.lng_max - state.lng_min)
        town_lats = rng.uniform(state.lat_min + lat_margin, state.lat_max - lat_margin, n_towns)
        town_lngs = rng.uniform(state.lng_min + lng_margin, state.lng_max - lng_margin, n_towns)
        weights = _zipf_weights(n_towns, config.town_zipf_exponent)
        for tlat, tlng, w in zip(town_lats, town_lngs, weights):
            towns.append(Town(state.abbr, float(tlat), float(tlng), float(w)))

        n_rural = int(round(config.rural_fraction * n_bsl))
        n_urban = n_bsl - n_rural
        assignment = rng.choice(n_towns, size=n_urban, p=weights)
        sigma_lat = config.town_sigma_km / 111.0
        coslat = np.cos(np.radians((state.lat_min + state.lat_max) / 2.0))
        sigma_lng = sigma_lat / max(coslat, 0.2)
        lats = town_lats[assignment] + rng.normal(0.0, sigma_lat, n_urban)
        lngs = town_lngs[assignment] + rng.normal(0.0, sigma_lng, n_urban)
        # Rural hamlets: a few structures per cluster, not a uniform dusting.
        n_hamlets = max(1, int(round(n_rural / config.hamlet_mean_size)))
        hamlet_lats = rng.uniform(state.lat_min, state.lat_max, n_hamlets)
        hamlet_lngs = rng.uniform(state.lng_min, state.lng_max, n_hamlets)
        hamlet_of = rng.integers(0, n_hamlets, n_rural)
        h_sigma_lat = config.hamlet_sigma_km / 111.0
        h_sigma_lng = h_sigma_lat / max(coslat, 0.2)
        rural_lats = hamlet_lats[hamlet_of] + rng.normal(0.0, h_sigma_lat, n_rural)
        rural_lngs = hamlet_lngs[hamlet_of] + rng.normal(0.0, h_sigma_lng, n_rural)
        lats = np.clip(np.r_[lats, rural_lats], state.lat_min, state.lat_max)
        lngs = np.clip(np.r_[lngs, rural_lngs], state.lng_min, state.lng_max)
        all_lats.append(lats)
        all_lngs.append(lngs)
        all_state_idx.append(
            np.full(n_bsl, state_index_map[state.abbr], dtype=np.int16)
        )

    lats = np.concatenate(all_lats)
    lngs = np.concatenate(all_lngs)
    state_idx = np.concatenate(all_state_idx)

    rng = stream_rng(seed, "fabric", "attributes")
    n = lats.size
    # Unit counts: overwhelmingly single-unit, a thin tail of large MDUs.
    unit_counts = np.ones(n, dtype=np.int32)
    mdu = rng.random(n) < 0.04
    unit_counts[mdu] = rng.integers(2, 120, int(mdu.sum()))
    building_types = np.zeros(n, dtype=np.int8)
    draw = rng.random(n)
    building_types[draw < config.business_fraction] = BUSINESS
    building_types[draw >= 1.0 - config.cai_fraction] = CAI

    cells = hexgrid.latlng_to_cell_vec(lats, lngs, config.hex_resolution)
    return Fabric(
        lats=lats,
        lngs=lngs,
        state_idx=state_idx,
        unit_counts=unit_counts,
        building_types=building_types,
        cells=cells,
        towns=towns,
        config=config,
    )
