"""FCC registration data: FRNs and the BDC Provider ID table.

Every BDC participant has a Provider ID associated with one or more FCC
Registration Numbers (FRNs); FRN registration records carry the legal
entity's name, contact email, and physical address.  The paper enriches
the public BDC Provider ID table with FRN registration data and matches it
against ARIN WHOIS to build the provider <-> ASN crosswalk.

Registration data is *dirty* in characteristic ways — inconsistent
capitalization, punctuation, suffix styles ("LLC" vs "L.L.C."), and postal
abbreviations — which is precisely why the paper's matching pipeline
canonicalizes before comparing.  The noise model here reproduces those
artifacts deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fcc.providers import Provider, ProviderUniverse
from repro.utils.rng import stream_rng

__all__ = ["FRNRecord", "ProviderIDTable", "build_provider_id_table", "perturb_name", "perturb_address"]


@dataclass(frozen=True)
class FRNRecord:
    """One FRN registration: the legal entity behind a filing."""

    frn: int
    provider_id: int
    company_name: str
    contact_email: str
    address: str
    state: str


_SUFFIX_STYLES = ("{}", "{} Inc", "{} Inc.", "{}, Inc.", "{} LLC", "{} L.L.C.")


def perturb_name(rng: np.random.Generator, name: str) -> str:
    """Apply registration-style formatting noise to a company name."""
    base = name
    for suffix in (" Inc", " LLC", " Co"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    style = _SUFFIX_STYLES[int(rng.integers(len(_SUFFIX_STYLES)))]
    out = style.format(base)
    roll = rng.random()
    if roll < 0.25:
        out = out.upper()
    elif roll < 0.35:
        out = out.lower()
    return out


_ADDRESS_SUBS = (
    ("Street", "St"),
    ("Avenue", "Ave"),
    ("Drive", "Dr"),
    ("Boulevard", "Blvd"),
    ("Parkway", "Pkwy"),
    ("Road", "Rd"),
    ("Highway", "Hwy"),
)


def perturb_address(rng: np.random.Generator, address: str) -> str:
    """Apply postal formatting noise (mixed abbreviation styles, case)."""
    out = address
    for full, abbr in _ADDRESS_SUBS:
        if full in out and rng.random() < 0.5:
            out = out.replace(full, abbr)
    if rng.random() < 0.3:
        out = out.replace(",", "")
    if rng.random() < 0.2:
        out = out.upper()
    return out


class ProviderIDTable:
    """The (augmented) BDC Provider ID table: provider_id -> FRN records."""

    def __init__(self, records: list[FRNRecord]):
        self.records = records
        self._by_provider: dict[int, list[FRNRecord]] = {}
        self._by_frn: dict[int, FRNRecord] = {}
        for record in records:
            self._by_provider.setdefault(record.provider_id, []).append(record)
            self._by_frn[record.frn] = record

    def __len__(self) -> int:
        return len(self.records)

    @property
    def provider_ids(self) -> list[int]:
        return sorted(self._by_provider.keys())

    def frns_for_provider(self, provider_id: int) -> list[FRNRecord]:
        return list(self._by_provider.get(provider_id, []))

    def record_for_frn(self, frn: int) -> FRNRecord:
        try:
            return self._by_frn[frn]
        except KeyError:
            raise KeyError(f"unknown FRN {frn}") from None


def build_provider_id_table(
    universe: ProviderUniverse, seed: int = 0
) -> ProviderIDTable:
    """Generate FRN registration records for every provider."""
    records: list[FRNRecord] = []
    for provider in universe.providers:
        rng = stream_rng(seed, "frn", provider.provider_id)
        for frn in provider.frns:
            records.append(
                FRNRecord(
                    frn=frn,
                    provider_id=provider.provider_id,
                    company_name=perturb_name(rng, provider.name),
                    contact_email=provider.contact_email,
                    address=perturb_address(rng, provider.hq_address),
                    state=provider.hq_state,
                )
            )
    return ProviderIDTable(records)
