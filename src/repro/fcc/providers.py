"""Internet service providers: identities, footprints, and claim strategies.

Each simulated provider carries everything the downstream pipeline touches:

* an FCC-style identity (Provider ID, FRNs, legal name, brand, contact
  email/address) used by the ASN-crosswalk matching;
* per-(state, technology) *true* and *claimed* hex footprints.  The gap
  between the two is the provider's **overclaim** — the quantity the
  paper's model learns to detect;
* a BDC *methodology*: how the provider decided what to report.  The
  paper found methodologies ranged from subscriber addresses to outright
  disallowed census-block reporting, with blocks of small ISPs filing
  word-for-word identical consultant-written text.  Overclaim rates here
  are driven by methodology, which is what makes the methodology-text
  embedding an informative feature;
* service attributes per technology (advertised speeds, latency class).

Generation is deterministic given a seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.fcc.fabric import Fabric
from repro.fcc.states import STATES, StateInfo, state_by_abbr
from repro.geo import hexgrid
from repro.utils.rng import stream_rng

__all__ = [
    "TECHNOLOGY_CODES",
    "TECHNOLOGY_NAMES",
    "Methodology",
    "ServiceTier",
    "Provider",
    "FootprintPair",
    "ProviderConfig",
    "ProviderUniverse",
    "generate_providers",
    "methodology_text",
]

#: FCC BDC technology codes used in this reproduction.
TECHNOLOGY_CODES = (10, 40, 50, 60, 70, 71)
TECHNOLOGY_NAMES = {
    10: "Copper",
    40: "Cable",
    50: "Fiber",
    60: "GSO Satellite",
    70: "Unlicensed Fixed Wireless",
    71: "Licensed Fixed Wireless",
}

#: The eight large terrestrial ISPs the paper evaluates individually
#: (Figure 6), with their filing brand names and primary technologies.
MAJOR_ISPS = (
    ("Comcast Corporation", "Xfinity", (40,)),
    ("Charter Communications", "Spectrum", (40,)),
    ("AT&T Services Inc", "AT&T", (50, 10)),
    ("Verizon Communications", "Verizon Fios", (50, 10)),
    ("T-Mobile US", "T-Mobile Home Internet", (71,)),
    ("Lumen Technologies", "CenturyLink", (50, 10)),
    ("Frontier Communications", "Frontier", (50, 10)),
    ("United States Cellular Corporation", "US Cellular", (71, 70)),
)


class Methodology(enum.Enum):
    """How a provider generated its BDC availability list."""

    SUBSCRIBER_ADDRESSES = "subscriber_addresses"
    INFRASTRUCTURE_MAPS = "infrastructure_maps"
    PROPAGATION_MODEL = "propagation_model"
    CENSUS_BLOCKS = "census_blocks"
    CONSULTANT_TEMPLATE = "consultant_template"


#: Overclaim-rate ranges by methodology: the fraction of a provider's
#: claimed hexes they do not actually serve.  Census-block reporting (a
#: Form-477 habit the BDC explicitly disallows) produces the heaviest
#: overstatement; subscriber-address lists the lightest.
_OVERCLAIM_RANGES = {
    Methodology.SUBSCRIBER_ADDRESSES: (0.02, 0.10),
    Methodology.INFRASTRUCTURE_MAPS: (0.06, 0.16),
    Methodology.PROPAGATION_MODEL: (0.15, 0.35),
    Methodology.CENSUS_BLOCKS: (0.30, 0.50),
    Methodology.CONSULTANT_TEMPLATE: (0.10, 0.28),
}

_METHODOLOGY_TEMPLATES = {
    Methodology.SUBSCRIBER_ADDRESSES: (
        "{name} reports broadband serviceable locations based on our active "
        "subscriber billing records and service-order database. A location is "
        "reported as served where we have an existing customer or have "
        "completed a standard installation within ten business days in the "
        "prior reporting period."
    ),
    Methodology.INFRASTRUCTURE_MAPS: (
        "{name} determines availability from engineering records of our "
        "outside plant, including fiber routes, splice cases, and cabinet "
        "serving areas maintained in our GIS system. Locations within a "
        "standard drop length of distribution plant are reported as served."
    ),
    Methodology.PROPAGATION_MODEL: (
        "{name} models coverage for fixed wireless service using a terrain "
        "aware RF propagation study calibrated with drive test data. "
        "Locations with predicted signal strength sufficient to deliver the "
        "advertised speed tier are reported as serviceable."
    ),
    Methodology.CENSUS_BLOCKS: (
        "{name} reports service availability for all locations within census "
        "blocks where the company has any existing plant or customers, "
        "consistent with our previous FCC Form 477 filings."
    ),
    Methodology.CONSULTANT_TEMPLATE: (
        "This filing was prepared on behalf of the provider by its "
        "consultant. Serviceable locations were identified by buffering "
        "network infrastructure supplied by the provider and intersecting "
        "the resulting polygons with the Broadband Serviceable Location "
        "Fabric, then reviewed by provider staff for accuracy prior to "
        "submission."
    ),
}


def methodology_text(method: Methodology, provider_name: str) -> str:
    """The free-text methodology a provider files with the BDC.

    Consultant-template filings are word-for-word identical across
    providers (the paper observed this for consultant-prepared filings);
    all other methodologies mention the provider by name.
    """
    template = _METHODOLOGY_TEMPLATES[method]
    if method is Methodology.CONSULTANT_TEMPLATE:
        return template
    return template.format(name=provider_name)


@dataclass(frozen=True)
class ServiceTier:
    """Advertised service for one technology."""

    technology: int
    max_download_mbps: float
    max_upload_mbps: float
    low_latency: bool


@dataclass(frozen=True)
class FootprintPair:
    """True vs claimed hex cells for one (provider, state, technology)."""

    true_cells: frozenset[int]
    claimed_cells: frozenset[int]

    @property
    def overclaimed_cells(self) -> frozenset[int]:
        return self.claimed_cells - self.true_cells

    @property
    def overclaim_fraction(self) -> float:
        if not self.claimed_cells:
            return 0.0
        return len(self.overclaimed_cells) / len(self.claimed_cells)


@dataclass(frozen=True)
class Provider:
    """One ISP participating in the BDC."""

    provider_id: int
    name: str
    brand_name: str
    holding_company: str
    size_class: str  # 'national' | 'regional' | 'local' | 'satellite'
    states: tuple[str, ...]
    tiers: tuple[ServiceTier, ...]
    methodology: Methodology
    methodology_text: str
    overclaim_rate: float
    #: Probability the provider concedes a valid challenge rather than
    #: disputing it (drives Table 2's outcome mix).
    concede_propensity: float
    #: Probability the provider runs an internal audit that removes
    #: overclaimed locations in a minor NBM update (the paper's
    #: "non-archived changes").
    self_correction_rate: float
    frns: tuple[int, ...]
    contact_email: str
    email_domain: str
    hq_address: str
    hq_state: str

    @property
    def technologies(self) -> tuple[int, ...]:
        return tuple(t.technology for t in self.tiers)

    @property
    def is_satellite(self) -> bool:
        return self.size_class == "satellite"

    def tier_for(self, technology: int) -> ServiceTier:
        for tier in self.tiers:
            if tier.technology == technology:
                return tier
        raise KeyError(f"provider {self.provider_id} has no technology {technology}")


@dataclass(frozen=True)
class ProviderConfig:
    """Knobs controlling the provider universe."""

    n_providers: int = 220
    n_satellite: int = 3
    regional_fraction: float = 0.22
    #: States a regional provider operates in.
    regional_states: tuple[int, int] = (2, 6)
    #: Anchor towns per state for local / regional / national providers.
    anchors_local: tuple[int, int] = (1, 4)
    anchors_regional: tuple[int, int] = (2, 7)
    anchors_national_fraction: float = 0.45
    #: Footprint disk radius (hexes) by technology code.
    radius_by_tech: dict[int, tuple[int, int]] = field(
        default_factory=lambda: {
            10: (4, 9),
            40: (3, 8),
            50: (2, 6),
            70: (6, 13),
            71: (6, 13),
        }
    )
    #: Extra rings beyond the true footprint that overclaims may extend into.
    overclaim_extra_rings: int = 3

    def validate(self) -> "ProviderConfig":
        if self.n_providers < len(MAJOR_ISPS) + self.n_satellite + 5:
            raise ValueError(
                "n_providers too small to hold majors, satellites, and a tail"
            )
        if not 0.0 <= self.regional_fraction <= 1.0:
            raise ValueError("regional_fraction must be in [0, 1]")
        return self


_NAME_ADJECTIVES = (
    "Valley", "Prairie", "Summit", "Pioneer", "Heartland", "Lakeside",
    "Bluegrass", "Cascade", "Canyon", "Harbor", "Redwood", "Mesa",
    "Frontier", "Golden", "Granite", "Juniper", "Keystone", "Liberty",
    "Meadow", "Northern", "Ozark", "Piedmont", "Ridgeline", "Sierra",
    "Timber", "Tristate", "Wildcat", "Windmill", "Yellowstone", "Zephyr",
)
_NAME_NOUNS = (
    "Telecom", "Communications", "Cable", "Fiber", "Broadband", "Wireless",
    "Networks", "Cooperative", "Telephone Company", "Internet",
)
_SUFFIXES = ("Inc", "LLC", "Co", "")


def _company_name(rng: np.random.Generator) -> str:
    adj = _NAME_ADJECTIVES[int(rng.integers(len(_NAME_ADJECTIVES)))]
    noun = _NAME_NOUNS[int(rng.integers(len(_NAME_NOUNS)))]
    suffix = _SUFFIXES[int(rng.integers(len(_SUFFIXES)))]
    name = f"{adj} {noun}"
    return f"{name} {suffix}".strip()


def _email_domain(name: str) -> str:
    stem = "".join(
        ch for ch in name.lower() if ch.isalnum()
    )
    for junk in ("inc", "llc", "co"):
        if stem.endswith(junk):
            stem = stem[: -len(junk)]
    return f"{stem[:24]}.com"


_STREET_NAMES = (
    "Main Street", "Oak Avenue", "Maple Drive", "2nd Street", "Commerce Boulevard",
    "Industrial Parkway", "Telegraph Road", "Depot Street", "Highway 30",
    "County Road 12",
)


def _street_address(rng: np.random.Generator, state: str) -> str:
    number = int(rng.integers(100, 9900))
    street = _STREET_NAMES[int(rng.integers(len(_STREET_NAMES)))]
    zip5 = int(rng.integers(10000, 99999))
    return f"{number} {street}, Springfield, {state} {zip5}"


def _speed_tier(rng: np.random.Generator, technology: int) -> ServiceTier:
    """Draw a realistic advertised tier for a technology."""
    if technology == 50:  # fiber
        down = float(rng.choice([300, 500, 940, 1000, 2000], p=[0.1, 0.15, 0.3, 0.35, 0.1]))
        up = down
        low_latency = True
    elif technology == 40:  # cable / DOCSIS
        down = float(rng.choice([200, 400, 800, 1200], p=[0.15, 0.25, 0.3, 0.3]))
        up = float(rng.choice([10, 20, 35, 50], p=[0.2, 0.35, 0.3, 0.15]))
        low_latency = True
    elif technology == 10:  # copper / DSL
        down = float(rng.choice([10, 25, 50, 100], p=[0.25, 0.35, 0.25, 0.15]))
        up = max(1.0, down / 8.0)
        low_latency = bool(rng.random() < 0.8)
    elif technology in (70, 71):  # fixed wireless
        down = float(rng.choice([25, 50, 100, 200], p=[0.25, 0.35, 0.3, 0.1]))
        up = float(rng.choice([5, 10, 20], p=[0.4, 0.4, 0.2]))
        low_latency = bool(rng.random() < 0.9)
    elif technology == 60:  # GSO satellite
        down, up, low_latency = 100.0, 12.0, False
    else:
        raise ValueError(f"unknown technology code {technology}")
    return ServiceTier(technology, down, up, low_latency)


class ProviderUniverse:
    """All providers plus their per-(state, technology) footprints."""

    def __init__(
        self,
        providers: list[Provider],
        footprints: dict[tuple[int, str, int], FootprintPair],
        config: ProviderConfig,
    ):
        self.providers = providers
        self.footprints = footprints
        self.config = config
        self._by_id = {p.provider_id: p for p in providers}

    def __len__(self) -> int:
        return len(self.providers)

    def add_provider(
        self,
        provider: Provider,
        footprints: dict[tuple[str, int], FootprintPair],
    ) -> None:
        """Register an externally-constructed provider (case studies).

        ``footprints`` is keyed by (state, technology).
        """
        if provider.provider_id in self._by_id:
            raise ValueError(f"provider_id {provider.provider_id} already exists")
        self.providers.append(provider)
        self._by_id[provider.provider_id] = provider
        for (state, tech), fp in footprints.items():
            self.footprints[(provider.provider_id, state.upper(), tech)] = fp

    def replace_provider(self, provider: Provider) -> None:
        """Swap an existing provider's record (scenario mutators).

        Footprints are keyed by provider id and untouched; the provider's
        identity fields, tiers, and methodology take effect everywhere
        downstream of the swap.
        """
        if provider.provider_id not in self._by_id:
            raise KeyError(f"unknown provider_id {provider.provider_id}")
        for i, existing in enumerate(self.providers):
            if existing.provider_id == provider.provider_id:
                self.providers[i] = provider
                break
        self._by_id[provider.provider_id] = provider

    def provider(self, provider_id: int) -> Provider:
        try:
            return self._by_id[provider_id]
        except KeyError:
            raise KeyError(f"unknown provider_id {provider_id}") from None

    @property
    def terrestrial(self) -> list[Provider]:
        return [p for p in self.providers if not p.is_satellite]

    @property
    def majors(self) -> list[Provider]:
        """The eight national terrestrial ISPs (paper Fig. 6)."""
        return [p for p in self.providers if p.size_class == "national"]

    def footprint(
        self, provider_id: int, state: str, technology: int
    ) -> FootprintPair | None:
        return self.footprints.get((provider_id, state.upper(), technology))

    def footprints_for_provider(
        self, provider_id: int
    ) -> dict[tuple[str, int], FootprintPair]:
        return {
            (state, tech): fp
            for (pid, state, tech), fp in self.footprints.items()
            if pid == provider_id
        }

    def claimed_cells(self, provider_id: int) -> set[int]:
        """Union of claimed cells across states/technologies."""
        cells: set[int] = set()
        for (pid, _, _), fp in self.footprints.items():
            if pid == provider_id:
                cells.update(fp.claimed_cells)
        return cells


def _disk_footprint(
    fabric: Fabric,
    state: StateInfo,
    anchors: list[tuple[float, float]],
    radius: int,
    occupied: set[int],
) -> set[int]:
    """Occupied cells within ``radius`` rings of any anchor town."""
    cells: set[int] = set()
    for lat, lng in anchors:
        center = hexgrid.latlng_to_cell(lat, lng, fabric.config.hex_resolution)
        cells.update(int(c) for c in hexgrid.grid_disk(center, radius))
    return cells & occupied


def _overclaim_cells(
    rng: np.random.Generator,
    fabric: Fabric,
    anchors: list[tuple[float, float]],
    true_cells: set[int],
    occupied: set[int],
    overclaim_rate: float,
    served_by_any: set[int] | None = None,
    served_penalty: float = 15.0,
) -> set[int]:
    """Sample occupied cells beyond the true footprint to overclaim.

    Overclaims are drawn from the occupied cells *nearest* the genuine
    service area — where a sloppy buffer, a stale propagation study, or a
    census-block boundary would place them (typically the next hamlet
    over).  Cells already served by some other provider are strongly
    deprioritized: the overclaims that matter (and that get challenged)
    are the ones rendering genuinely-unserved communities ineligible for
    funding.  A distance jitter keeps the boundary ragged.
    """
    candidates = np.array(sorted(occupied - true_cells), dtype=np.uint64)
    if candidates.size == 0 or not true_cells:
        return set()
    target = int(round(overclaim_rate / max(1e-9, 1.0 - overclaim_rate) * len(true_cells)))
    target = min(target, candidates.size)
    if target == 0:
        return set()
    dist = np.full(candidates.size, np.inf)
    for lat, lng in anchors:
        center = hexgrid.latlng_to_cell(lat, lng, fabric.config.hex_resolution)
        dist = np.minimum(dist, hexgrid.grid_distance_vec(candidates, center))
    if served_by_any:
        served_mask = np.array([int(c) in served_by_any for c in candidates])
        dist = dist + served_penalty * served_mask
    jitter = rng.exponential(scale=max(2.0, 0.15 * float(np.median(dist))), size=dist.size)
    order = np.argsort(dist + jitter)
    return {int(candidates[i]) for i in order[:target]}


def generate_providers(
    fabric: Fabric,
    config: ProviderConfig | None = None,
    seed: int = 0,
) -> ProviderUniverse:
    """Generate the provider universe over a Fabric."""
    config = (config or ProviderConfig()).validate()
    providers: list[Provider] = []
    footprints: dict[tuple[int, str, int], FootprintPair] = {}
    id_rng = stream_rng(seed, "providers", "ids")
    next_provider_id = 100000
    next_frn = 10_000_000

    occupied_by_state: dict[str, set[int]] = {
        s.abbr: set(fabric.cells_in_state(s.abbr)) for s in STATES
    }
    states_with_towns = [s for s in STATES if fabric.towns_in_state(s.abbr)]

    def _make_identity(rng, name, size_class):
        nonlocal next_provider_id, next_frn
        provider_id = next_provider_id
        next_provider_id += int(id_rng.integers(1, 9))
        n_frn = 1 if size_class in ("local",) else int(rng.integers(1, 4))
        frns = tuple(range(next_frn, next_frn + n_frn))
        next_frn += n_frn + int(id_rng.integers(1, 5))
        domain = _email_domain(name)
        email = f"noc@{domain}"
        return provider_id, frns, email, domain

    # Overclaim placement needs to know which cells *anyone* genuinely
    # serves, so footprints build in two passes: true service areas for all
    # providers first, then overclaims preferring unserved cells.
    pending_overclaims: list[tuple[int, str, int, list, float]] = []

    def _build_footprints(rng, provider_id, state_abbrs, tiers, method, overclaim_rate):
        for abbr in state_abbrs:
            state = state_by_abbr(abbr)
            towns = fabric.towns_in_state(abbr)
            if not towns:
                continue
            occupied = occupied_by_state[abbr]
            for tier in tiers:
                tech = tier.technology
                if tech == 60:
                    # GSO satellite: claims essentially every location.
                    footprints[(provider_id, abbr, tech)] = FootprintPair(
                        frozenset(occupied), frozenset(occupied)
                    )
                    continue
                lo, hi = config.radius_by_tech[tech]
                radius = int(rng.integers(lo, hi + 1))
                anchors = _pick_anchors(rng, towns, providers_size_class[provider_id], config)
                true_cells = _disk_footprint(fabric, state, anchors, radius, occupied)
                if not true_cells:
                    continue
                footprints[(provider_id, abbr, tech)] = FootprintPair(
                    frozenset(true_cells), frozenset(true_cells)
                )
                if overclaim_rate > 0:
                    pending_overclaims.append(
                        (provider_id, abbr, tech, anchors, overclaim_rate)
                    )

    providers_size_class: dict[int, str] = {}

    # --- the eight national terrestrial ISPs -------------------------------
    for name, brand, techs in MAJOR_ISPS:
        rng = stream_rng(seed, "providers", name)
        provider_id, frns, email, domain = _make_identity(rng, name, "national")
        providers_size_class[provider_id] = "national"
        n_states = int(rng.integers(18, 40))
        idx = rng.choice(len(states_with_towns), size=n_states, replace=False)
        state_abbrs = tuple(states_with_towns[i].abbr for i in idx)
        tiers = tuple(_speed_tier(rng, t) for t in techs)
        method = (
            Methodology.INFRASTRUCTURE_MAPS
            if 50 in techs or 40 in techs
            else Methodology.PROPAGATION_MODEL
        )
        lo, hi = _OVERCLAIM_RANGES[method]
        overclaim_rate = float(rng.uniform(lo, (lo + hi) / 2.0))
        provider = Provider(
            provider_id=provider_id,
            name=name,
            brand_name=brand,
            holding_company=name,
            size_class="national",
            states=state_abbrs,
            tiers=tiers,
            methodology=method,
            methodology_text=methodology_text(method, name),
            overclaim_rate=overclaim_rate,
            concede_propensity=float(rng.uniform(0.5, 0.75)),
            self_correction_rate=float(rng.uniform(0.15, 0.4)),
            frns=frns,
            contact_email=email,
            email_domain=domain,
            hq_address=_street_address(rng, state_abbrs[0]),
            hq_state=state_abbrs[0],
        )
        providers.append(provider)
        _build_footprints(rng, provider_id, state_abbrs, tiers, method, overclaim_rate)

    # --- satellite providers ------------------------------------------------
    for i in range(config.n_satellite):
        rng = stream_rng(seed, "providers", "satellite", i)
        name = f"SkyLink Satellite {i + 1} Inc"
        provider_id, frns, email, domain = _make_identity(rng, name, "satellite")
        providers_size_class[provider_id] = "satellite"
        tiers = (_speed_tier(rng, 60),)
        state_abbrs = tuple(s.abbr for s in states_with_towns)
        method = Methodology.PROPAGATION_MODEL
        provider = Provider(
            provider_id=provider_id,
            name=name,
            brand_name=name.replace(" Inc", ""),
            holding_company=name,
            size_class="satellite",
            states=state_abbrs,
            tiers=tiers,
            methodology=method,
            methodology_text=methodology_text(method, name),
            overclaim_rate=0.0,
            concede_propensity=0.5,
            self_correction_rate=0.0,
            frns=frns,
            contact_email=email,
            email_domain=domain,
            hq_address=_street_address(rng, "CO"),
            hq_state="CO",
        )
        providers.append(provider)
        _build_footprints(rng, provider_id, state_abbrs, tiers, method, 0.0)

    # --- regional and local providers --------------------------------------
    n_rest = config.n_providers - len(providers)
    methods = list(Methodology)
    for i in range(n_rest):
        rng = stream_rng(seed, "providers", "tail", i)
        name = _company_name(rng)
        is_regional = rng.random() < config.regional_fraction
        size_class = "regional" if is_regional else "local"
        provider_id, frns, email, domain = _make_identity(rng, name, size_class)
        providers_size_class[provider_id] = size_class
        if is_regional:
            k = int(rng.integers(*config.regional_states))
            home = states_with_towns[int(rng.integers(len(states_with_towns)))]
            # Regionals cluster geographically: home state plus nearby ones.
            neighbors = sorted(
                states_with_towns,
                key=lambda s: abs(s.center[0] - home.center[0])
                + abs(s.center[1] - home.center[1]),
            )[: max(k, 1)]
            state_abbrs = tuple(s.abbr for s in neighbors)
        else:
            home = states_with_towns[int(rng.integers(len(states_with_towns)))]
            state_abbrs = (home.abbr,)
        n_tech = int(rng.integers(1, 3))
        tech_pool = [10, 40, 50, 70, 71]
        tech_weights = np.array([0.2, 0.18, 0.27, 0.2, 0.15])
        techs = rng.choice(tech_pool, size=n_tech, replace=False, p=tech_weights)
        tiers = tuple(_speed_tier(rng, int(t)) for t in sorted(techs))
        method = methods[int(rng.choice(len(methods), p=[0.3, 0.2, 0.2, 0.12, 0.18]))]
        lo, hi = _OVERCLAIM_RANGES[method]
        overclaim_rate = float(rng.uniform(lo, hi))
        provider = Provider(
            provider_id=provider_id,
            name=name,
            brand_name=name.replace(" Inc", "").replace(" LLC", ""),
            holding_company=name,
            size_class=size_class,
            states=state_abbrs,
            tiers=tiers,
            methodology=method,
            methodology_text=methodology_text(method, name),
            overclaim_rate=overclaim_rate,
            concede_propensity=float(rng.uniform(0.35, 0.8)),
            self_correction_rate=float(rng.uniform(0.1, 0.55)),
            frns=frns,
            contact_email=email,
            email_domain=domain,
            hq_address=_street_address(rng, state_abbrs[0]),
            hq_state=state_abbrs[0],
        )
        providers.append(provider)
        _build_footprints(rng, provider_id, state_abbrs, tiers, method, overclaim_rate)

    # Pass 2: place overclaims now that every genuine service area is known,
    # preferring cells no terrestrial provider actually serves.
    served_by_any: dict[str, set[int]] = {}
    for (pid, abbr, tech), fp in footprints.items():
        if tech == 60:
            continue
        served_by_any.setdefault(abbr, set()).update(fp.true_cells)
    for pid, abbr, tech, anchors, overclaim_rate in pending_overclaims:
        rng = stream_rng(seed, "overclaim", pid, abbr, tech)
        fp = footprints[(pid, abbr, tech)]
        over = _overclaim_cells(
            rng,
            fabric,
            anchors,
            set(fp.true_cells),
            occupied_by_state[abbr],
            overclaim_rate,
            served_by_any=served_by_any.get(abbr),
        )
        footprints[(pid, abbr, tech)] = FootprintPair(
            fp.true_cells, frozenset(fp.true_cells | over)
        )

    return ProviderUniverse(providers, footprints, config)


def _pick_anchors(
    rng: np.random.Generator,
    towns,
    size_class: str,
    config: ProviderConfig,
) -> list[tuple[float, float]]:
    """Choose the towns a provider's network radiates from in one state."""
    weights = np.array([t.weight for t in towns])
    weights = weights / weights.sum()
    if size_class == "national":
        n = max(1, int(round(config.anchors_national_fraction * len(towns))))
    elif size_class == "regional":
        lo, hi = config.anchors_regional
        n = int(rng.integers(lo, hi + 1))
    else:
        lo, hi = config.anchors_local
        n = int(rng.integers(lo, hi + 1))
    n = min(n, len(towns))
    idx = rng.choice(len(towns), size=n, replace=False, p=weights)
    return [(towns[i].lat, towns[i].lng) for i in idx]
