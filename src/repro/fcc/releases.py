"""NBM releases, bi-weekly updates, and map diffs (paper §4.1.3).

After the initial publication, the FCC re-publishes the NBM roughly every
two weeks.  Minor releases fold in (a) resolutions of public challenges
and (b) *non-archived changes*: claims providers quietly withdraw after
FCC internal quality checks or after a challenge exposes a methodological
flaw in their filing.  Only the challenged locations are ever published —
the quiet removals are observable solely by diffing successive releases,
which is exactly what the paper's archived map captures and what this
module reproduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.challenges import ChallengeRecord
from repro.fcc.providers import ProviderUniverse
from repro.utils.rng import stream_rng

__all__ = [
    "RemovalCause",
    "RemovalEvent",
    "ReleaseTimeline",
    "build_release_timeline",
    "MapDiff",
    "diff_releases",
    "infer_unarchived_changes",
]


class RemovalCause(enum.Enum):
    """Why a claim left the map (simulation-internal; not public)."""

    PUBLIC_CHALLENGE = "public_challenge"
    FCC_QUALITY_CHECK = "fcc_quality_check"
    PROVIDER_SELF_CORRECTION = "provider_self_correction"


@dataclass(frozen=True)
class RemovalEvent:
    """One hex-level claim removed at one minor release."""

    claim: ClaimKey
    release_index: int
    cause: RemovalCause


@dataclass
class ReleaseTimeline:
    """The initial claim set plus its removal history.

    ``claims_at(t)`` reconstructs the public map at minor release ``t``;
    the paper's "map diff" datasets fall out of comparing releases.
    """

    initial_claims: frozenset[ClaimKey]
    removals: list[RemovalEvent]
    n_minor_releases: int
    _removed_by_release: dict[int, set[ClaimKey]] = field(default_factory=dict)

    def __post_init__(self):
        for event in self.removals:
            self._removed_by_release.setdefault(event.release_index, set()).add(
                event.claim
            )

    def claims_at(self, release_index: int) -> frozenset[ClaimKey]:
        """Claims present in the map at a minor release (0 = initial)."""
        if not 0 <= release_index <= self.n_minor_releases:
            raise ValueError(
                f"release_index must be in [0, {self.n_minor_releases}]"
            )
        removed: set[ClaimKey] = set()
        for t in range(1, release_index + 1):
            removed |= self._removed_by_release.get(t, set())
        return frozenset(self.initial_claims - removed)

    @property
    def final_claims(self) -> frozenset[ClaimKey]:
        return self.claims_at(self.n_minor_releases)

    def removal_cause(self, claim: ClaimKey) -> RemovalCause | None:
        for event in self.removals:
            if event.claim == claim:
                return event.cause
        return None


def build_release_timeline(
    table: AvailabilityTable,
    universe: ProviderUniverse,
    challenges: list[ChallengeRecord],
    n_minor_releases: int = 24,
    seed: int = 0,
) -> ReleaseTimeline:
    """Assemble the release history of the initial NBM.

    Successful public challenges remove their claims at the resolution
    release.  Independently, each provider's remaining *overclaimed* hexes
    may be silently removed by FCC quality checks / provider self-audits
    (rate = the provider's ``self_correction_rate``), spread over the
    year of minor releases — the paper's non-archived changes.
    """
    initial = frozenset(table.unique_claims())
    removals: list[RemovalEvent] = []
    challenged_removed: set[ClaimKey] = set()

    for record in challenges:
        if record.major_release != 0 or not record.succeeded:
            continue
        key = record.claim_key
        if key in initial and key not in challenged_removed:
            challenged_removed.add(key)
            removals.append(
                RemovalEvent(key, record.resolved_release, RemovalCause.PUBLIC_CHALLENGE)
            )

    # Quiet removals: overclaimed, unchallenged claims withdrawn off-ledger.
    keys = table.claim_keys()
    uniq, first_rows = np.unique(keys, return_index=True)
    for k, row in zip(uniq, first_rows):
        if table.truly_served[row]:
            continue
        key = (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
        if key in challenged_removed:
            continue
        provider = universe.provider(key[0])
        rng = stream_rng(seed, "releases", key[0], key[1], key[2])
        if rng.random() < provider.self_correction_rate:
            release = int(rng.integers(2, n_minor_releases + 1))
            cause = (
                RemovalCause.FCC_QUALITY_CHECK
                if rng.random() < 0.5
                else RemovalCause.PROVIDER_SELF_CORRECTION
            )
            removals.append(RemovalEvent(key, release, cause))

    return ReleaseTimeline(
        initial_claims=initial,
        removals=removals,
        n_minor_releases=n_minor_releases,
    )


@dataclass(frozen=True)
class MapDiff:
    """Claims added/removed between two public releases."""

    from_release: int
    to_release: int
    removed: frozenset[ClaimKey]
    added: frozenset[ClaimKey]


def diff_releases(
    timeline: ReleaseTimeline, from_release: int, to_release: int
) -> MapDiff:
    """Diff two releases of the public map (the paper's capture method)."""
    if from_release > to_release:
        raise ValueError("from_release must be <= to_release")
    before = timeline.claims_at(from_release)
    after = timeline.claims_at(to_release)
    return MapDiff(
        from_release=from_release,
        to_release=to_release,
        removed=frozenset(before - after),
        added=frozenset(after - before),
    )


def infer_unarchived_changes(
    timeline: ReleaseTimeline,
    challenges: list[ChallengeRecord],
    first_observed_release: int = 2,
) -> frozenset[ClaimKey]:
    """Removed claims *not* explained by a public challenge (paper §4.1.3).

    The paper began archiving the map a few snapshots after initial
    publication (their first complete capture omitted the true initial
    state), so removals before ``first_observed_release`` are invisible —
    we reproduce that censoring.
    """
    observed_diff = diff_releases(
        timeline, first_observed_release, timeline.n_minor_releases
    )
    publicly_challenged = {
        record.claim_key
        for record in challenges
        if record.major_release == 0 and record.succeeded
    }
    return frozenset(observed_diff.removed - publicly_challenged)
