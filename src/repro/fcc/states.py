"""US states and territories: geometry, population, and challenge intensity.

The BDC simulator needs, for each of the 56 states/territories that appear
in the National Broadband Map: an approximate geographic extent (for
synthesizing Broadband Serviceable Locations), a population weight (for
sizing the Fabric), and a *challenge intensity* reflecting the paper's
Figure 2 — challenge volume was dominated by a handful of states whose
broadband offices ran organized campaigns (Nebraska ran the largest; a
Virginia campaign raised the state's BEAD allocation by $250M).

Extents are coarse bounding boxes — the simulation needs plausible
geography (areas, neighbor relationships, shared longitudes), not exact
borders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StateInfo", "STATES", "state_by_abbr", "contiguous_states", "challenge_weights"]


@dataclass(frozen=True)
class StateInfo:
    """Static attributes of one state or territory."""

    abbr: str
    name: str
    fips: str
    lat_min: float
    lat_max: float
    lng_min: float
    lng_max: float
    population_m: float
    #: Relative weight of BDC challenge activity (paper Fig. 2): a few state
    #: broadband offices ran large campaigns, most states filed almost none.
    challenge_weight: float

    @property
    def center(self) -> tuple[float, float]:
        return (
            (self.lat_min + self.lat_max) / 2.0,
            (self.lng_min + self.lng_max) / 2.0,
        )

    @property
    def is_territory(self) -> bool:
        return self.abbr in {"PR", "GU", "VI", "AS", "MP", "DC"}


def _s(abbr, name, fips, lat0, lat1, lng0, lng1, pop, cw) -> StateInfo:
    return StateInfo(abbr, name, fips, lat0, lat1, lng0, lng1, pop, cw)


#: All 56 states/territories in the NBM.  Challenge weights: the ten
#: campaign states carry ~90 % of the mass (Nebraska the largest), matching
#: the distribution in the paper's Figure 2.
STATES: tuple[StateInfo, ...] = (
    _s("AL", "Alabama", "01", 30.2, 35.0, -88.5, -85.0, 5.0, 0.133),
    _s("AK", "Alaska", "02", 55.0, 68.0, -165.0, -131.0, 0.7, 0.2),
    _s("AZ", "Arizona", "04", 31.3, 37.0, -114.8, -109.0, 7.2, 0.167),
    _s("AR", "Arkansas", "05", 33.0, 36.5, -94.6, -89.6, 3.0, 0.1),
    _s("CA", "California", "06", 32.5, 42.0, -124.4, -114.1, 39.5, 0.3),
    _s("CO", "Colorado", "08", 37.0, 41.0, -109.1, -102.0, 5.8, 0.2),
    _s("CT", "Connecticut", "09", 41.0, 42.1, -73.7, -71.8, 3.6, 0.067),
    _s("DE", "Delaware", "10", 38.5, 39.8, -75.8, -75.0, 1.0, 0.1),
    _s("DC", "District of Columbia", "11", 38.8, 39.0, -77.1, -76.9, 0.7, 0.05),
    _s("FL", "Florida", "12", 25.0, 31.0, -87.6, -80.0, 21.5, 0.4),
    _s("GA", "Georgia", "13", 30.4, 35.0, -85.6, -80.8, 10.7, 0.333),
    _s("HI", "Hawaii", "15", 18.9, 22.2, -160.2, -154.8, 1.5, 0.1),
    _s("ID", "Idaho", "16", 42.0, 49.0, -117.2, -111.0, 1.8, 0.4),
    _s("IL", "Illinois", "17", 37.0, 42.5, -91.5, -87.5, 12.8, 0.267),
    _s("IN", "Indiana", "18", 37.8, 41.8, -88.1, -84.8, 6.8, 0.3),
    _s("IA", "Iowa", "19", 40.4, 43.5, -96.6, -90.1, 3.2, 0.167),
    _s("KS", "Kansas", "20", 37.0, 40.0, -102.1, -94.6, 2.9, 0.133),
    _s("KY", "Kentucky", "21", 36.5, 39.1, -89.6, -82.0, 4.5, 0.2),
    _s("LA", "Louisiana", "22", 29.0, 33.0, -94.0, -89.0, 4.7, 0.167),
    _s("ME", "Maine", "23", 43.1, 47.5, -71.1, -66.9, 1.4, 0.3),
    _s("MD", "Maryland", "24", 37.9, 39.7, -79.5, -75.0, 6.2, 0.1),
    _s("MA", "Massachusetts", "25", 41.2, 42.9, -73.5, -69.9, 7.0, 0.1),
    _s("MI", "Michigan", "26", 41.7, 47.5, -90.4, -82.4, 10.1, 12.0),
    _s("MN", "Minnesota", "27", 43.5, 49.4, -97.2, -89.5, 5.7, 9.0),
    _s("MS", "Mississippi", "28", 30.2, 35.0, -91.7, -88.1, 3.0, 0.1),
    _s("MO", "Missouri", "29", 36.0, 40.6, -95.8, -89.1, 6.2, 0.233),
    _s("MT", "Montana", "30", 44.4, 49.0, -116.0, -104.0, 1.1, 0.3),
    _s("NE", "Nebraska", "31", 40.0, 43.0, -104.1, -95.3, 2.0, 30.0),
    _s("NV", "Nevada", "32", 35.0, 42.0, -120.0, -114.0, 3.1, 0.1),
    _s("NH", "New Hampshire", "33", 42.7, 45.3, -72.6, -70.6, 1.4, 0.2),
    _s("NJ", "New Jersey", "34", 38.9, 41.4, -75.6, -73.9, 9.3, 0.1),
    _s("NM", "New Mexico", "35", 31.3, 37.0, -109.1, -103.0, 2.1, 0.133),
    _s("NY", "New York", "36", 40.5, 45.0, -79.8, -71.9, 20.2, 14.0),
    _s("NC", "North Carolina", "37", 33.8, 36.6, -84.3, -75.5, 10.4, 8.0),
    _s("ND", "North Dakota", "38", 45.9, 49.0, -104.1, -96.6, 0.8, 0.2),
    _s("OH", "Ohio", "39", 38.4, 42.0, -84.8, -80.5, 11.8, 11.0),
    _s("OK", "Oklahoma", "40", 33.6, 37.0, -103.0, -94.4, 4.0, 0.167),
    _s("OR", "Oregon", "41", 42.0, 46.3, -124.6, -116.5, 4.2, 0.167),
    _s("PA", "Pennsylvania", "42", 39.7, 42.3, -80.5, -74.7, 13.0, 9.0),
    _s("RI", "Rhode Island", "44", 41.1, 42.0, -71.9, -71.1, 1.1, 0.1),
    _s("SC", "South Carolina", "45", 32.0, 35.2, -83.4, -78.5, 5.1, 0.2),
    _s("SD", "South Dakota", "46", 42.5, 45.9, -104.1, -96.4, 0.9, 0.2),
    _s("TN", "Tennessee", "47", 35.0, 36.7, -90.3, -81.6, 6.9, 0.233),
    _s("TX", "Texas", "48", 25.8, 36.5, -106.6, -93.5, 29.1, 0.5),
    _s("UT", "Utah", "49", 37.0, 42.0, -114.1, -109.0, 3.3, 0.133),
    _s("VT", "Vermont", "50", 42.7, 45.0, -73.4, -71.5, 0.6, 0.2),
    _s("VA", "Virginia", "51", 36.5, 39.5, -83.7, -75.2, 8.6, 18.0),
    _s("WA", "Washington", "53", 45.5, 49.0, -124.8, -116.9, 7.7, 7.0),
    _s("WV", "West Virginia", "54", 37.2, 40.6, -82.6, -77.7, 1.8, 0.133),
    _s("WI", "Wisconsin", "55", 42.5, 47.1, -92.9, -86.8, 5.9, 8.0),
    _s("WY", "Wyoming", "56", 41.0, 45.0, -111.1, -104.1, 0.6, 0.2),
    _s("PR", "Puerto Rico", "72", 17.9, 18.5, -67.3, -65.6, 3.3, 0.1),
    _s("GU", "Guam", "66", 13.2, 13.7, 144.6, 145.0, 0.17, 0.02),
    _s("VI", "U.S. Virgin Islands", "78", 17.7, 18.4, -65.1, -64.6, 0.1, 0.02),
    _s("AS", "American Samoa", "60", -14.4, -14.2, -170.9, -170.5, 0.05, 0.01),
    _s("MP", "Northern Mariana Islands", "69", 14.9, 15.3, 145.6, 145.8, 0.05, 0.01),
)

_BY_ABBR = {s.abbr: s for s in STATES}


def state_by_abbr(abbr: str) -> StateInfo:
    """Look up a state by its two-letter abbreviation.

    >>> state_by_abbr("NE").name
    'Nebraska'
    """
    try:
        return _BY_ABBR[abbr.upper()]
    except KeyError:
        raise KeyError(f"unknown state abbreviation {abbr!r}") from None


def contiguous_states() -> tuple[StateInfo, ...]:
    """The 48 contiguous states plus DC (excludes AK, HI, territories)."""
    excluded = {"AK", "HI", "PR", "GU", "VI", "AS", "MP"}
    return tuple(s for s in STATES if s.abbr not in excluded)


def challenge_weights() -> dict[str, float]:
    """Normalized challenge-intensity weights per state (sums to 1)."""
    total = sum(s.challenge_weight for s in STATES)
    return {s.abbr: s.challenge_weight / total for s in STATES}


def states_adjacent_to(abbr: str, max_gap_deg: float = 0.5) -> list[str]:
    """States whose bounding boxes touch (or nearly touch) a state's box.

    Used by the Jefferson County Cable case study, which holds out all
    states bordering the provider's service area.
    """
    target = state_by_abbr(abbr)
    out = []
    for s in STATES:
        if s.abbr == target.abbr:
            continue
        lat_gap = max(
            s.lat_min - target.lat_max, target.lat_min - s.lat_max
        )
        lng_gap = max(
            s.lng_min - target.lng_max, target.lng_min - s.lng_max
        )
        if lat_gap <= max_gap_deg and lng_gap <= max_gap_deg:
            out.append(s.abbr)
    return out
