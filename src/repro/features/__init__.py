"""Feature engineering: Table-4 observation vectorization, categorical
encoders, and the hashed-n-gram methodology embedder (S-BERT analog)."""

from repro.features.embedding import TextEmbedder
from repro.features.encoders import StateOneHot, TechnologyOneHot
from repro.features.vectorize import CORE_FEATURES, FeatureBuilder

__all__ = [
    "TextEmbedder",
    "StateOneHot",
    "TechnologyOneHot",
    "CORE_FEATURES",
    "FeatureBuilder",
]
