"""Deterministic text embeddings for filing methodologies (S-BERT analog).

The paper embeds each provider's free-text BDC methodology with S-BERT
(384-dim) so the model can exploit two observations: blocks of small ISPs
file *word-for-word identical* consultant-written text, and some
methodologies describe practices the FCC disallows (census-block
reporting).  Both signals are lexical: what matters is that similar texts
land near each other.

S-BERT itself is a 400 MB pretrained network unavailable offline, so this
module uses signed feature hashing of word and character n-grams into a
fixed-dimension space with L2 normalization — a classical technique whose
cosine similarity tracks n-gram overlap.  Identical texts embed
identically; texts sharing phrasing embed nearby; that is the entire
property the downstream model consumes.
"""

from __future__ import annotations

import hashlib
import re

import numpy as np

__all__ = ["TextEmbedder"]


def _stable_hash(token: str) -> int:
    return int.from_bytes(hashlib.md5(token.encode("utf-8")).digest()[:8], "big")


class TextEmbedder:
    """Hashed n-gram sentence embedder.

    Parameters
    ----------
    dim:
        Embedding dimension (the paper's S-BERT uses 384).
    word_ngrams:
        Word n-gram orders to hash.
    char_ngrams:
        Character n-gram orders to hash (robust to small edits).
    """

    def __init__(
        self,
        dim: int = 384,
        word_ngrams: tuple[int, ...] = (1, 2),
        char_ngrams: tuple[int, ...] = (3, 4),
    ):
        if dim < 2:
            raise ValueError("dim must be >= 2")
        self.dim = dim
        self.word_ngrams = word_ngrams
        self.char_ngrams = char_ngrams

    def spec(self) -> dict:
        """JSON-safe constructor arguments (hashing is deterministic, so
        the spec fully determines every embedding this instance produces)."""
        return {
            "dim": self.dim,
            "word_ngrams": list(self.word_ngrams),
            "char_ngrams": list(self.char_ngrams),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "TextEmbedder":
        """Rebuild an embedder from :meth:`spec` output."""
        return cls(
            dim=int(spec["dim"]),
            word_ngrams=tuple(int(n) for n in spec["word_ngrams"]),
            char_ngrams=tuple(int(n) for n in spec["char_ngrams"]),
        )

    def _tokens(self, text: str) -> list[str]:
        words = re.findall(r"[a-z0-9]+", text.lower())
        out: list[str] = []
        for n in self.word_ngrams:
            for i in range(len(words) - n + 1):
                out.append("w:" + " ".join(words[i : i + n]))
        compact = " ".join(words)
        for n in self.char_ngrams:
            for i in range(len(compact) - n + 1):
                out.append("c:" + compact[i : i + n])
        return out

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm ``dim``-vector (zeros if empty)."""
        vec = np.zeros(self.dim)
        for token in self._tokens(text):
            h = _stable_hash(token)
            index = h % self.dim
            sign = 1.0 if (h >> 63) & 1 else -1.0
            vec[index] += sign
        norm = float(np.linalg.norm(vec))
        if norm > 0:
            vec /= norm
        return vec

    def embed_corpus(self, texts: list[str]) -> np.ndarray:
        """Embed a list of texts into an (n, dim) matrix."""
        return np.vstack([self.embed(t) for t in texts]) if texts else np.empty((0, self.dim))

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two embeddings."""
        na, nb = float(np.linalg.norm(a)), float(np.linalg.norm(b))
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))
