"""Categorical encoders for observation vectorization (paper Table 4)."""

from __future__ import annotations

import numpy as np

from repro.fcc.providers import TECHNOLOGY_CODES
from repro.fcc.states import STATES

__all__ = ["StateOneHot", "TechnologyOneHot"]


class StateOneHot:
    """One-hot encoding over the 56 states/territories."""

    def __init__(self):
        self.categories = tuple(s.abbr for s in STATES)
        self._index = {abbr: i for i, abbr in enumerate(self.categories)}

    @property
    def dim(self) -> int:
        return len(self.categories)

    @property
    def feature_names(self) -> list[str]:
        return [f"State_{abbr}" for abbr in self.categories]

    def index(self, abbr: str) -> int:
        """Column index of a state — the hot position of :meth:`encode`."""
        try:
            return self._index[abbr.upper()]
        except KeyError:
            raise ValueError(f"unknown state {abbr!r}") from None

    def index_array(self, abbrs) -> np.ndarray:
        """Column index per state in a batch (one lookup per *distinct* state).

        Element-wise equal to :meth:`index`; unknown abbreviations raise
        ``ValueError`` exactly as the scalar path does.
        """
        abbrs = np.asarray(abbrs, dtype=object)
        uniq, inverse = np.unique(abbrs, return_inverse=True)
        mapped = np.array([self.index(str(a)) for a in uniq], dtype=np.intp)
        return mapped[inverse]

    def encode(self, abbr: str) -> np.ndarray:
        vec = np.zeros(self.dim)
        vec[self.index(abbr)] = 1.0
        return vec


class TechnologyOneHot:
    """One-hot encoding over BDC technology codes."""

    def __init__(self, codes: tuple[int, ...] = TECHNOLOGY_CODES):
        self.categories = tuple(codes)
        self._index = {code: i for i, code in enumerate(self.categories)}

    @property
    def dim(self) -> int:
        return len(self.categories)

    @property
    def feature_names(self) -> list[str]:
        return [f"Tech_{code}" for code in self.categories]

    def index(self, code: int) -> int:
        """Column index of a technology — the hot position of :meth:`encode`."""
        try:
            return self._index[int(code)]
        except KeyError:
            raise ValueError(f"unknown technology code {code!r}") from None

    def index_array(self, codes) -> np.ndarray:
        """Column index per technology code in a batch.

        Element-wise equal to :meth:`index`; unknown codes raise
        ``ValueError`` exactly as the scalar path does.
        """
        codes = np.asarray(codes, dtype=np.int64)
        uniq, inverse = np.unique(codes, return_inverse=True)
        mapped = np.array([self.index(int(c)) for c in uniq], dtype=np.intp)
        return mapped[inverse] if uniq.size else np.empty(0, dtype=np.intp)

    def encode(self, code: int) -> np.ndarray:
        vec = np.zeros(self.dim)
        vec[self.index(code)] = 1.0
        return vec
