"""Observation vectorization (paper Table 4).

Each (provider, cell, technology) observation becomes a float vector:

========================  =====================================================
Feature                   Vectorization
========================  =====================================================
Max advertised speeds     max reported download/upload in the cell (NBM floors)
Low latency               0/1 flag
State                     one-hot over 56 states/territories
Location centroid         cell centroid latitude and longitude
Location claims           claimed BSLs / total BSLs in the cell
Methodology               hashed-n-gram embedding of the filing methodology
Ookla tests               unique devices per location in the cell
MLab tests                attributed test count for (provider, cell)
Technology                one-hot over BDC technology codes
========================  =====================================================

Speed-test attributes deliberately exclude measured throughput — the paper
avoids comparing in-home test results against advertised maxima, using the
*presence* of tests instead.

Batched vectorization is columnar end to end: observations are transposed
into parallel arrays once (:func:`repro.dataset.observations.observation_columns`
— the only remaining per-observation Python loop, pure attribute
extraction), and every lookup that used to be a ``dict`` probe per row is
a fancy-indexed gather over a columnar store:

=======================  =====================================================
Lookup                   Columnar source
=======================  =====================================================
Claim attributes         :meth:`repro.fcc.bdc.AvailabilityTable.columnar`
                         (:class:`~repro.fcc.bdc.ClaimColumns.positions` +
                         gathers; tier fallback per distinct missing
                         (provider, technology) pair)
BSLs per cell            :meth:`repro.fcc.fabric.Fabric.bsl_counts_in_cells`
Ookla coverage scores    sorted cell/score arrays built at construction
MLab test counts         :meth:`repro.dataset.likely_served.MLabLocalization.provider_test_counts`
State / technology       ``index_array`` on the one-hot encoders
Centroids, embeddings    one cached lookup per *distinct* cell / provider
=======================  =====================================================

:meth:`FeatureBuilder.vectorize` fills a preallocated ``(n, d)`` matrix by
slice assignment from those gathers; :meth:`FeatureBuilder.vectorize_one`
keeps the row-at-a-time construction as the readable reference, and a
regression test asserts both agree bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.likely_served import MLabLocalization
from repro.dataset.observations import Observation, observation_columns
from repro.enrich.overstatement import (
    BASE_FEATURE_SET_VERSION,
    ENRICHED_FEATURE_SET_VERSION,
    Enrichment,
)
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.fabric import Fabric
from repro.fcc.providers import ProviderUniverse
from repro.features.embedding import TextEmbedder
from repro.features.encoders import StateOneHot, TechnologyOneHot
from repro.geo import hexgrid
from repro.utils.indexing import ColumnIndex

__all__ = ["FeatureBuilder", "CORE_FEATURES"]

#: Names of the scalar (non-one-hot, non-embedding) features, in order.
CORE_FEATURES = (
    "Max Adv. DL Speed (Mbps)",
    "Max Adv. UL Speed (Mbps)",
    "Low Latency",
    "H3 Centroid Lat",
    "H3 Centroid Lng",
    "Location Claims Pct",
    "Ookla (Dev/Loc)",
    "MLab Test Counts",
)


class FeatureBuilder:
    """Precomputes per-claim attributes and vectorizes observations."""

    def __init__(
        self,
        fabric: Fabric,
        universe: ProviderUniverse,
        table: AvailabilityTable,
        coverage_scores: dict[int, float],
        localization: MLabLocalization,
        embedder: TextEmbedder | None = None,
        embedding_dim: int = 32,
        enrichment: Enrichment | None = None,
    ):
        self.fabric = fabric
        self.universe = universe
        self.coverage_scores = coverage_scores
        self.localization = localization
        self.enrichment = enrichment
        self.embedder = embedder or TextEmbedder(dim=embedding_dim)
        self._state_encoder = StateOneHot()
        self._tech_encoder = TechnologyOneHot()
        # A filing table rolls up to its hex-level claims; a prebuilt
        # ClaimColumns (e.g. one shard of a national store) is used as-is.
        self._claims = table.columnar() if hasattr(table, "columnar") else table
        # Scalar-path dict view of the same aggregates, built lazily on
        # first vectorize_one/_claim_scalars use so batch-only consumers
        # never pay the per-claim Python loop (the independent reference
        # aggregation lives on in :meth:`_precompute_claim_attrs` for the
        # equivalence tests).
        self._claim_attrs_cache: (
            dict[ClaimKey, tuple[int, float, float, bool]] | None
        ) = None
        # Enrichment feature block per claim-table row, computed lazily on
        # the first enriched batch: the block is a pure elementwise
        # function of the claim row, so batches gather cached rows instead
        # of re-running the truth-map and challenge joins every call.
        self._enrich_rows: np.ndarray | None = None
        # Coverage scores as a columnar (cell -> score) table.
        cov_cells = np.fromiter(
            coverage_scores.keys(), dtype=np.uint64, count=len(coverage_scores)
        )
        self._cov_index = ColumnIndex(cov_cells)
        self._cov_values = np.fromiter(
            coverage_scores.values(), dtype=np.float64, count=len(coverage_scores)
        )
        self._embeddings: dict[int, np.ndarray] = {}
        self._centroids: dict[int, tuple[float, float]] = {}

    # -- precomputation -----------------------------------------------------

    @staticmethod
    def _precompute_claim_attrs(
        table: AvailabilityTable,
    ) -> dict[ClaimKey, tuple[int, float, float, bool]]:
        """(claimed BSLs, max down, max up, low latency) per hex claim."""
        keys = table.claim_keys()
        uniq, inverse = np.unique(keys, return_inverse=True)
        n = uniq.size
        counts = np.bincount(inverse, minlength=n)
        down = np.zeros(n)
        up = np.zeros(n)
        lowlat = np.zeros(n, dtype=bool)
        np.maximum.at(down, inverse, table.published_download())
        np.maximum.at(up, inverse, table.published_upload())
        np.logical_or.at(lowlat, inverse, table.low_latency)
        out: dict[ClaimKey, tuple[int, float, float, bool]] = {}
        for i, k in enumerate(uniq):
            key = (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
            out[key] = (int(counts[i]), float(down[i]), float(up[i]), bool(lowlat[i]))
        return out

    def _embedding_for(self, provider_id: int) -> np.ndarray:
        emb = self._embeddings.get(provider_id)
        if emb is None:
            provider = self.universe.provider(provider_id)
            emb = self.embedder.embed(provider.methodology_text)
            self._embeddings[provider_id] = emb
        return emb

    def _centroid(self, cell: int) -> tuple[float, float]:
        point = self._centroids.get(cell)
        if point is None:
            point = hexgrid.cell_to_latlng(cell)
            self._centroids[cell] = point
        return point

    def warm_caches(self, provider_ids, cells) -> None:
        """Populate the embedding/centroid caches for the given keys.

        Both caches are deterministic, so warming then exporting
        (:meth:`export_encoder_state`) captures everything a
        world-detached builder needs to vectorize those providers/cells
        bitwise-identically (the frozen-builder bundles of
        :mod:`repro.store.bundle` rely on this).
        """
        for pid in np.unique(np.asarray(provider_ids, dtype=np.int64)):
            self._embedding_for(int(pid))
        for cell in np.unique(np.asarray(cells, dtype=np.uint64)):
            self._centroid(int(cell))

    # -- public API -----------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        names = (
            list(CORE_FEATURES)
            + self._state_encoder.feature_names
            + self._tech_encoder.feature_names
            + [f"Methodology_Emb_{i}" for i in range(self.embedder.dim)]
        )
        if self.enrichment is not None:
            names += list(self.enrichment.feature_names)
        return names

    @property
    def n_features(self) -> int:
        return (
            len(CORE_FEATURES)
            + self._state_encoder.dim
            + self._tech_encoder.dim
            + self.embedder.dim
            + (self.enrichment.dim if self.enrichment is not None else 0)
        )

    @property
    def feature_set_version(self) -> int:
        """Version stamped into encoder manifests (base = 1, enriched = 2).

        Persisted artifacts refuse to restore across a mismatch: a model
        trained on the enriched feature block must never score through a
        base builder, and vice versa.
        """
        return (
            ENRICHED_FEATURE_SET_VERSION
            if self.enrichment is not None
            else BASE_FEATURE_SET_VERSION
        )

    def vectorize_one(self, obs: Observation) -> np.ndarray:
        """Vectorize a single observation (see module docstring)."""
        n_claimed, down, up, lowlat = self._claim_scalars(obs)
        n_bsl = self.fabric.bsl_count_in_cell(obs.cell)
        claims_pct = n_claimed / n_bsl if n_bsl else 0.0
        lat, lng = self._centroid(obs.cell)
        core = np.array(
            [
                down,
                up,
                1.0 if lowlat else 0.0,
                lat,
                lng,
                claims_pct,
                self.coverage_scores.get(obs.cell, 0.0),
                float(self.localization.provider_test_count(obs.provider_id, obs.cell)),
            ]
        )
        parts = [
            core,
            self._state_encoder.encode(obs.state),
            self._tech_encoder.encode(obs.technology),
            self._embedding_for(obs.provider_id),
        ]
        if self.enrichment is not None:
            # Length-1-batch call into the same columnar path, so the
            # row-at-a-time reference stays bitwise-equal to vectorize.
            parts.append(
                self.enrichment.feature_columns(
                    np.array([obs.provider_id], dtype=np.int64),
                    np.array([obs.cell], dtype=np.uint64),
                    np.array([down], dtype=np.float64),
                    np.array([up], dtype=np.float64),
                )[0]
            )
        return np.concatenate(parts)

    @property
    def _claim_attrs(self) -> dict[ClaimKey, tuple[int, float, float, bool]]:
        if self._claim_attrs_cache is None:
            claims = self._claims
            self._claim_attrs_cache = {
                claims.key_at(i): (
                    int(claims.claimed_count[i]),
                    float(claims.max_download_mbps[i]),
                    float(claims.max_upload_mbps[i]),
                    bool(claims.low_latency[i]),
                )
                for i in range(len(claims))
            }
        return self._claim_attrs_cache

    def _claim_scalars(
        self, obs: Observation
    ) -> tuple[int, float, float, bool]:
        """(claimed BSLs, max down, max up, low latency) with tier fallback."""
        attrs = self._claim_attrs.get(obs.claim_key)
        if attrs is not None:
            return attrs
        # Claim absent from the filing table (e.g., probing a hypothetical
        # claim): fall back to provider tier attributes.
        provider = self.universe.provider(obs.provider_id)
        try:
            tier = provider.tier_for(obs.technology)
            return 0, tier.max_download_mbps, tier.max_upload_mbps, tier.low_latency
        except KeyError:
            return 0, 0.0, 0.0, False

    def _claim_columns(
        self, provider_id: np.ndarray, cell: np.ndarray, technology: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`_claim_scalars`: (count, down, up, lowlat, pos).

        Claims present in the filing table resolve through one vectorized
        :meth:`~repro.fcc.bdc.ClaimColumns.positions` lookup (``pos`` is
        that lookup's result, ``-1`` = absent); absent ones fall back to
        provider tier attributes, computed once per distinct missing
        (provider, technology) pair.
        """
        claims = self._claims
        pos = claims.positions(provider_id, cell, technology)
        found = pos >= 0
        safe = np.where(found, pos, 0)
        n_claimed = np.where(found, claims.claimed_count[safe], 0)
        down = np.where(found, claims.max_download_mbps[safe], 0.0)
        up = np.where(found, claims.max_upload_mbps[safe], 0.0)
        lowlat = np.where(found, claims.low_latency[safe], False)
        if not found.all():
            miss = np.where(~found)[0]
            pairs = np.stack(
                [provider_id[miss], technology[miss]], axis=1
            ).astype(np.int64)
            uniq_pairs, inv = np.unique(pairs, axis=0, return_inverse=True)
            fb = np.empty((uniq_pairs.shape[0], 3))
            for j, (pid, tech) in enumerate(uniq_pairs):
                provider = self.universe.provider(int(pid))
                try:
                    tier = provider.tier_for(int(tech))
                    fb[j] = (
                        tier.max_download_mbps,
                        tier.max_upload_mbps,
                        float(tier.low_latency),
                    )
                except KeyError:
                    fb[j] = (0.0, 0.0, 0.0)
            down[miss] = fb[inv, 0]
            up[miss] = fb[inv, 1]
            lowlat[miss] = fb[inv, 2] != 0.0
        return n_claimed, down, up, lowlat, pos

    @property
    def claims(self):
        """The columnar claim store backing this builder (frozen arrays).

        The distinct hex-level claims of the filing table —
        :class:`repro.fcc.bdc.ClaimColumns` — which the serve layer
        enumerates to precompute every claim's score.
        """
        return self._claims

    def vectorize(self, observations: list[Observation]) -> np.ndarray:
        """Vectorize a list of observations into an (n, d) matrix.

        Columnar fast path: equivalent to stacking
        :meth:`vectorize_one` rows, but transposes the batch once
        (:func:`~repro.dataset.observations.observation_columns`) and
        delegates to :meth:`vectorize_columns`.
        """
        if not observations:
            return np.empty((0, self.n_features))
        return self.vectorize_columns(observation_columns(observations))

    def vectorize_columns(self, cols) -> np.ndarray:
        """Vectorize an :class:`~repro.dataset.observations.ObservationColumns`
        batch into an (n, d) matrix.

        The all-array entry point: consumers that already hold parallel
        claim arrays (the serve layer's score store above all) skip
        ``Observation`` object materialization entirely and fill a
        preallocated matrix from vectorized gathers (see module
        docstring).
        """
        n = len(cols)
        if n == 0:
            return np.empty((0, self.n_features))
        n_core = len(CORE_FEATURES)
        state_off = n_core
        tech_off = state_off + self._state_encoder.dim
        emb_off = tech_off + self._tech_encoder.dim
        X = np.zeros((n, self.n_features))

        n_claimed, down, up, lowlat, claim_pos = self._claim_columns(
            cols.provider_id, cols.cell, cols.technology
        )
        X[:, 0] = down
        X[:, 1] = up
        X[:, 2] = lowlat.astype(np.float64)

        # Claims percentage: claimed BSLs over Fabric BSLs in the cell.
        n_bsl = self.fabric.bsl_counts_in_cells(cols.cell)
        with np.errstate(divide="ignore", invalid="ignore"):
            X[:, 5] = np.where(
                n_bsl > 0, n_claimed / n_bsl.astype(np.float64), 0.0
            )

        # Ookla coverage scores: one vectorized (cell -> score) lookup.
        if self._cov_values.size:
            cov_pos = self._cov_index.positions(cols.cell)
            cov_found = cov_pos >= 0
            X[:, 6] = np.where(
                cov_found, self._cov_values[np.where(cov_found, cov_pos, 0)], 0.0
            )

        # MLab test counts: one two-column index lookup.
        X[:, 7] = self.localization.provider_test_counts(
            cols.provider_id, cols.cell
        ).astype(np.float64)

        # Centroids: one lookup per distinct cell, broadcast back to rows.
        uniq_cells, cell_inv = np.unique(cols.cell, return_inverse=True)
        centroids = np.array([self._centroid(int(c)) for c in uniq_cells])
        X[:, 3] = centroids[cell_inv, 0]
        X[:, 4] = centroids[cell_inv, 1]

        rows = np.arange(n)
        X[rows, state_off + self._state_encoder.index_array(cols.state)] = 1.0
        X[rows, tech_off + self._tech_encoder.index_array(cols.technology)] = 1.0

        # Embeddings: one (cached) embed per distinct provider.
        uniq_providers, provider_inv = np.unique(
            cols.provider_id, return_inverse=True
        )
        embeddings = np.vstack(
            [self._embedding_for(int(p)) for p in uniq_providers]
        )
        emb_end = emb_off + self.embedder.dim
        X[:, emb_off:emb_end] = embeddings[provider_inv]

        if self.enrichment is not None:
            # Rows backed by a filing-table claim gather the per-claim
            # cached block (the block is elementwise in the claim row, so
            # the gather is bitwise-identical to recomputing); only
            # hypothetical claims run the joins.
            found = claim_pos >= 0
            block = self._enrichment_rows()[np.where(found, claim_pos, 0)]
            if not found.all():
                miss = np.flatnonzero(~found)
                block[miss] = self.enrichment.feature_columns(
                    cols.provider_id[miss], cols.cell[miss], down[miss], up[miss]
                )
            X[:, emb_end:] = block
        return X

    def _enrichment_rows(self) -> np.ndarray:
        """The (n_claims, enrichment.dim) block for every claim-table row."""
        if self._enrich_rows is None:
            claims = self._claims
            self._enrich_rows = self.enrichment.feature_columns(
                claims.provider_id,
                claims.cell,
                claims.max_download_mbps,
                claims.max_upload_mbps,
            )
        return self._enrich_rows

    def labels(self, observations: list[Observation]) -> np.ndarray:
        """Binary label vector (1 = unserved/suspicious)."""
        return np.fromiter(
            (obs.unserved for obs in observations),
            dtype=np.int64,
            count=len(observations),
        )

    # -- persistence ----------------------------------------------------------

    def export_encoder_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Encoder/embedding state as (JSON-safe manifest, array payload).

        Captures everything vectorization derives from *fitted or cached*
        state rather than the live world: the embedder spec, the one-hot
        category orders, and the provider-embedding / cell-centroid caches
        as parallel arrays.  :meth:`restore_encoder_state` on a compatible
        builder reinstates the caches so vectorization of previously-seen
        providers/cells is reproduced without recomputation (and bitwise
        identical — both caches are deterministic).
        """
        manifest = {
            "embedder": self.embedder.spec(),
            "feature_set_version": self.feature_set_version,
            "state_categories": list(self._state_encoder.categories),
            "technology_categories": [
                int(c) for c in self._tech_encoder.categories
            ],
        }
        emb_ids = np.fromiter(
            self._embeddings.keys(), dtype=np.int64, count=len(self._embeddings)
        )
        emb_matrix = (
            np.vstack([self._embeddings[int(p)] for p in emb_ids])
            if emb_ids.size
            else np.empty((0, self.embedder.dim))
        )
        cen_cells = np.fromiter(
            self._centroids.keys(), dtype=np.uint64, count=len(self._centroids)
        )
        cen_latlng = (
            np.array([self._centroids[int(c)] for c in cen_cells])
            if cen_cells.size
            else np.empty((0, 2))
        )
        arrays = {
            "embedding_provider_ids": emb_ids,
            "embedding_matrix": emb_matrix,
            "centroid_cells": cen_cells,
            "centroid_latlng": cen_latlng,
        }
        return manifest, arrays

    def restore_encoder_state(
        self, manifest: dict, arrays: dict[str, np.ndarray]
    ) -> None:
        """Reinstate caches exported by :meth:`export_encoder_state`.

        Raises ``ValueError`` when the stored embedder spec or category
        orders disagree with this builder's — restored caches would then
        silently produce different feature columns.
        """
        if manifest["embedder"] != self.embedder.spec():
            raise ValueError(
                f"stored embedder spec {manifest['embedder']} does not match "
                f"this builder's {self.embedder.spec()}"
            )
        # Manifests written before the enrichment layer carry no version
        # stamp and are by construction base-feature (version 1).
        stored_version = int(manifest.get("feature_set_version", 1))
        if stored_version != self.feature_set_version:
            raise ValueError(
                f"stored feature-set version {stored_version} does not match "
                f"this builder's {self.feature_set_version} — a model "
                "trained on one feature set cannot score through the other"
            )
        if tuple(manifest["state_categories"]) != self._state_encoder.categories:
            raise ValueError("stored state categories do not match this builder")
        if (
            tuple(manifest["technology_categories"])
            != self._tech_encoder.categories
        ):
            raise ValueError(
                "stored technology categories do not match this builder"
            )
        emb_ids = np.asarray(arrays["embedding_provider_ids"], dtype=np.int64)
        emb_matrix = np.asarray(arrays["embedding_matrix"], dtype=np.float64)
        if emb_matrix.shape != (emb_ids.size, self.embedder.dim):
            raise ValueError(
                f"embedding matrix must be ({emb_ids.size}, "
                f"{self.embedder.dim}), got {emb_matrix.shape}"
            )
        for i, pid in enumerate(emb_ids):
            self._embeddings[int(pid)] = emb_matrix[i].copy()
        cen_cells = np.asarray(arrays["centroid_cells"], dtype=np.uint64)
        cen_latlng = np.asarray(arrays["centroid_latlng"], dtype=np.float64)
        if cen_latlng.shape != (cen_cells.size, 2):
            raise ValueError(
                f"centroid array must be ({cen_cells.size}, 2), "
                f"got {cen_latlng.shape}"
            )
        for i, cell in enumerate(cen_cells):
            self._centroids[int(cell)] = (
                float(cen_latlng[i, 0]),
                float(cen_latlng[i, 1]),
            )
