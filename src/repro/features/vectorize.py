"""Observation vectorization (paper Table 4).

Each (provider, cell, technology) observation becomes a float vector:

========================  =====================================================
Feature                   Vectorization
========================  =====================================================
Max advertised speeds     max reported download/upload in the cell (NBM floors)
Low latency               0/1 flag
State                     one-hot over 56 states/territories
Location centroid         cell centroid latitude and longitude
Location claims           claimed BSLs / total BSLs in the cell
Methodology               hashed-n-gram embedding of the filing methodology
Ookla tests               unique devices per location in the cell
MLab tests                attributed test count for (provider, cell)
Technology                one-hot over BDC technology codes
========================  =====================================================

Speed-test attributes deliberately exclude measured throughput — the paper
avoids comparing in-home test results against advertised maxima, using the
*presence* of tests instead.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.likely_served import MLabLocalization
from repro.dataset.observations import Observation
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.fabric import Fabric
from repro.fcc.providers import ProviderUniverse
from repro.features.embedding import TextEmbedder
from repro.features.encoders import StateOneHot, TechnologyOneHot
from repro.geo import hexgrid

__all__ = ["FeatureBuilder", "CORE_FEATURES"]

#: Names of the scalar (non-one-hot, non-embedding) features, in order.
CORE_FEATURES = (
    "Max Adv. DL Speed (Mbps)",
    "Max Adv. UL Speed (Mbps)",
    "Low Latency",
    "H3 Centroid Lat",
    "H3 Centroid Lng",
    "Location Claims Pct",
    "Ookla (Dev/Loc)",
    "MLab Test Counts",
)


class FeatureBuilder:
    """Precomputes per-claim attributes and vectorizes observations."""

    def __init__(
        self,
        fabric: Fabric,
        universe: ProviderUniverse,
        table: AvailabilityTable,
        coverage_scores: dict[int, float],
        localization: MLabLocalization,
        embedder: TextEmbedder | None = None,
        embedding_dim: int = 32,
    ):
        self.fabric = fabric
        self.universe = universe
        self.coverage_scores = coverage_scores
        self.localization = localization
        self.embedder = embedder or TextEmbedder(dim=embedding_dim)
        self._state_encoder = StateOneHot()
        self._tech_encoder = TechnologyOneHot()
        self._claim_attrs = self._precompute_claim_attrs(table)
        self._embeddings: dict[int, np.ndarray] = {}
        self._centroids: dict[int, tuple[float, float]] = {}

    # -- precomputation -----------------------------------------------------

    @staticmethod
    def _precompute_claim_attrs(
        table: AvailabilityTable,
    ) -> dict[ClaimKey, tuple[int, float, float, bool]]:
        """(claimed BSLs, max down, max up, low latency) per hex claim."""
        keys = table.claim_keys()
        uniq, inverse = np.unique(keys, return_inverse=True)
        n = uniq.size
        counts = np.bincount(inverse, minlength=n)
        down = np.zeros(n)
        up = np.zeros(n)
        lowlat = np.zeros(n, dtype=bool)
        np.maximum.at(down, inverse, table.published_download())
        np.maximum.at(up, inverse, table.published_upload())
        np.logical_or.at(lowlat, inverse, table.low_latency)
        out: dict[ClaimKey, tuple[int, float, float, bool]] = {}
        for i, k in enumerate(uniq):
            key = (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
            out[key] = (int(counts[i]), float(down[i]), float(up[i]), bool(lowlat[i]))
        return out

    def _embedding_for(self, provider_id: int) -> np.ndarray:
        emb = self._embeddings.get(provider_id)
        if emb is None:
            provider = self.universe.provider(provider_id)
            emb = self.embedder.embed(provider.methodology_text)
            self._embeddings[provider_id] = emb
        return emb

    def _centroid(self, cell: int) -> tuple[float, float]:
        point = self._centroids.get(cell)
        if point is None:
            point = hexgrid.cell_to_latlng(cell)
            self._centroids[cell] = point
        return point

    # -- public API -----------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        return (
            list(CORE_FEATURES)
            + self._state_encoder.feature_names
            + self._tech_encoder.feature_names
            + [f"Methodology_Emb_{i}" for i in range(self.embedder.dim)]
        )

    @property
    def n_features(self) -> int:
        return (
            len(CORE_FEATURES)
            + self._state_encoder.dim
            + self._tech_encoder.dim
            + self.embedder.dim
        )

    def vectorize_one(self, obs: Observation) -> np.ndarray:
        """Vectorize a single observation (see module docstring)."""
        key = obs.claim_key
        attrs = self._claim_attrs.get(key)
        if attrs is None:
            # Claim absent from the filing table (e.g., probing a
            # hypothetical claim): fall back to provider tier attributes.
            provider = self.universe.provider(obs.provider_id)
            try:
                tier = provider.tier_for(obs.technology)
                n_claimed, down, up, lowlat = 0, tier.max_download_mbps, tier.max_upload_mbps, tier.low_latency
            except KeyError:
                n_claimed, down, up, lowlat = 0, 0.0, 0.0, False
        else:
            n_claimed, down, up, lowlat = attrs
        n_bsl = self.fabric.bsl_count_in_cell(obs.cell)
        claims_pct = n_claimed / n_bsl if n_bsl else 0.0
        lat, lng = self._centroid(obs.cell)
        core = np.array(
            [
                down,
                up,
                1.0 if lowlat else 0.0,
                lat,
                lng,
                claims_pct,
                self.coverage_scores.get(obs.cell, 0.0),
                float(self.localization.provider_test_count(obs.provider_id, obs.cell)),
            ]
        )
        return np.concatenate(
            [
                core,
                self._state_encoder.encode(obs.state),
                self._tech_encoder.encode(obs.technology),
                self._embedding_for(obs.provider_id),
            ]
        )

    def vectorize(self, observations: list[Observation]) -> np.ndarray:
        """Vectorize a list of observations into an (n, d) matrix."""
        if not observations:
            return np.empty((0, self.n_features))
        return np.vstack([self.vectorize_one(obs) for obs in observations])

    def labels(self, observations: list[Observation]) -> np.ndarray:
        """Binary label vector (1 = unserved/suspicious)."""
        return np.array([obs.unserved for obs in observations], dtype=np.int64)
