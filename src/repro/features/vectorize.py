"""Observation vectorization (paper Table 4).

Each (provider, cell, technology) observation becomes a float vector:

========================  =====================================================
Feature                   Vectorization
========================  =====================================================
Max advertised speeds     max reported download/upload in the cell (NBM floors)
Low latency               0/1 flag
State                     one-hot over 56 states/territories
Location centroid         cell centroid latitude and longitude
Location claims           claimed BSLs / total BSLs in the cell
Methodology               hashed-n-gram embedding of the filing methodology
Ookla tests               unique devices per location in the cell
MLab tests                attributed test count for (provider, cell)
Technology                one-hot over BDC technology codes
========================  =====================================================

Speed-test attributes deliberately exclude measured throughput — the paper
avoids comparing in-home test results against advertised maxima, using the
*presence* of tests instead.

Batched vectorization is columnar: :meth:`FeatureBuilder.vectorize`
preallocates the ``(n, d)`` matrix once and fills it by slice assignment —
scalar claim attributes gathered in one pass, centroids and cached
methodology embeddings grouped by unique cell/provider, and one-hot
blocks set with a single fancy-index write — instead of building one
row vector per observation and ``vstack``-ing them.
:meth:`FeatureBuilder.vectorize_one` keeps the row-at-a-time construction
as the readable reference; a regression test asserts both agree exactly.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.likely_served import MLabLocalization
from repro.dataset.observations import Observation
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.fabric import Fabric
from repro.fcc.providers import ProviderUniverse
from repro.features.embedding import TextEmbedder
from repro.features.encoders import StateOneHot, TechnologyOneHot
from repro.geo import hexgrid

__all__ = ["FeatureBuilder", "CORE_FEATURES"]

#: Names of the scalar (non-one-hot, non-embedding) features, in order.
CORE_FEATURES = (
    "Max Adv. DL Speed (Mbps)",
    "Max Adv. UL Speed (Mbps)",
    "Low Latency",
    "H3 Centroid Lat",
    "H3 Centroid Lng",
    "Location Claims Pct",
    "Ookla (Dev/Loc)",
    "MLab Test Counts",
)


class FeatureBuilder:
    """Precomputes per-claim attributes and vectorizes observations."""

    def __init__(
        self,
        fabric: Fabric,
        universe: ProviderUniverse,
        table: AvailabilityTable,
        coverage_scores: dict[int, float],
        localization: MLabLocalization,
        embedder: TextEmbedder | None = None,
        embedding_dim: int = 32,
    ):
        self.fabric = fabric
        self.universe = universe
        self.coverage_scores = coverage_scores
        self.localization = localization
        self.embedder = embedder or TextEmbedder(dim=embedding_dim)
        self._state_encoder = StateOneHot()
        self._tech_encoder = TechnologyOneHot()
        self._claim_attrs = self._precompute_claim_attrs(table)
        self._embeddings: dict[int, np.ndarray] = {}
        self._centroids: dict[int, tuple[float, float]] = {}

    # -- precomputation -----------------------------------------------------

    @staticmethod
    def _precompute_claim_attrs(
        table: AvailabilityTable,
    ) -> dict[ClaimKey, tuple[int, float, float, bool]]:
        """(claimed BSLs, max down, max up, low latency) per hex claim."""
        keys = table.claim_keys()
        uniq, inverse = np.unique(keys, return_inverse=True)
        n = uniq.size
        counts = np.bincount(inverse, minlength=n)
        down = np.zeros(n)
        up = np.zeros(n)
        lowlat = np.zeros(n, dtype=bool)
        np.maximum.at(down, inverse, table.published_download())
        np.maximum.at(up, inverse, table.published_upload())
        np.logical_or.at(lowlat, inverse, table.low_latency)
        out: dict[ClaimKey, tuple[int, float, float, bool]] = {}
        for i, k in enumerate(uniq):
            key = (int(k["provider_id"]), int(k["cell"]), int(k["technology"]))
            out[key] = (int(counts[i]), float(down[i]), float(up[i]), bool(lowlat[i]))
        return out

    def _embedding_for(self, provider_id: int) -> np.ndarray:
        emb = self._embeddings.get(provider_id)
        if emb is None:
            provider = self.universe.provider(provider_id)
            emb = self.embedder.embed(provider.methodology_text)
            self._embeddings[provider_id] = emb
        return emb

    def _centroid(self, cell: int) -> tuple[float, float]:
        point = self._centroids.get(cell)
        if point is None:
            point = hexgrid.cell_to_latlng(cell)
            self._centroids[cell] = point
        return point

    # -- public API -----------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        return (
            list(CORE_FEATURES)
            + self._state_encoder.feature_names
            + self._tech_encoder.feature_names
            + [f"Methodology_Emb_{i}" for i in range(self.embedder.dim)]
        )

    @property
    def n_features(self) -> int:
        return (
            len(CORE_FEATURES)
            + self._state_encoder.dim
            + self._tech_encoder.dim
            + self.embedder.dim
        )

    def vectorize_one(self, obs: Observation) -> np.ndarray:
        """Vectorize a single observation (see module docstring)."""
        n_claimed, down, up, lowlat = self._claim_scalars(obs)
        n_bsl = self.fabric.bsl_count_in_cell(obs.cell)
        claims_pct = n_claimed / n_bsl if n_bsl else 0.0
        lat, lng = self._centroid(obs.cell)
        core = np.array(
            [
                down,
                up,
                1.0 if lowlat else 0.0,
                lat,
                lng,
                claims_pct,
                self.coverage_scores.get(obs.cell, 0.0),
                float(self.localization.provider_test_count(obs.provider_id, obs.cell)),
            ]
        )
        return np.concatenate(
            [
                core,
                self._state_encoder.encode(obs.state),
                self._tech_encoder.encode(obs.technology),
                self._embedding_for(obs.provider_id),
            ]
        )

    def _claim_scalars(
        self, obs: Observation
    ) -> tuple[int, float, float, bool]:
        """(claimed BSLs, max down, max up, low latency) with tier fallback."""
        attrs = self._claim_attrs.get(obs.claim_key)
        if attrs is not None:
            return attrs
        # Claim absent from the filing table (e.g., probing a hypothetical
        # claim): fall back to provider tier attributes.
        provider = self.universe.provider(obs.provider_id)
        try:
            tier = provider.tier_for(obs.technology)
            return 0, tier.max_download_mbps, tier.max_upload_mbps, tier.low_latency
        except KeyError:
            return 0, 0.0, 0.0, False

    def vectorize(self, observations: list[Observation]) -> np.ndarray:
        """Vectorize a list of observations into an (n, d) matrix.

        Columnar fast path: equivalent to stacking
        :meth:`vectorize_one` rows, but fills a preallocated matrix by
        slice assignment (see module docstring).
        """
        if not observations:
            return np.empty((0, self.n_features))
        n = len(observations)
        n_core = len(CORE_FEATURES)
        state_off = n_core
        tech_off = state_off + self._state_encoder.dim
        emb_off = tech_off + self._tech_encoder.dim
        X = np.zeros((n, self.n_features))

        core_rows = []
        state_idx = np.empty(n, dtype=np.intp)
        tech_idx = np.empty(n, dtype=np.intp)
        cells = np.empty(n, dtype=np.uint64)  # H3 ids use the full 64 bits
        provider_ids = np.empty(n, dtype=np.int64)
        bsl_counts: dict[int, int] = {}
        for i, obs in enumerate(observations):
            n_claimed, down, up, lowlat = self._claim_scalars(obs)
            cell = obs.cell
            n_bsl = bsl_counts.get(cell)
            if n_bsl is None:
                n_bsl = self.fabric.bsl_count_in_cell(cell)
                bsl_counts[cell] = n_bsl
            core_rows.append(
                (
                    down,
                    up,
                    1.0 if lowlat else 0.0,
                    n_claimed / n_bsl if n_bsl else 0.0,
                    self.coverage_scores.get(cell, 0.0),
                    float(
                        self.localization.provider_test_count(obs.provider_id, cell)
                    ),
                )
            )
            state_idx[i] = self._state_encoder.index(obs.state)
            tech_idx[i] = self._tech_encoder.index(obs.technology)
            cells[i] = cell
            provider_ids[i] = obs.provider_id

        scalars = np.asarray(core_rows, dtype=np.float64)
        X[:, 0:3] = scalars[:, 0:3]
        X[:, 5:8] = scalars[:, 3:6]
        # Centroids: one lookup per distinct cell, broadcast back to rows.
        uniq_cells, cell_inv = np.unique(cells, return_inverse=True)
        centroids = np.array([self._centroid(int(c)) for c in uniq_cells])
        X[:, 3] = centroids[cell_inv, 0]
        X[:, 4] = centroids[cell_inv, 1]
        rows = np.arange(n)
        X[rows, state_off + state_idx] = 1.0
        X[rows, tech_off + tech_idx] = 1.0
        # Embeddings: one (cached) embed per distinct provider.
        uniq_providers, provider_inv = np.unique(provider_ids, return_inverse=True)
        embeddings = np.vstack(
            [self._embedding_for(int(p)) for p in uniq_providers]
        )
        X[:, emb_off:] = embeddings[provider_inv]
        return X

    def labels(self, observations: list[Observation]) -> np.ndarray:
        """Binary label vector (1 = unserved/suspicious)."""
        return np.fromiter(
            (obs.unserved for obs in observations),
            dtype=np.int64,
            count=len(observations),
        )
