"""Spatial substrate: geodesy, the H3-analog hex grid, Bing quadkey tiles,
and the quadkey -> hex re-projection from the paper's Appendix D."""

from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    bounding_box,
    destination_point,
    haversine_m,
    haversine_m_vec,
)
from repro.geo.hexgrid import (
    cell_area_km2,
    cell_boundary,
    cell_resolution,
    cell_to_latlng,
    cell_to_parent,
    cells_within_radius,
    edge_length_m,
    grid_disk,
    grid_distance,
    grid_neighbors,
    grid_ring,
    latlng_to_cell,
)
from repro.geo.quadkey import (
    OOKLA_ZOOM,
    latlng_to_quadkey,
    quadkey_to_bounds,
    quadkey_to_center,
    quadkey_to_tile,
    tile_to_quadkey,
)
from repro.geo.reproject import (
    HexAggregate,
    OoklaTileAggregate,
    quadkey_to_cells,
    reproject_tiles,
)

__all__ = [
    "EARTH_RADIUS_M",
    "bounding_box",
    "destination_point",
    "haversine_m",
    "haversine_m_vec",
    "cell_area_km2",
    "cell_boundary",
    "cell_resolution",
    "cell_to_latlng",
    "cell_to_parent",
    "cells_within_radius",
    "edge_length_m",
    "grid_disk",
    "grid_distance",
    "grid_neighbors",
    "grid_ring",
    "latlng_to_cell",
    "OOKLA_ZOOM",
    "latlng_to_quadkey",
    "quadkey_to_bounds",
    "quadkey_to_center",
    "quadkey_to_tile",
    "tile_to_quadkey",
    "HexAggregate",
    "OoklaTileAggregate",
    "quadkey_to_cells",
    "reproject_tiles",
]
