"""Geodesic primitives on a spherical Earth model.

All spatial subsystems (the hex grid, the quadkey tile system, IP
geolocation) share these primitives.  A sphere of authalic radius is accurate
to well under 0.5 % for the distances this library works with (metres to tens
of kilometres), which is far below the noise floor of crowdsourced
geolocation data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_latitude, check_longitude

__all__ = [
    "EARTH_RADIUS_M",
    "haversine_m",
    "haversine_m_vec",
    "destination_point",
    "bounding_box",
]

#: Authalic ("equal-area") Earth radius in metres.
EARTH_RADIUS_M = 6_371_007.2


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance in metres between two (lat, lng) points.

    >>> round(haversine_m(0.0, 0.0, 0.0, 1.0) / 1000.0)  # one degree at equator
    111
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lng2 - lng1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_m_vec(
    lat1: np.ndarray, lng1: np.ndarray, lat2: np.ndarray, lng2: np.ndarray
) -> np.ndarray:
    """Vectorized haversine distance in metres (broadcasts like numpy)."""
    phi1 = np.radians(np.asarray(lat1, dtype=float))
    phi2 = np.radians(np.asarray(lat2, dtype=float))
    dphi = phi2 - phi1
    dlmb = np.radians(np.asarray(lng2, dtype=float) - np.asarray(lng1, dtype=float))
    a = np.sin(dphi / 2) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def destination_point(
    lat: float, lng: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Point reached from (lat, lng) after travelling along a great circle.

    Returns a (lat, lng) tuple in degrees with longitude normalized to
    [-180, 180].
    """
    check_latitude(lat)
    check_longitude(lng)
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lmb1 = math.radians(lng)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lmb2 = lmb1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lng2 = math.degrees(lmb2)
    lng2 = (lng2 + 540.0) % 360.0 - 180.0
    return math.degrees(phi2), lng2


def bounding_box(
    lat: float, lng: float, radius_m: float
) -> tuple[float, float, float, float]:
    """Approximate (lat_min, lat_max, lng_min, lng_max) box around a disk.

    The box is guaranteed to contain the geodesic disk for radii small
    relative to the Earth (the regime used throughout this library).
    """
    check_latitude(lat)
    check_longitude(lng)
    dlat = math.degrees(radius_m / EARTH_RADIUS_M)
    # Guard the cos() at high latitudes so the box stays finite.
    coslat = max(0.01, math.cos(math.radians(lat)))
    dlng = math.degrees(radius_m / (EARTH_RADIUS_M * coslat))
    return (
        max(-90.0, lat - dlat),
        min(90.0, lat + dlat),
        max(-180.0, lng - dlng),
        min(180.0, lng + dlng),
    )
