"""Hierarchical hexagonal grid — an H3 work-alike.

The paper keys every observation to an Uber H3 resolution-8 cell.  H3 itself
is a compiled library that is unavailable here, so this module provides an
equivalent discrete global grid with the same *contract*:

* hexagonal, approximately equal-area cells;
* a ladder of resolutions whose edge length shrinks by ``1/sqrt(7)`` per
  level (H3's aperture-7 scaling), calibrated so that resolution 8 covers
  roughly 0.5 km^2 — the figure the paper quotes;
* packed 64-bit cell identifiers;
* the operations the pipeline needs: point -> cell, cell -> centroid,
  neighbors / k-rings, hex distance, disk queries by geodesic radius,
  boundaries, and centroid-based parent/child traversal.

Cells are regular hexagons in a sinusoidal (equal-area) projection of the
sphere; equal area in the projected plane therefore means equal area on the
globe.  Unlike H3 there is no icosahedral base tiling — nothing in the paper
depends on one.  The projection's central meridian sits at -98° (the centre
of the contiguous United States, the paper's study area) so that shape
distortion — which a sinusoidal projection concentrates far from its central
meridian — is a few percent over CONUS.

Cell identifiers pack ``(resolution, q, r)`` axial coordinates into a single
Python int: 4 bits of resolution and 30 bits for each signed axial
coordinate.  Identifiers are stable across processes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.geodesy import EARTH_RADIUS_M, haversine_m
from repro.utils.validation import check_latitude, check_longitude, check_positive

__all__ = [
    "MAX_RESOLUTION",
    "edge_length_m",
    "cell_area_km2",
    "latlng_to_cell",
    "latlng_to_cell_vec",
    "cell_to_latlng",
    "cell_to_latlng_vec",
    "cell_resolution",
    "pack_cell",
    "unpack_cell",
    "is_valid_cell",
    "grid_disk",
    "grid_ring",
    "grid_distance",
    "grid_distance_vec",
    "cells_to_axial_vec",
    "grid_neighbors",
    "cells_within_radius",
    "cell_boundary",
    "cell_to_parent",
    "cell_to_children",
    "cell_to_center_child",
]

MAX_RESOLUTION = 15

# Edge length at resolution 0, chosen so resolution 8 has edge ~461 m and
# area ~0.55 km^2, matching H3's published resolution table (H3 res-8 edge
# length is 461.354 m).
_EDGE0_M = 461.354684 * math.sqrt(7.0) ** 8

_SQRT3 = math.sqrt(3.0)
_COORD_BITS = 30
_COORD_OFFSET = 1 << (_COORD_BITS - 1)
_COORD_MASK = (1 << _COORD_BITS) - 1


def edge_length_m(res: int) -> float:
    """Edge (circumradius) length in metres of cells at a resolution.

    >>> 400 < edge_length_m(8) < 500
    True
    """
    _check_res(res)
    return _EDGE0_M / math.sqrt(7.0) ** res


def cell_area_km2(res: int) -> float:
    """Area in km^2 of a cell at a resolution (exact for a regular hexagon).

    >>> 0.4 < cell_area_km2(8) < 0.7
    True
    """
    a = edge_length_m(res)
    return (3.0 * _SQRT3 / 2.0) * a * a / 1e6


def _check_res(res: int) -> int:
    if not isinstance(res, int) or not 0 <= res <= MAX_RESOLUTION:
        raise ValueError(f"resolution must be an int in [0, {MAX_RESOLUTION}], got {res!r}")
    return res


#: Central meridian of the projection (degrees): centre of CONUS.
CENTRAL_MERIDIAN_DEG = -98.0


def _wrap_degrees(deg: float) -> float:
    """Wrap an angle in degrees to [-180, 180)."""
    return (deg + 180.0) % 360.0 - 180.0


def _project(lat: float, lng: float) -> tuple[float, float]:
    """Sinusoidal projection: equal-area (x, y) in metres."""
    phi = math.radians(lat)
    lmb = math.radians(_wrap_degrees(lng - CENTRAL_MERIDIAN_DEG))
    return EARTH_RADIUS_M * lmb * math.cos(phi), EARTH_RADIUS_M * phi


def _unproject(x: float, y: float) -> tuple[float, float]:
    """Inverse sinusoidal projection back to (lat, lng) degrees."""
    phi = y / EARTH_RADIUS_M
    lat = math.degrees(phi)
    coslat = math.cos(phi)
    if abs(coslat) < 1e-12:
        return (90.0 if lat > 0 else -90.0), 0.0
    lng = _wrap_degrees(math.degrees(x / (EARTH_RADIUS_M * coslat)) + CENTRAL_MERIDIAN_DEG)
    # Clamp: cells whose centres fall just past the antimeridian in projected
    # space still need a representable longitude.
    return max(-90.0, min(90.0, lat)), max(-180.0, min(180.0, lng))


def _axial_to_xy(q: int, r: int, size: float) -> tuple[float, float]:
    """Centre of the pointy-top hexagon at axial (q, r)."""
    x = size * _SQRT3 * (q + r / 2.0)
    y = size * 1.5 * r
    return x, y


def _xy_to_axial(x: float, y: float, size: float) -> tuple[int, int]:
    """Containing hexagon of a projected point, via cube rounding."""
    qf = (_SQRT3 / 3.0 * x - y / 3.0) / size
    rf = (2.0 / 3.0 * y) / size
    return _cube_round(qf, rf)


def _cube_round(qf: float, rf: float) -> tuple[int, int]:
    sf = -qf - rf
    q, r, s = round(qf), round(rf), round(sf)
    dq, dr, ds = abs(q - qf), abs(r - rf), abs(s - sf)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return int(q), int(r)


def pack_cell(res: int, q: int, r: int) -> int:
    """Pack (resolution, axial q, axial r) into a 64-bit cell id."""
    _check_res(res)
    if not -_COORD_OFFSET <= q < _COORD_OFFSET or not -_COORD_OFFSET <= r < _COORD_OFFSET:
        raise ValueError(f"axial coordinate out of range: q={q}, r={r}")
    return (res << (2 * _COORD_BITS)) | ((q + _COORD_OFFSET) << _COORD_BITS) | (
        r + _COORD_OFFSET
    )


def unpack_cell(cell: int) -> tuple[int, int, int]:
    """Inverse of :func:`pack_cell`: return (resolution, q, r)."""
    res = cell >> (2 * _COORD_BITS)
    q = ((cell >> _COORD_BITS) & _COORD_MASK) - _COORD_OFFSET
    r = (cell & _COORD_MASK) - _COORD_OFFSET
    _check_res(res)
    return res, q, r


def is_valid_cell(cell: int) -> bool:
    """Whether an integer is a structurally valid cell id."""
    if not isinstance(cell, int) or cell < 0:
        return False
    try:
        res, q, r = unpack_cell(cell)
    except ValueError:
        return False
    # The axial coordinates must correspond to a point on the projected globe.
    size = edge_length_m(res)
    x, y = _axial_to_xy(q, r, size)
    return abs(y) <= EARTH_RADIUS_M * math.pi / 2 + size * 2


def latlng_to_cell(lat: float, lng: float, res: int) -> int:
    """Cell id containing a (lat, lng) point at the given resolution.

    >>> cell = latlng_to_cell(40.0, -100.0, 8)
    >>> cell_resolution(cell)
    8
    """
    check_latitude(lat)
    check_longitude(lng)
    _check_res(res)
    x, y = _project(lat, lng)
    q, r = _xy_to_axial(x, y, edge_length_m(res))
    return pack_cell(res, q, r)


def cell_to_latlng(cell: int) -> tuple[float, float]:
    """Centroid (lat, lng) in degrees of a cell."""
    res, q, r = unpack_cell(cell)
    x, y = _axial_to_xy(q, r, edge_length_m(res))
    return _unproject(x, y)


def cell_resolution(cell: int) -> int:
    """Resolution level encoded in a cell id."""
    return unpack_cell(cell)[0]


def latlng_to_cell_vec(lats: np.ndarray, lngs: np.ndarray, res: int) -> np.ndarray:
    """Vectorized :func:`latlng_to_cell`; returns a uint64 array.

    Values equal the scalar function's output element-wise (cell ids exceed
    the int64 range at fine resolutions, hence uint64).
    """
    _check_res(res)
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    phi = np.radians(lats)
    dl = (lngs - CENTRAL_MERIDIAN_DEG + 180.0) % 360.0 - 180.0
    x = EARTH_RADIUS_M * np.radians(dl) * np.cos(phi)
    y = EARTH_RADIUS_M * phi
    size = edge_length_m(res)
    qf = (_SQRT3 / 3.0 * x - y / 3.0) / size
    rf = (2.0 / 3.0 * y) / size
    sf = -qf - rf
    q = np.round(qf)
    r = np.round(rf)
    s = np.round(sf)
    dq, dr, ds = np.abs(q - qf), np.abs(r - rf), np.abs(s - sf)
    fix_q = (dq > dr) & (dq > ds)
    fix_r = ~fix_q & (dr > ds)
    q[fix_q] = -r[fix_q] - s[fix_q]
    r[fix_r] = -q[fix_r] - s[fix_r]
    qi = q.astype(np.int64) + _COORD_OFFSET
    ri = r.astype(np.int64) + _COORD_OFFSET
    return (
        (np.uint64(res) << np.uint64(2 * _COORD_BITS))
        | (qi.astype(np.uint64) << np.uint64(_COORD_BITS))
        | ri.astype(np.uint64)
    )


def cells_to_axial_vec(cells: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`unpack_cell`: (res, q, r) int64 arrays."""
    cells = np.asarray(cells, dtype=np.uint64)
    res = (cells >> np.uint64(2 * _COORD_BITS)).astype(np.int64)
    q = ((cells >> np.uint64(_COORD_BITS)) & np.uint64(_COORD_MASK)).astype(np.int64) - _COORD_OFFSET
    r = (cells & np.uint64(_COORD_MASK)).astype(np.int64) - _COORD_OFFSET
    return res, q, r


def grid_distance_vec(cells: np.ndarray, other: int) -> np.ndarray:
    """Hex distance from each cell in an array to one reference cell."""
    _, q, r = cells_to_axial_vec(cells)
    res_o, qo, ro = unpack_cell(int(other))
    dq, dr = q - qo, r - ro
    return (np.abs(dq) + np.abs(dr) + np.abs(dq + dr)) // 2


def cell_to_latlng_vec(cells: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`cell_to_latlng` for a uint64 cell array."""
    cells = np.asarray(cells, dtype=np.uint64)
    res = (cells >> np.uint64(2 * _COORD_BITS)).astype(np.int64)
    if cells.size and not (res == res.flat[0]).all():
        raise ValueError("all cells must share one resolution")
    q = ((cells >> np.uint64(_COORD_BITS)) & np.uint64(_COORD_MASK)).astype(np.int64) - _COORD_OFFSET
    r = (cells & np.uint64(_COORD_MASK)).astype(np.int64) - _COORD_OFFSET
    if cells.size == 0:
        return np.empty(0), np.empty(0)
    size = edge_length_m(int(res.flat[0]))
    x = size * _SQRT3 * (q + r / 2.0)
    y = size * 1.5 * r
    phi = y / EARTH_RADIUS_M
    lat = np.degrees(phi)
    coslat = np.cos(phi)
    safe = np.abs(coslat) > 1e-12
    lng = np.zeros_like(x)
    lng[safe] = np.degrees(x[safe] / (EARTH_RADIUS_M * coslat[safe]))
    lng = (lng + CENTRAL_MERIDIAN_DEG + 180.0) % 360.0 - 180.0
    return np.clip(lat, -90.0, 90.0), np.clip(lng, -180.0, 180.0)


def grid_neighbors(cell: int) -> list[int]:
    """The six cells sharing an edge with ``cell``."""
    res, q, r = unpack_cell(cell)
    deltas = ((1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1))
    return [pack_cell(res, q + dq, r + dr) for dq, dr in deltas]


def grid_ring(cell: int, k: int) -> list[int]:
    """Cells at exactly hex-distance ``k`` (the "hollow ring")."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return [cell]
    res, q, r = unpack_cell(cell)
    results = []
    # Walk the ring: start k steps in axial direction (-1, 0), then walk k
    # steps along each of the six sides in cube-direction order.
    cq, cr = q - k, r
    directions = ((1, -1), (1, 0), (0, 1), (-1, 1), (-1, 0), (0, -1))
    for dq, dr in directions:
        for _ in range(k):
            results.append(pack_cell(res, cq, cr))
            cq, cr = cq + dq, cr + dr
    return results


def grid_disk(cell: int, k: int) -> list[int]:
    """All cells within hex-distance ``k`` of ``cell`` (inclusive).

    >>> len(grid_disk(latlng_to_cell(40, -100, 8), 2))
    19
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    res, q, r = unpack_cell(cell)
    cells = []
    for dq in range(-k, k + 1):
        for dr in range(max(-k, -dq - k), min(k, -dq + k) + 1):
            cells.append(pack_cell(res, q + dq, r + dr))
    return cells


def grid_distance(cell_a: int, cell_b: int) -> int:
    """Hex (grid-steps) distance between two cells of equal resolution."""
    res_a, qa, ra = unpack_cell(cell_a)
    res_b, qb, rb = unpack_cell(cell_b)
    if res_a != res_b:
        raise ValueError(f"cells have different resolutions: {res_a} != {res_b}")
    dq, dr = qa - qb, ra - rb
    return int((abs(dq) + abs(dr) + abs(dq + dr)) // 2)


def cells_within_radius(lat: float, lng: float, radius_m: float, res: int) -> list[int]:
    """Cells whose centroid lies within a geodesic radius of a point.

    This is the primitive the MLab localization step uses: "all hexes within
    the accuracy radius recorded in the IP geolocation of the test".
    """
    check_latitude(lat)
    check_longitude(lng)
    check_positive(radius_m, "radius_m")
    _check_res(res)
    center = latlng_to_cell(lat, lng, res)
    # Adjacent centre spacing is sqrt(3) * edge in the projected plane.  The
    # sinusoidal projection shears shapes away from the central meridian by
    # up to sqrt(1 + (dlmb * sin(phi))^2); widen the candidate disk by that
    # factor, then filter by true geodesic distance.
    dlmb = math.radians(_wrap_degrees(lng - CENTRAL_MERIDIAN_DEG))
    shear = math.sqrt(1.0 + (dlmb * math.sin(math.radians(lat))) ** 2)
    spacing = _SQRT3 * edge_length_m(res)
    k = int(math.ceil(shear * radius_m / spacing)) + 1
    out = []
    for cell in grid_disk(center, k):
        clat, clng = cell_to_latlng(cell)
        if haversine_m(lat, lng, clat, clng) <= radius_m:
            out.append(cell)
    return out


def cell_boundary(cell: int) -> list[tuple[float, float]]:
    """The six (lat, lng) vertices of a cell, counter-clockwise."""
    res, q, r = unpack_cell(cell)
    size = edge_length_m(res)
    cx, cy = _axial_to_xy(q, r, size)
    vertices = []
    for i in range(6):
        # Pointy-top hexagon: vertices at 30, 90, ..., 330 degrees.
        angle = math.pi / 180.0 * (60.0 * i + 30.0)
        vx = cx + size * math.cos(angle)
        vy = cy + size * math.sin(angle)
        vertices.append(_unproject(vx, vy))
    return vertices


def cell_to_parent(cell: int, parent_res: int) -> int:
    """Coarser-resolution cell containing this cell's centroid.

    Like H3's aperture-7 hierarchy, containment is centroid-based: a child's
    area may straddle two parents, in which case the parent owning the
    child's centre wins.
    """
    res = cell_resolution(cell)
    _check_res(parent_res)
    if parent_res > res:
        raise ValueError(f"parent_res {parent_res} is finer than cell resolution {res}")
    if parent_res == res:
        return cell
    lat, lng = cell_to_latlng(cell)
    return latlng_to_cell(lat, lng, parent_res)


def cell_to_center_child(cell: int, child_res: int) -> int:
    """Finest-resolution cell at the centre of this cell."""
    res = cell_resolution(cell)
    _check_res(child_res)
    if child_res < res:
        raise ValueError(f"child_res {child_res} is coarser than cell resolution {res}")
    lat, lng = cell_to_latlng(cell)
    return latlng_to_cell(lat, lng, child_res)


def cell_to_children(cell: int, child_res: int) -> list[int]:
    """Finer-resolution cells whose centroids fall inside this cell.

    With aperture-sqrt(7) scaling a parent covers ~7**(child_res - res)
    children on average.
    """
    res = cell_resolution(cell)
    _check_res(child_res)
    if child_res < res:
        raise ValueError(f"child_res {child_res} is coarser than cell resolution {res}")
    if child_res == res:
        return [cell]
    # Over-cover with a disk around the centre child, then keep children whose
    # centroids map back to this cell.
    center_child = cell_to_center_child(cell, child_res)
    ratio = edge_length_m(res) / edge_length_m(child_res)
    k = int(math.ceil(ratio)) + 1
    return [c for c in grid_disk(center_child, k) if cell_to_parent(c, res) == cell]
