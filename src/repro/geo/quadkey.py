"""Bing Maps tile system ("quadkeys"), implemented to the published spec.

Ookla's open dataset aggregates speed tests into Web Mercator tiles at zoom
level 16 (~500 m on a side at mid-latitudes) addressed by *quadkeys* —
base-4 strings in which each digit selects a quadrant at successive zoom
levels.  This module implements the Microsoft Bing Maps tile-system math
exactly (https://learn.microsoft.com/en-us/bingmaps/articles/bing-maps-tile-system)
so that the Appendix-D re-projection to hex cells runs against a faithful
tile substrate.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_range

__all__ = [
    "MIN_LATITUDE",
    "MAX_LATITUDE",
    "OOKLA_ZOOM",
    "ground_resolution_m",
    "map_size",
    "latlng_to_pixel",
    "pixel_to_latlng",
    "pixel_to_tile",
    "tile_to_pixel",
    "tile_to_quadkey",
    "quadkey_to_tile",
    "latlng_to_quadkey",
    "quadkey_to_bounds",
    "quadkey_to_center",
    "tile_size_m",
]

#: Web Mercator latitude clamp used by the Bing tile system.
MIN_LATITUDE = -85.05112878
MAX_LATITUDE = 85.05112878
_MIN_LONGITUDE = -180.0
_MAX_LONGITUDE = 180.0

#: WGS84 semi-major axis used by the Bing tile system.
_BING_EARTH_RADIUS_M = 6378137.0

#: Zoom level of Ookla open-data tiles.
OOKLA_ZOOM = 16


def _clip(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


def map_size(level: int) -> int:
    """Map width/height in pixels at a zoom level (256 * 2**level)."""
    if not 1 <= level <= 23:
        raise ValueError(f"level must be in [1, 23], got {level}")
    return 256 << level


def ground_resolution_m(lat: float, level: int) -> float:
    """Metres per pixel at a latitude and zoom level."""
    lat = _clip(lat, MIN_LATITUDE, MAX_LATITUDE)
    return (
        math.cos(lat * math.pi / 180.0)
        * 2.0
        * math.pi
        * _BING_EARTH_RADIUS_M
        / map_size(level)
    )


def tile_size_m(lat: float, level: int = OOKLA_ZOOM) -> float:
    """Side length in metres of a tile at a latitude and zoom level."""
    return ground_resolution_m(lat, level) * 256.0


def latlng_to_pixel(lat: float, lng: float, level: int) -> tuple[int, int]:
    """Pixel XY of a (lat, lng) point at a zoom level (spec-exact)."""
    lat = _clip(lat, MIN_LATITUDE, MAX_LATITUDE)
    lng = _clip(lng, _MIN_LONGITUDE, _MAX_LONGITUDE)
    x = (lng + 180.0) / 360.0
    sin_lat = math.sin(lat * math.pi / 180.0)
    y = 0.5 - math.log((1.0 + sin_lat) / (1.0 - sin_lat)) / (4.0 * math.pi)
    size = map_size(level)
    px = int(_clip(x * size + 0.5, 0, size - 1))
    py = int(_clip(y * size + 0.5, 0, size - 1))
    return px, py


def pixel_to_latlng(px: int, py: int, level: int) -> tuple[float, float]:
    """(lat, lng) of a pixel XY at a zoom level (spec-exact)."""
    size = map_size(level)
    x = _clip(px, 0, size - 1) / size - 0.5
    y = 0.5 - _clip(py, 0, size - 1) / size
    lat = 90.0 - 360.0 * math.atan(math.exp(-y * 2.0 * math.pi)) / math.pi
    lng = 360.0 * x
    return lat, lng


def pixel_to_tile(px: int, py: int) -> tuple[int, int]:
    """Tile XY containing a pixel."""
    return px // 256, py // 256


def tile_to_pixel(tx: int, ty: int) -> tuple[int, int]:
    """Upper-left pixel of a tile."""
    return tx * 256, ty * 256


def tile_to_quadkey(tx: int, ty: int, level: int) -> str:
    """Quadkey string for a tile at a zoom level.

    >>> tile_to_quadkey(3, 5, 3)
    '213'
    """
    digits = []
    for i in range(level, 0, -1):
        digit = 0
        mask = 1 << (i - 1)
        if tx & mask:
            digit += 1
        if ty & mask:
            digit += 2
        digits.append(str(digit))
    return "".join(digits)


def quadkey_to_tile(quadkey: str) -> tuple[int, int, int]:
    """(tile_x, tile_y, level) for a quadkey string.

    >>> quadkey_to_tile('213')
    (3, 5, 3)
    """
    tx = ty = 0
    level = len(quadkey)
    if level == 0:
        raise ValueError("quadkey must be non-empty")
    for i in range(level, 0, -1):
        mask = 1 << (i - 1)
        digit = quadkey[level - i]
        if digit == "1":
            tx |= mask
        elif digit == "2":
            ty |= mask
        elif digit == "3":
            tx |= mask
            ty |= mask
        elif digit != "0":
            raise ValueError(f"invalid quadkey digit {digit!r} in {quadkey!r}")
    return tx, ty, level


def latlng_to_quadkey(lat: float, lng: float, level: int = OOKLA_ZOOM) -> str:
    """Quadkey of the tile containing a (lat, lng) point."""
    px, py = latlng_to_pixel(lat, lng, level)
    tx, ty = pixel_to_tile(px, py)
    return tile_to_quadkey(tx, ty, level)


def quadkey_to_bounds(quadkey: str) -> tuple[float, float, float, float]:
    """(lat_min, lat_max, lng_min, lng_max) of a tile."""
    tx, ty, level = quadkey_to_tile(quadkey)
    px, py = tile_to_pixel(tx, ty)
    lat_n, lng_w = pixel_to_latlng(px, py, level)
    lat_s, lng_e = pixel_to_latlng(px + 256, py + 256, level)
    return lat_s, lat_n, lng_w, lng_e


def quadkey_to_center(quadkey: str) -> tuple[float, float]:
    """(lat, lng) of a tile's centre."""
    tx, ty, level = quadkey_to_tile(quadkey)
    px, py = tile_to_pixel(tx, ty)
    return pixel_to_latlng(px + 128, py + 128, level)


def quadkey_children(quadkey: str) -> list[str]:
    """The four child quadkeys one zoom level deeper."""
    return [quadkey + d for d in "0123"]


def quadkey_parent(quadkey: str) -> str:
    """The parent quadkey one zoom level shallower."""
    if len(quadkey) <= 1:
        raise ValueError("level-1 quadkey has no parent")
    return quadkey[:-1]


def validate_quadkey(quadkey: str) -> str:
    """Validate a quadkey string and return it."""
    check_in_range(len(quadkey), 1, 23, "quadkey length")
    if any(c not in "0123" for c in quadkey):
        raise ValueError(f"invalid quadkey {quadkey!r}")
    return quadkey
