"""Quadkey -> hex re-projection (paper Appendix D).

Ookla's open data arrives keyed by Web Mercator quadkey tiles; the rest of
the pipeline is keyed by hex cells.  Following Appendix D of the paper:

* a quadkey tile that falls entirely within one hex cell maps to that cell;
* a tile spanning multiple hex cells maps to *each* relevant cell;
* per-cell aggregation **sums** test and device counts, takes the **max** of
  mean throughputs and the **min** of mean latencies.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.geo import hexgrid, quadkey as qk

__all__ = ["OoklaTileAggregate", "HexAggregate", "quadkey_to_cells", "reproject_tiles"]


@dataclass(frozen=True)
class OoklaTileAggregate:
    """One row of the (simulated) Ookla open dataset: a quadkey tile summary."""

    quadkey: str
    tests: int
    devices: int
    avg_download_kbps: float
    avg_upload_kbps: float
    avg_latency_ms: float


@dataclass
class HexAggregate:
    """Ookla attributes accumulated onto one hex cell."""

    cell: int
    tests: int = 0
    devices: int = 0
    max_avg_download_kbps: float = 0.0
    max_avg_upload_kbps: float = 0.0
    min_avg_latency_ms: float = float("inf")
    source_tiles: list[str] = field(default_factory=list)

    def absorb(self, tile: OoklaTileAggregate) -> None:
        """Fold one tile's aggregates into this cell."""
        self.tests += tile.tests
        self.devices += tile.devices
        self.max_avg_download_kbps = max(self.max_avg_download_kbps, tile.avg_download_kbps)
        self.max_avg_upload_kbps = max(self.max_avg_upload_kbps, tile.avg_upload_kbps)
        self.min_avg_latency_ms = min(self.min_avg_latency_ms, tile.avg_latency_ms)
        self.source_tiles.append(tile.quadkey)


def quadkey_to_cells(quadkey: str, res: int) -> list[int]:
    """Hex cells a quadkey tile overlaps.

    Sampling the tile centre plus its four corners is exact whenever the tile
    is smaller than the hex cell (the common case: a zoom-16 tile is ~0.37
    km^2, a res-8 hex ~0.55 km^2) and a close over-approximation otherwise.
    """
    lat_s, lat_n, lng_w, lng_e = qk.quadkey_to_bounds(quadkey)
    clat, clng = qk.quadkey_to_center(quadkey)
    points = [
        (clat, clng),
        (lat_s, lng_w),
        (lat_s, lng_e),
        (lat_n, lng_w),
        (lat_n, lng_e),
    ]
    cells = {hexgrid.latlng_to_cell(lat, lng, res) for lat, lng in points}
    return sorted(cells)


def reproject_tiles(
    tiles: Iterable[OoklaTileAggregate], res: int = 8
) -> dict[int, HexAggregate]:
    """Re-project tile aggregates onto hex cells (Appendix D semantics).

    Returns a mapping from cell id to :class:`HexAggregate`.  Tiles spanning
    k cells contribute their full counts to each of the k cells, mirroring
    the paper's "we map it to each relevant H3 tile".
    """
    out: dict[int, HexAggregate] = {}
    for tile in tiles:
        for cell in quadkey_to_cells(tile.quadkey, res):
            agg = out.get(cell)
            if agg is None:
                agg = HexAggregate(cell=cell)
                out[cell] = agg
            agg.absorb(tile)
    return out
