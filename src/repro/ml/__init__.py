"""Machine-learning substrate: gradient-boosted trees (XGBoost analog),
classification metrics, exact TreeSHAP, and GP Bayesian optimization."""

from repro.ml.bayesopt import BayesianOptimizer, ParamSpec, SearchSpace, maximize
from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.metrics import (
    BinaryClassificationReport,
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.shap import SHAPExplanation, shap_values, summary_ranking, waterfall
from repro.ml.tree import (
    FlatEnsemble,
    HistogramBinner,
    RegressionTree,
    TreeGrowthParams,
)

__all__ = [
    "BayesianOptimizer",
    "ParamSpec",
    "SearchSpace",
    "maximize",
    "GBDTParams",
    "GradientBoostedClassifier",
    "BinaryClassificationReport",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "SHAPExplanation",
    "shap_values",
    "summary_ranking",
    "waterfall",
    "FlatEnsemble",
    "HistogramBinner",
    "RegressionTree",
    "TreeGrowthParams",
]
