"""Seed (pre-vectorization) GBDT kernels, kept as the equivalence oracle.

The production hot paths in :mod:`repro.ml.tree` and :mod:`repro.ml.gbdt`
were rebuilt around fused multi-feature histograms, sibling subtraction,
and flat-ensemble inference.  This module preserves the original
per-feature / per-tree Python-loop kernels exactly as they shipped in the
seed so that:

* property tests can assert the vectorized kernels produce
  bitwise-identical trees and margins (``tests/test_ml_equivalence.py``);
* the performance benchmarks (``benchmarks/bench_perf_gbdt.py``) can
  measure the speedup of the new kernels against the seed implementation
  on the same inputs.

Nothing here is used by the production code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.tree import (
    MISSING_BIN,
    HistogramBinner,
    RegressionTree,
    TreeGrowthParams,
    _leaf_weight,
    _score,
)

__all__ = [
    "grow_tree_reference",
    "reference_binner_transform",
    "reference_fit",
    "reference_predict_margin",
    "ReferenceFitResult",
]


def reference_binner_transform(binner: HistogramBinner, X: np.ndarray) -> np.ndarray:
    """Seed ``HistogramBinner.transform``: one ``searchsorted`` per feature."""
    if binner.split_values_ is None:
        raise RuntimeError("binner is not fitted")
    X = np.asarray(X, dtype=np.float64)
    out = np.empty(X.shape, dtype=np.uint8)
    for f, cuts in enumerate(binner.split_values_):
        col = X[:, f]
        binned = np.searchsorted(cuts, col, side="left").astype(np.uint8)
        binned[~np.isfinite(col)] = MISSING_BIN
        out[:, f] = binned
    return out


class _ReferenceTreeBuilder:
    """Seed tree builder: per-feature histogram loop in ``_best_split``."""

    def __init__(
        self,
        Xb: np.ndarray,
        binner: HistogramBinner,
        grad: np.ndarray,
        hess: np.ndarray,
        params: TreeGrowthParams,
        feature_indices: np.ndarray,
    ):
        self.Xb = Xb
        self.binner = binner
        self.grad = grad
        self.hess = hess
        self.params = params
        self.feature_indices = feature_indices
        self.nodes: list[dict] = []

    def build(self, row_indices: np.ndarray) -> RegressionTree:
        self._grow(row_indices, depth=0)
        return self._to_arrays()

    def _new_node(self) -> int:
        self.nodes.append(
            {
                "feature": -1,
                "threshold": np.nan,
                "threshold_bin": -1,
                "left": -1,
                "right": -1,
                "default_left": True,
                "value": 0.0,
                "cover": 0.0,
                "gain": 0.0,
            }
        )
        return len(self.nodes) - 1

    def _grow(self, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        g_sum = float(self.grad[idx].sum())
        h_sum = float(self.hess[idx].sum())
        record = self.nodes[node]
        record["cover"] = h_sum
        params = self.params
        if (
            depth >= params.max_depth
            or idx.size < 2 * params.min_samples_leaf
            or h_sum < 2 * params.min_child_weight
        ):
            record["value"] = _leaf_weight(g_sum, h_sum, params)
            return node
        best = self._best_split(idx, g_sum, h_sum)
        if best is None:
            record["value"] = _leaf_weight(g_sum, h_sum, params)
            return node
        feat, bin_idx, default_left, gain = best
        col = self.Xb[idx, feat]
        missing = col == MISSING_BIN
        go_left = (col <= bin_idx) & ~missing
        if default_left:
            go_left |= missing
        left_idx, right_idx = idx[go_left], idx[~go_left]
        record["feature"] = int(feat)
        record["threshold"] = self.binner.threshold_value(feat, bin_idx)
        record["threshold_bin"] = int(bin_idx)
        record["default_left"] = bool(default_left)
        record["gain"] = float(gain)
        record["left"] = self._grow(left_idx, depth + 1)
        record["right"] = self._grow(right_idx, depth + 1)
        return node

    def _best_split(
        self, idx: np.ndarray, g_sum: float, h_sum: float
    ) -> tuple[int, int, bool, float] | None:
        params = self.params
        parent_score = float(_score(np.array([g_sum]), np.array([h_sum]), params)[0])
        best_gain = 0.0
        best: tuple[int, int, bool, float] | None = None
        g_rows = self.grad[idx]
        h_rows = self.hess[idx]
        for feat in self.feature_indices:
            nbins = self.binner.n_bins(feat)
            if nbins < 2:
                continue
            col = self.Xb[idx, feat].astype(np.int64)
            g_hist = np.bincount(col, weights=g_rows, minlength=256)
            h_hist = np.bincount(col, weights=h_rows, minlength=256)
            n_hist = np.bincount(col, minlength=256)
            g_miss, h_miss = g_hist[MISSING_BIN], h_hist[MISSING_BIN]
            n_miss = n_hist[MISSING_BIN]
            cg = np.cumsum(g_hist[:nbins])[:-1]
            ch = np.cumsum(h_hist[:nbins])[:-1]
            cn = np.cumsum(n_hist[:nbins])[:-1]
            for default_left in (False, True):
                gl = cg + (g_miss if default_left else 0.0)
                hl = ch + (h_miss if default_left else 0.0)
                nl = cn + (n_miss if default_left else 0)
                gr = g_sum - gl
                hr = h_sum - hl
                nr = idx.size - nl
                valid = (
                    (hl >= params.min_child_weight)
                    & (hr >= params.min_child_weight)
                    & (nl >= params.min_samples_leaf)
                    & (nr >= params.min_samples_leaf)
                )
                if not valid.any():
                    continue
                gains = 0.5 * (
                    _score(gl, hl, params) + _score(gr, hr, params) - parent_score
                ) - params.gamma
                gains[~valid] = -np.inf
                b = int(np.argmax(gains))
                if gains[b] > best_gain:
                    best_gain = float(gains[b])
                    best = (int(feat), b, default_left, best_gain)
                # With no missing values both directions are identical; skip
                # the redundant second pass.
                if n_miss == 0:
                    break
        return best

    def _to_arrays(self) -> RegressionTree:
        n = len(self.nodes)
        tree = RegressionTree(
            feature=np.array([r["feature"] for r in self.nodes], dtype=np.int32),
            threshold=np.array([r["threshold"] for r in self.nodes]),
            threshold_bin=np.array(
                [r["threshold_bin"] for r in self.nodes], dtype=np.int32
            ),
            children_left=np.array([r["left"] for r in self.nodes], dtype=np.int32),
            children_right=np.array([r["right"] for r in self.nodes], dtype=np.int32),
            default_left=np.array([r["default_left"] for r in self.nodes], dtype=bool),
            values=np.array([r["value"] for r in self.nodes]),
            cover=np.array([r["cover"] for r in self.nodes]),
            gain=np.array([r["gain"] for r in self.nodes]),
        )
        assert tree.n_nodes == n
        return tree


def grow_tree_reference(
    Xb: np.ndarray,
    binner: HistogramBinner,
    grad: np.ndarray,
    hess: np.ndarray,
    row_indices: np.ndarray,
    feature_indices: np.ndarray,
    params: TreeGrowthParams,
) -> RegressionTree:
    """Grow one tree with the seed per-feature-loop split finder."""
    builder = _ReferenceTreeBuilder(Xb, binner, grad, hess, params, feature_indices)
    return builder.build(row_indices)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _logloss(y: np.ndarray, p: np.ndarray) -> float:
    eps = 1e-12
    p = np.clip(p, eps, 1.0 - eps)
    return float(-(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)).mean())


@dataclass
class ReferenceFitResult:
    """Artifacts of a seed-style boosting run."""

    binner: HistogramBinner
    trees: list[RegressionTree]
    base_margin: float
    n_features: int
    train_loss: list[float] = field(default_factory=list)


def reference_fit(params, X: np.ndarray, y: np.ndarray) -> ReferenceFitResult:
    """Seed ``GradientBoostedClassifier.fit`` loop (no eval set support).

    Mirrors the original training flow exactly: same RNG draws for
    row/column subsampling, per-feature split search, and a per-tree
    ``predict_binned`` pass to refresh the training margin.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    p = params
    rng = np.random.default_rng(p.random_state)
    n, d = X.shape

    binner = HistogramBinner(max_bins=p.max_bins)
    binner.fit(X)
    Xb = reference_binner_transform(binner, X)
    pos_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
    base_margin = float(np.log(pos_rate / (1.0 - pos_rate)))
    margin = np.full(n, base_margin)

    growth = TreeGrowthParams(
        max_depth=p.max_depth,
        min_child_weight=p.min_child_weight,
        reg_lambda=p.reg_lambda,
        reg_alpha=p.reg_alpha,
        gamma=p.gamma,
        min_samples_leaf=p.min_samples_leaf,
    )
    result = ReferenceFitResult(
        binner=binner, trees=[], base_margin=base_margin, n_features=d
    )
    for _ in range(p.n_estimators):
        prob = _sigmoid(margin)
        grad = prob - y
        hess = np.maximum(prob * (1.0 - prob), 1e-16)
        if p.subsample < 1.0:
            take = max(2, int(round(p.subsample * n)))
            rows = rng.choice(n, size=take, replace=False)
        else:
            rows = np.arange(n)
        if p.colsample_bytree < 1.0:
            take = max(1, int(round(p.colsample_bytree * d)))
            cols = np.sort(rng.choice(d, size=take, replace=False))
        else:
            cols = np.arange(d)
        tree = grow_tree_reference(Xb, binner, grad, hess, rows, cols, growth)
        tree.values *= p.learning_rate
        result.trees.append(tree)
        margin += tree.predict_binned(Xb)
        result.train_loss.append(_logloss(y, _sigmoid(margin)))
    return result


def reference_predict_margin(
    base_margin: float, trees: list[RegressionTree], X: np.ndarray
) -> np.ndarray:
    """Seed inference: one Python-level traversal per tree."""
    X = np.asarray(X, dtype=np.float64)
    margin = np.full(X.shape[0], base_margin)
    for tree in trees:
        margin += tree.predict(X)
    return margin
