"""Gaussian-process Bayesian optimization for hyper-parameter search.

The paper optimizes XGBoost hyper-parameters with Bayesian optimization;
this module provides an equivalent optimizer on numpy/scipy: a Gaussian
process surrogate (RBF kernel, log-marginal-likelihood lengthscale
selection over a small grid) with the expected-improvement acquisition,
maximized over random candidates.

Parameters are described by :class:`ParamSpec`; log-scaled and integer
parameters are handled transparently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

__all__ = ["ParamSpec", "SearchSpace", "BayesianOptimizer", "maximize"]


@dataclass(frozen=True)
class ParamSpec:
    """One hyper-parameter's range and scaling."""

    low: float
    high: float
    log: bool = False
    integer: bool = False

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError(f"low must be < high, got [{self.low}, {self.high}]")
        if self.log and self.low <= 0:
            raise ValueError("log-scaled parameters require low > 0")

    def to_unit(self, value: float) -> float:
        """Map a parameter value to [0, 1]."""
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        """Map a [0, 1] coordinate back to the parameter's native scale."""
        u = min(1.0, max(0.0, u))
        if self.log:
            value = math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        else:
            value = self.low + u * (self.high - self.low)
        if self.integer:
            value = int(round(value))
            value = int(min(self.high, max(self.low, value)))
        return value


class SearchSpace:
    """An ordered collection of named :class:`ParamSpec`."""

    def __init__(self, specs: dict[str, ParamSpec]):
        if not specs:
            raise ValueError("search space must not be empty")
        self.names = tuple(specs.keys())
        self.specs = tuple(specs.values())

    @property
    def dim(self) -> int:
        return len(self.specs)

    def to_unit(self, params: dict[str, float]) -> np.ndarray:
        return np.array(
            [spec.to_unit(params[name]) for name, spec in zip(self.names, self.specs)]
        )

    def from_unit(self, u: np.ndarray) -> dict[str, float]:
        return {
            name: spec.from_unit(float(ui))
            for name, spec, ui in zip(self.names, self.specs, u)
        }

    def sample(self, rng: np.random.Generator) -> dict[str, float]:
        return self.from_unit(rng.random(self.dim))


class _GaussianProcess:
    """Minimal GP regression with an RBF kernel on the unit cube."""

    def __init__(self, lengthscale: float, noise: float = 1e-6):
        self.lengthscale = lengthscale
        self.noise = noise
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(A * A, axis=1)[:, None]
            + np.sum(B * B, axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0) / self.lengthscale**2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_GaussianProcess":
        self._X = X
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        K = self._kernel(X, X) + self.noise * np.eye(X.shape[0])
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        return self

    def log_marginal_likelihood(self, y: np.ndarray) -> float:
        yn = (y - self._y_mean) / self._y_std
        half_logdet = float(np.log(np.diag(self._chol[0])).sum())
        return float(-0.5 * yn @ self._alpha - half_logdet)

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Ks = self._kernel(X, self._X)
        mean = Ks @ self._alpha
        v = cho_solve(self._chol, Ks.T)
        var = np.maximum(1.0 - np.sum(Ks * v.T, axis=1), 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )


class BayesianOptimizer:
    """Ask/tell Bayesian optimizer maximizing a black-box objective.

    >>> space = SearchSpace({"x": ParamSpec(0.0, 1.0)})
    >>> opt = BayesianOptimizer(space, seed=0)
    >>> for _ in range(8):
    ...     params = opt.ask()
    ...     opt.tell(params, -(params["x"] - 0.3) ** 2)
    >>> abs(opt.best_params["x"] - 0.3) < 0.35
    True
    """

    _LENGTHSCALE_GRID = (0.1, 0.2, 0.4, 0.8, 1.6)

    def __init__(
        self, space: SearchSpace, seed: int = 0, n_initial: int = 5, candidates: int = 1024
    ):
        self.space = space
        self.rng = np.random.default_rng(seed)
        self.n_initial = max(2, n_initial)
        self.candidates = candidates
        self._X: list[np.ndarray] = []
        self._y: list[float] = []

    @property
    def n_observed(self) -> int:
        return len(self._y)

    @property
    def best_params(self) -> dict[str, float]:
        if not self._y:
            raise RuntimeError("no observations yet")
        return self.space.from_unit(self._X[int(np.argmax(self._y))])

    @property
    def best_value(self) -> float:
        if not self._y:
            raise RuntimeError("no observations yet")
        return float(max(self._y))

    def ask(self) -> dict[str, float]:
        """Propose the next parameter set to evaluate."""
        if self.n_observed < self.n_initial:
            return self.space.sample(self.rng)
        X = np.vstack(self._X)
        y = np.asarray(self._y)
        gp = self._fit_gp(X, y)
        cand = self.rng.random((self.candidates, self.space.dim))
        mean, std = gp.predict(cand)
        best = float(y.max())
        improve = mean - best
        z = improve / std
        ei = improve * norm.cdf(z) + std * norm.pdf(z)
        return self.space.from_unit(cand[int(np.argmax(ei))])

    def tell(self, params: dict[str, float], value: float) -> None:
        """Record an observed objective value for a parameter set."""
        if not math.isfinite(value):
            raise ValueError(f"objective value must be finite, got {value!r}")
        self._X.append(self.space.to_unit(params))
        self._y.append(float(value))

    def _fit_gp(self, X: np.ndarray, y: np.ndarray) -> _GaussianProcess:
        best_gp, best_lml = None, -np.inf
        for ls in self._LENGTHSCALE_GRID:
            gp = _GaussianProcess(lengthscale=ls, noise=1e-4).fit(X, y)
            lml = gp.log_marginal_likelihood(y)
            if lml > best_lml:
                best_gp, best_lml = gp, lml
        return best_gp


def maximize(
    func,
    space: SearchSpace,
    n_iter: int = 25,
    seed: int = 0,
    resources=None,
) -> tuple[dict[str, float], float, BayesianOptimizer]:
    """Maximize ``func(params_dict)`` over a search space.

    ``resources``, when not ``None``, is handed to every trial as a
    second argument — ``func(params, resources)`` — so expensive
    trial-invariant artifacts are built once for the whole optimization
    instead of once per trial.  The GBDT tuning loop uses this to share
    one fitted :class:`repro.ml.tree.HistogramBinner` (and the matrices
    it has already binned) across all trials; see
    :meth:`repro.core.model.NBMIntegrityModel.tune`.

    Returns ``(best_params, best_value, optimizer)``.
    """
    if n_iter < 1:
        raise ValueError("n_iter must be >= 1")
    opt = BayesianOptimizer(space, seed=seed)
    for _ in range(n_iter):
        params = opt.ask()
        value = func(params) if resources is None else func(params, resources)
        opt.tell(params, float(value))
    return opt.best_params, opt.best_value, opt
