"""Gradient-boosted decision trees for binary classification.

A from-scratch implementation of the XGBoost training algorithm the paper
uses (logistic loss, second-order boosting, shrinkage, row/column
subsampling, histogram split finding, sparsity-aware missing handling).
Hyper-parameters carry their XGBoost names and meanings so the Bayesian
optimization loop from the paper translates directly.

Hot paths are vectorized end to end: trees are grown with the fused
multi-feature histogram kernel (see :mod:`repro.ml.tree`), training
margins reuse the builder's per-row leaf values when every row trains the
tree, and fitted models evaluate through a :class:`~repro.ml.tree.FlatEnsemble`
— all trees' node arrays concatenated and traversed in one batched pass
per prediction call.  The seed per-feature/per-tree loop kernels live on
in :mod:`repro.ml._reference` as the equivalence oracle.

Batch-scoring and tuning surfaces
---------------------------------

=============================================  ================================
Call                                           Effect
=============================================  ================================
``fit(X, y)``                                  fits a fresh
                                               :class:`~repro.ml.tree.HistogramBinner`
                                               and bins ``X`` (seed behaviour)
``fit(X, y, binner=fitted)``                   reuses a shared fitted binner —
                                               Bayesian-optimization trials bin
                                               the training matrix **once**
``fit(Xb_codes, y, binner=fitted)``            ``Xb`` already uint8 bin codes:
                                               skips the transform entirely
``predict_margin(X)``                          float frontier traversal
                                               (bitwise = seed)
``predict_margin(X, binned=True)``             uint8 traversal with per-depth
                                               active-set compaction; accepts
                                               float rows (transformed by the
                                               fit binner) or pre-binned codes;
                                               bitwise = the float path
=============================================  ================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.tree import (
    FlatEnsemble,
    HistogramBinner,
    RegressionTree,
    TreeGrowthParams,
    grow_tree,
)

__all__ = ["GBDTParams", "GradientBoostedClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _logloss(y: np.ndarray, p: np.ndarray) -> float:
    eps = 1e-12
    p = np.clip(p, eps, 1.0 - eps)
    return float(-(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)).mean())


@dataclass(frozen=True)
class GBDTParams:
    """Hyper-parameters (XGBoost naming)."""

    n_estimators: int = 200
    learning_rate: float = 0.1
    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    reg_alpha: float = 0.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample_bytree: float = 1.0
    max_bins: int = 64
    min_samples_leaf: int = 1
    random_state: int = 0

    def validate(self) -> "GBDTParams":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < self.colsample_bytree <= 1.0:
            raise ValueError("colsample_bytree must be in (0, 1]")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 2 <= self.max_bins <= 254:
            raise ValueError("max_bins must be in [2, 254]")
        return self


@dataclass
class _FitState:
    """Artifacts produced by :meth:`GradientBoostedClassifier.fit`."""

    binner: HistogramBinner
    trees: list[RegressionTree]
    base_margin: float
    n_features: int
    train_loss: list[float] = field(default_factory=list)
    eval_loss: list[float] = field(default_factory=list)
    best_iteration: int | None = None
    #: Lazily-built concatenated node arrays for batched inference.
    flat: FlatEnsemble | None = None


class GradientBoostedClassifier:
    """Binary classifier trained with second-order gradient boosting.

    Predicted probability is ``sigmoid(base_margin + sum_t tree_t(x))``
    where each tree's leaf values already include the learning-rate
    shrinkage (which keeps margins exactly additive — the property TreeSHAP
    relies on).

    Parameters mirror XGBoost.  ``early_stopping_rounds`` (with an
    ``eval_set`` passed to :meth:`fit`) stops when validation log-loss has
    not improved for that many rounds and truncates to the best iteration.
    """

    def __init__(self, params: GBDTParams | None = None, **overrides):
        base = params or GBDTParams()
        if overrides:
            base = GBDTParams(**{**base.__dict__, **overrides})
        self.params = base.validate()
        self._state: _FitState | None = None

    # -- training ---------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping_rounds: int | None = None,
        *,
        binner: HistogramBinner | None = None,
    ) -> "GradientBoostedClassifier":
        """Fit the ensemble on float features (NaN = missing) and 0/1 labels.

        ``binner``, when given a *fitted* :class:`HistogramBinner`, is
        reused instead of fitting a fresh one — the shared-binning hook
        Bayesian-optimization tuning uses to bin the training matrix once
        across all trials.  In that case ``X`` (and the eval-set features)
        may also be passed as pre-binned uint8 codes from
        ``binner.transform``, skipping the transform too.  Either way the
        grown trees are identical to the unshared path, because every
        trial's fresh binner would be fitted on the same matrix.
        """
        y = np.asarray(y, dtype=np.float64)
        if binner is not None:
            if binner.split_values_ is None:
                raise RuntimeError("shared binner is not fitted")
            if binner.max_bins != self.params.max_bins:
                raise ValueError(
                    f"shared binner has max_bins={binner.max_bins}, "
                    f"params require {self.params.max_bins}"
                )
        X = np.asarray(X)
        shared = binner is not None
        pre_binned = shared and X.dtype == np.uint8
        if not pre_binned:
            X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, d) and y must be (n,) with matching n")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("y must be binary (0/1)")
        if early_stopping_rounds is not None and eval_set is None:
            raise ValueError("early_stopping_rounds requires an eval_set")
        p = self.params
        rng = np.random.default_rng(p.random_state)
        n, d = X.shape

        if binner is None:
            binner = HistogramBinner(max_bins=p.max_bins)
            Xb = binner.fit_transform(X)
        elif pre_binned:
            if d != len(binner.split_values_):
                raise ValueError(
                    f"pre-binned X has {d} columns, binner expects "
                    f"{len(binner.split_values_)}"
                )
            Xb = X
        else:
            Xb = binner.transform(X)
        pos_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        base_margin = float(np.log(pos_rate / (1.0 - pos_rate)))
        margin = np.full(n, base_margin)

        eval_binned = None
        eval_margin = None
        y_eval = None
        if eval_set is not None:
            X_eval = np.asarray(eval_set[0])
            y_eval = np.asarray(eval_set[1], dtype=np.float64)
            if X_eval.dtype == np.uint8 and shared:
                if X_eval.ndim != 2 or X_eval.shape[1] != len(binner.split_values_):
                    raise ValueError(
                        f"pre-binned eval X has shape {X_eval.shape}, binner "
                        f"expects (n, {len(binner.split_values_)})"
                    )
                eval_binned = X_eval
            else:
                eval_binned = binner.transform(
                    np.asarray(X_eval, dtype=np.float64)
                )
            eval_margin = np.full(X_eval.shape[0], base_margin)

        growth = TreeGrowthParams(
            max_depth=p.max_depth,
            min_child_weight=p.min_child_weight,
            reg_lambda=p.reg_lambda,
            reg_alpha=p.reg_alpha,
            gamma=p.gamma,
            min_samples_leaf=p.min_samples_leaf,
        )
        state = _FitState(
            binner=binner, trees=[], base_margin=base_margin, n_features=d
        )
        best_eval = np.inf
        rounds_since_best = 0
        codes_cache: dict = {}

        for _ in range(p.n_estimators):
            prob = _sigmoid(margin)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-16)
            if p.subsample < 1.0:
                take = max(2, int(round(p.subsample * n)))
                rows = rng.choice(n, size=take, replace=False)
            else:
                rows = np.arange(n)
            if p.colsample_bytree < 1.0:
                take = max(1, int(round(p.colsample_bytree * d)))
                cols = np.sort(rng.choice(d, size=take, replace=False))
            else:
                cols = np.arange(d)
            # The builder hands back each trained row's leaf value for
            # free, so refreshing the training margin only ever traverses
            # the rows the tree did NOT train on (none, without
            # subsampling).
            pred = np.empty(n)
            tree = grow_tree(
                Xb,
                binner,
                grad,
                hess,
                rows,
                cols,
                growth,
                train_pred_out=pred,
                codes_cache=codes_cache,
            )
            tree.values *= p.learning_rate
            state.trees.append(tree)
            if rows.size == n:
                margin += pred * p.learning_rate
            else:
                held_out = np.ones(n, dtype=bool)
                held_out[rows] = False
                margin[rows] += pred[rows] * p.learning_rate
                margin[held_out] += tree.predict_binned(Xb[held_out])
            state.train_loss.append(_logloss(y, _sigmoid(margin)))
            if eval_binned is not None:
                eval_margin += tree.predict_binned(eval_binned)
                loss = _logloss(y_eval, _sigmoid(eval_margin))
                state.eval_loss.append(loss)
                if loss < best_eval - 1e-9:
                    best_eval = loss
                    state.best_iteration = len(state.trees)
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (
                        early_stopping_rounds is not None
                        and rounds_since_best >= early_stopping_rounds
                    ):
                        break
        if early_stopping_rounds is not None and state.best_iteration is not None:
            state.trees = state.trees[: state.best_iteration]
        self._state = state
        return self

    # -- reconstruction ---------------------------------------------------

    @classmethod
    def from_components(
        cls,
        params: GBDTParams,
        binner: HistogramBinner,
        trees: list[RegressionTree],
        base_margin: float,
        n_features: int,
        flat: FlatEnsemble | None = None,
    ) -> "GradientBoostedClassifier":
        """Assemble a fitted classifier from its persisted components.

        The artifact loader (:mod:`repro.serve.artifacts`) uses this to
        rebuild a classifier without pickling: ``binner`` must be fitted,
        ``trees`` carry shrunk leaf values, and ``flat``, when given,
        seeds the cached flat ensemble directly (it must describe the
        same trees).  Loss curves and early-stopping state are training
        history and are not restored.
        """
        if binner.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        clf = cls(params)
        clf._state = _FitState(
            binner=binner,
            trees=list(trees),
            base_margin=float(base_margin),
            n_features=int(n_features),
            flat=flat,
        )
        return clf

    # -- inference --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    @property
    def binner(self) -> HistogramBinner:
        """The fitted histogram binner (quantizer for the binned path)."""
        return self._require_fitted().binner

    def _require_fitted(self) -> _FitState:
        if self._state is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._state

    @property
    def trees(self) -> list[RegressionTree]:
        """The fitted trees (leaf values include shrinkage)."""
        return self._require_fitted().trees

    @property
    def flat_ensemble(self) -> FlatEnsemble:
        """All trees as one set of concatenated node arrays (cached).

        Inference and TreeSHAP run off these parallel arrays instead of
        looping over :class:`RegressionTree` objects per prediction.
        """
        state = self._require_fitted()
        if state.flat is None:
            state.flat = FlatEnsemble.from_trees(state.trees)
        return state.flat

    @property
    def base_margin(self) -> float:
        """Additive bias (log-odds of the training base rate)."""
        return self._require_fitted().base_margin

    @property
    def n_features(self) -> int:
        return self._require_fitted().n_features

    @property
    def train_loss_curve(self) -> list[float]:
        return list(self._require_fitted().train_loss)

    @property
    def eval_loss_curve(self) -> list[float]:
        return list(self._require_fitted().eval_loss)

    def predict_margin(self, X: np.ndarray, *, binned: bool = False) -> np.ndarray:
        """Raw additive score (log-odds) per row.

        Evaluated through the flat ensemble: one batched (rows x trees)
        frontier traversal instead of a Python loop over trees, with
        bitwise-identical output.  ``binned=True`` routes through the
        uint8 binned path instead (see :mod:`repro.ml.tree`): ``X`` may
        be float rows (quantized by the binner fitted during training) or
        pre-binned uint8 codes from that binner's ``transform`` — the
        margins are bitwise identical to the float path either way.
        """
        state = self._require_fitted()
        X = np.asarray(X) if binned else np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != state.n_features:
            raise ValueError(
                f"X must be (n, {state.n_features}), got {np.shape(X)}"
            )
        if binned:
            return self.flat_ensemble.predict_margin(
                X, base_margin=state.base_margin, binned=True, binner=state.binner
            )
        return self.flat_ensemble.predict_margin(X, base_margin=state.base_margin)

    def predict_proba(self, X: np.ndarray, *, binned: bool = False) -> np.ndarray:
        """Probability of the positive class per row."""
        return _sigmoid(self.predict_margin(X, binned=binned))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at a probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Gain-based importances, normalized to sum to one.

        Negative per-node gains are clipped before accumulation, matching
        :meth:`RegressionTree.feature_gains`; the sum runs over the flat
        ensemble's concatenated node arrays in one ``bincount``.
        """
        state = self._require_fitted()
        gains = self.flat_ensemble.feature_gains(state.n_features)
        total = gains.sum()
        return gains / total if total > 0 else gains
