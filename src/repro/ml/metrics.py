"""Binary-classification metrics used throughout the evaluation.

Textbook implementations (no scikit-learn in this environment) of the
quantities the paper reports: confusion matrices, precision/recall/F1,
ROC curves and ROC AUC, plus a classification-report helper shaped like the
paper's Tables 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "accuracy_score",
    "roc_curve",
    "roc_auc_score",
    "BinaryClassificationReport",
    "classification_report",
]


def _validate(y_true: np.ndarray, y_other: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_other = np.asarray(y_other)
    if y_true.shape != y_other.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_other.shape}")
    if y_true.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if y_true.size == 0:
        raise ValueError("empty input")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must be binary (0/1)")
    return y_true.astype(np.int64), y_other


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]``.

    >>> confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1]).tolist()
    [[1, 1], [0, 2]]
    """
    y_true, y_pred = _validate(np.asarray(y_true), np.asarray(y_pred))
    if not np.isin(y_pred, (0, 1)).all():
        raise ValueError("y_pred must be binary (0/1)")
    y_pred = y_pred.astype(np.int64)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Precision for the given positive class (0.0 when no predictions)."""
    cm = confusion_matrix(y_true, y_pred)
    if positive == 1:
        tp, fp = cm[1, 1], cm[0, 1]
    else:
        tp, fp = cm[0, 0], cm[1, 0]
    return float(tp / (tp + fp)) if tp + fp else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Recall for the given positive class (0.0 when no positives exist)."""
    cm = confusion_matrix(y_true, y_pred)
    if positive == 1:
        tp, fn = cm[1, 1], cm[1, 0]
    else:
        tp, fn = cm[0, 0], cm[0, 1]
    return float(tp / (tp + fn)) if tp + fn else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    return 2.0 * p * r / (p + r) if p + r else 0.0


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    cm = confusion_matrix(y_true, y_pred)
    return float((cm[0, 0] + cm[1, 1]) / cm.sum())


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points: (fpr, tpr, thresholds), thresholds descending.

    Consecutive points with identical scores are collapsed, matching the
    conventional construction.
    """
    y_true, y_score = _validate(np.asarray(y_true), np.asarray(y_score, dtype=float))
    order = np.argsort(-y_score, kind="mergesort")
    y_sorted = y_true[order]
    s_sorted = y_score[order]
    # Indices where the score changes (keep the last of each tie group).
    distinct = np.where(np.diff(s_sorted))[0]
    idx = np.r_[distinct, y_true.size - 1]
    tps = np.cumsum(y_sorted)[idx]
    fps = (idx + 1) - tps
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    tpr = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps, dtype=float)
    fpr = np.r_[0.0, fpr]
    tpr = np.r_[0.0, tpr]
    thresholds = np.r_[np.inf, s_sorted[idx]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (tie-aware).

    >>> roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
    1.0
    """
    y_true, y_score = _validate(np.asarray(y_true), np.asarray(y_score, dtype=float))
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires both classes present")
    ranks = _rankdata(y_score)
    rank_sum = float(ranks[y_true == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def _rankdata(a: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(a, kind="mergesort")
    ranks = np.empty(a.size, dtype=float)
    sorted_a = a[order]
    i = 0
    while i < a.size:
        j = i
        while j + 1 < a.size and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


@dataclass(frozen=True)
class BinaryClassificationReport:
    """Counts and derived rates for one evaluated slice.

    The paper's convention (Appendix B): *positive* = the model predicts the
    claim is suspicious/unserved (would fail a challenge).
    """

    tn: int
    fp: int
    fn: int
    tp: int

    @property
    def total(self) -> int:
        return self.tn + self.fp + self.fn + self.tp

    @property
    def accuracy(self) -> float:
        return (self.tn + self.tp) / self.total if self.total else 0.0

    @property
    def precision_pos(self) -> float:
        return self.tp / (self.tp + self.fp) if self.tp + self.fp else 0.0

    @property
    def recall_pos(self) -> float:
        return self.tp / (self.tp + self.fn) if self.tp + self.fn else 0.0

    @property
    def precision_neg(self) -> float:
        return self.tn / (self.tn + self.fn) if self.tn + self.fn else 0.0

    @property
    def recall_neg(self) -> float:
        return self.tn / (self.tn + self.fp) if self.tn + self.fp else 0.0

    @property
    def f1_pos(self) -> float:
        p, r = self.precision_pos, self.recall_pos
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def f1_neg(self) -> float:
        p, r = self.precision_neg, self.recall_neg
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def f1_macro(self) -> float:
        return (self.f1_pos + self.f1_neg) / 2.0

    def class_percentages(self) -> dict[str, float]:
        """Percentage of observations per outcome class (paper Tables 7/8)."""
        total = max(self.total, 1)
        return {
            "TN": 100.0 * self.tn / total,
            "TP": 100.0 * self.tp / total,
            "FN": 100.0 * self.fn / total,
            "FP": 100.0 * self.fp / total,
        }


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray
) -> BinaryClassificationReport:
    """Build a :class:`BinaryClassificationReport` from labels/predictions."""
    cm = confusion_matrix(y_true, y_pred)
    return BinaryClassificationReport(
        tn=int(cm[0, 0]), fp=int(cm[0, 1]), fn=int(cm[1, 0]), tp=int(cm[1, 1])
    )
