"""Exact TreeSHAP for the GBDT ensemble (paper Appendix E).

Implements Lundberg & Lee's polynomial-time exact SHAP algorithm for tree
ensembles.  For every row, the feature attributions satisfy the additivity
identity::

    expected_value + sum_f phi[f] == model.predict_margin(x)

which the test suite verifies by property.  The module also provides the
two summaries the paper's Appendix E figures use: mean-|SHAP| feature
rankings (Fig. 10) and per-prediction waterfalls (Fig. 11).

The per-(row, tree) recursion walks the model's
:class:`~repro.ml.tree.FlatEnsemble` — the concatenated node arrays
shared with batched inference — addressing nodes by global id instead of
re-walking per-tree structures, and the ensemble expectation comes from
the flat arrays' single reverse scan
(:meth:`~repro.ml.tree.FlatEnsemble.expected_values`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.gbdt import GradientBoostedClassifier
from repro.ml.tree import FlatEnsemble, RegressionTree

__all__ = [
    "SHAPExplanation",
    "shap_values",
    "tree_expected_value",
    "summary_ranking",
    "waterfall",
]


@dataclass(frozen=True)
class SHAPExplanation:
    """SHAP attributions for a batch of rows.

    ``values[i, f]`` is the contribution of feature ``f`` to row ``i``'s
    margin relative to ``expected_value``.
    """

    values: np.ndarray
    expected_value: float
    feature_names: tuple[str, ...] | None = None

    def margin(self, i: int) -> float:
        """Reconstructed margin for row ``i`` (additivity identity)."""
        return float(self.expected_value + self.values[i].sum())


def tree_expected_value(tree: RegressionTree) -> float:
    """Cover-weighted mean leaf value (the tree's output expectation)."""
    memo: dict[int, float] = {}

    def expect(node: int) -> float:
        if node in memo:
            return memo[node]
        if tree.is_leaf(node):
            value = float(tree.values[node])
        else:
            left = int(tree.children_left[node])
            right = int(tree.children_right[node])
            c = float(tree.cover[node])
            if c <= 0:
                value = 0.5 * (expect(left) + expect(right))
            else:
                value = (
                    float(tree.cover[left]) * expect(left)
                    + float(tree.cover[right]) * expect(right)
                ) / c
        memo[node] = value
        return value

    return expect(0)


def _extend(
    f: list[int], z: list[float], o: list[float], w: list[float],
    pz: float, po: float, pi: int,
) -> None:
    l = len(f)
    f.append(pi)
    z.append(pz)
    o.append(po)
    w.append(1.0 if l == 0 else 0.0)
    for i in range(l - 1, -1, -1):
        w[i + 1] += po * w[i] * (i + 1) / (l + 1)
        w[i] = pz * w[i] * (l - i) / (l + 1)


def _unwind(
    f: list[int], z: list[float], o: list[float], w: list[float], i: int
) -> None:
    l = len(f) - 1
    n = w[l]
    one, zero = o[i], z[i]
    for j in range(l - 1, -1, -1):
        if one != 0:
            t = w[j]
            w[j] = n * (l + 1) / ((j + 1) * one)
            n = t - w[j] * zero * (l - j) / (l + 1)
        else:
            w[j] = w[j] * (l + 1) / (zero * (l - j))
    for j in range(i, l):
        f[j] = f[j + 1]
        z[j] = z[j + 1]
        o[j] = o[j + 1]
    f.pop()
    z.pop()
    o.pop()
    w.pop()


def _unwound_sum(
    z: list[float], o: list[float], w: list[float], i: int
) -> float:
    l = len(w) - 1
    one, zero = o[i], z[i]
    total = 0.0
    if one != 0:
        next_one = w[l]
        for j in range(l - 1, -1, -1):
            tmp = next_one * (l + 1) / ((j + 1) * one)
            total += tmp
            next_one = w[j] - tmp * zero * (l - j) / (l + 1)
    elif zero != 0:
        for j in range(l - 1, -1, -1):
            total += w[j] / (zero * (l - j) / (l + 1))
    return total


def _tree_shap_row(
    ensemble: FlatEnsemble, root: int, x: np.ndarray, phi: np.ndarray
) -> None:
    """Accumulate one tree's SHAP contributions for one row into ``phi``.

    Walks the flat ensemble arrays directly by global node id — the same
    arrays batched inference routes through — so no per-tree structure is
    rebuilt per row.
    """
    feature = ensemble.feature
    threshold = ensemble.threshold
    children_left = ensemble.children_left
    children_right = ensemble.children_right
    default_left = ensemble.default_left
    values = ensemble.values
    cover = ensemble.cover

    def recurse(
        node: int,
        f: list[int], z: list[float], o: list[float], w: list[float],
        pz: float, po: float, pi: int,
    ) -> None:
        f, z, o, w = list(f), list(z), list(o), list(w)
        _extend(f, z, o, w, pz, po, pi)
        left = int(children_left[node])
        if left < 0:
            leaf_value = float(values[node])
            for i in range(1, len(f)):
                scale = _unwound_sum(z, o, w, i)
                phi[f[i]] += scale * (o[i] - z[i]) * leaf_value
            return
        right = int(children_right[node])
        value = x[feature[node]]
        # Missing means non-finite, matching FlatEnsemble inference, so the
        # additivity identity holds for +-inf inputs too.
        if not np.isfinite(value):
            go_left = bool(default_left[node])
        else:
            go_left = bool(value <= threshold[node])
        hot, cold = (left, right) if go_left else (right, left)
        split_feature = int(feature[node])
        iz, io = 1.0, 1.0
        for k in range(1, len(f)):
            if f[k] == split_feature:
                iz, io = z[k], o[k]
                _unwind(f, z, o, w, k)
                break
        c = float(cover[node])
        hot_frac = float(cover[hot]) / c if c > 0 else 0.5
        cold_frac = float(cover[cold]) / c if c > 0 else 0.5
        recurse(hot, f, z, o, w, iz * hot_frac, io, split_feature)
        recurse(cold, f, z, o, w, iz * cold_frac, 0.0, split_feature)

    recurse(root, [], [], [], [], 1.0, 1.0, -1)


def shap_values(
    model: GradientBoostedClassifier,
    X: np.ndarray,
    feature_names: tuple[str, ...] | list[str] | None = None,
) -> SHAPExplanation:
    """Exact SHAP values (margin space) for every row of ``X``.

    >>> # sum of contributions reconstructs the margin:
    >>> # expl.expected_value + expl.values[i].sum() == model.predict_margin(X)[i]
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != model.n_features:
        raise ValueError(f"X must be (n, {model.n_features})")
    phi = np.zeros_like(X, dtype=np.float64)
    ensemble = model.flat_ensemble
    for root in ensemble.roots:
        for i in range(X.shape[0]):
            _tree_shap_row(ensemble, int(root), X[i], phi[i])
    expected = model.base_margin + sum(
        float(v) for v in ensemble.expected_values()
    )
    names = tuple(feature_names) if feature_names is not None else None
    if names is not None and len(names) != X.shape[1]:
        raise ValueError("feature_names length must match feature count")
    return SHAPExplanation(values=phi, expected_value=float(expected), feature_names=names)


def summary_ranking(
    explanation: SHAPExplanation, top_k: int | None = None
) -> list[tuple[str, float, float]]:
    """Feature ranking for a SHAP summary plot (paper Fig. 10).

    Returns ``(name, mean_abs_shap, direction)`` per feature, sorted by
    importance.  ``direction`` is the Pearson-style sign statistic between a
    feature's SHAP value and its own mean-|SHAP| magnitude — positive means
    larger SHAP values push toward the *suspicious* class.
    """
    values = explanation.values
    mean_abs = np.abs(values).mean(axis=0)
    mean_signed = values.mean(axis=0)
    order = np.argsort(-mean_abs)
    if top_k is not None:
        order = order[:top_k]
    names = explanation.feature_names or tuple(
        f"f{i}" for i in range(values.shape[1])
    )
    return [(names[i], float(mean_abs[i]), float(mean_signed[i])) for i in order]


def waterfall(
    explanation: SHAPExplanation, row: int, top_k: int = 10
) -> list[tuple[str, float]]:
    """Per-prediction contribution breakdown (paper Fig. 11).

    Returns the ``top_k`` largest-|contribution| features for one row plus a
    residual "(other features)" entry, ordered by |contribution| descending.
    """
    values = explanation.values[row]
    names = explanation.feature_names or tuple(
        f"f{i}" for i in range(values.shape[0])
    )
    order = np.argsort(-np.abs(values))
    rows = [(names[i], float(values[i])) for i in order[:top_k]]
    rest = float(values[order[top_k:]].sum()) if values.size > top_k else 0.0
    if order.size > top_k:
        rows.append(("(other features)", rest))
    return rows
