"""Histogram-based regression trees for gradient boosting.

This is the tree learner underneath :mod:`repro.ml.gbdt`, re-implementing
the core of XGBoost (Chen & Guestrin, KDD'16) that the paper relies on:

* quantile histogram binning (``max_bins`` buckets per feature);
* second-order split gain with L2 (``reg_lambda``), L1 (``reg_alpha``) and
  minimum-gain (``gamma``) regularization;
* *sparsity-aware* splits: missing values (NaN) learn a per-node default
  direction by trying both assignments during split search;
* per-node cover (hessian mass) retained for TreeSHAP.

Trees are stored as flat parallel arrays so prediction and SHAP can run
without Python object traversal per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HistogramBinner", "RegressionTree", "TreeGrowthParams"]

#: Bin code reserved for missing values.
MISSING_BIN = 255


class HistogramBinner:
    """Quantile binning of a float feature matrix into uint8 codes.

    Bin ``b`` of feature ``f`` contains values ``x`` with
    ``split_values[f][b-1] < x <= split_values[f][b]`` (open below for b=0).
    NaN maps to :data:`MISSING_BIN`.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 254:
            raise ValueError(f"max_bins must be in [2, 254], got {max_bins}")
        self.max_bins = max_bins
        self.split_values_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "HistogramBinner":
        """Choose per-feature split candidates from value quantiles."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        splits = []
        for f in range(X.shape[1]):
            col = X[:, f]
            finite = col[np.isfinite(col)]
            if finite.size == 0:
                splits.append(np.empty(0))
                continue
            uniq = np.unique(finite)
            if uniq.size <= self.max_bins - 1:
                # Split between consecutive distinct values.
                cuts = (uniq[:-1] + uniq[1:]) / 2.0 if uniq.size > 1 else np.empty(0)
            else:
                qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(finite, qs))
            splits.append(cuts.astype(np.float64))
        self.split_values_ = splits
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map a float matrix to uint8 bin codes (NaN -> MISSING_BIN)."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape, dtype=np.uint8)
        for f, cuts in enumerate(self.split_values_):
            col = X[:, f]
            binned = np.searchsorted(cuts, col, side="left").astype(np.uint8)
            binned[~np.isfinite(col)] = MISSING_BIN
            out[:, f] = binned
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of occupied value bins for a feature (excluding missing)."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.split_values_[feature]) + 1

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Numeric threshold such that ``x <= threshold`` means bin <= bin_index."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        return float(self.split_values_[feature][bin_index])


@dataclass(frozen=True)
class TreeGrowthParams:
    """Regularization and structure limits for one tree."""

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    reg_alpha: float = 0.0
    gamma: float = 0.0
    min_samples_leaf: int = 1


@dataclass
class RegressionTree:
    """A fitted tree in flat-array form.

    ``children_left[i] == -1`` marks node ``i`` as a leaf; leaves carry
    ``values[i]``.  Internal nodes route ``x[feature[i]] <= threshold[i]``
    left, with NaN following ``default_left[i]``.
    """

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    threshold: np.ndarray = field(default_factory=lambda: np.empty(0))
    threshold_bin: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    children_left: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    children_right: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    default_left: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    cover: np.ndarray = field(default_factory=lambda: np.empty(0))
    gain: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    def is_leaf(self, node: int) -> bool:
        return self.children_left[node] < 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the tree on raw float rows (NaN = missing)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        out = np.empty(X.shape[0])
        # Vectorized level traversal: route index masks through the tree.
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.is_leaf(node):
                out[idx] = self.values[node]
                continue
            col = X[idx, self.feature[node]]
            missing = ~np.isfinite(col)
            go_left = (col <= self.threshold[node]) & ~missing
            if self.default_left[node]:
                go_left |= missing
            stack.append((int(self.children_left[node]), idx[go_left]))
            stack.append((int(self.children_right[node]), idx[~go_left]))
        return out

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Evaluate the tree on pre-binned uint8 rows (training fast path)."""
        out = np.empty(Xb.shape[0])
        stack = [(0, np.arange(Xb.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.is_leaf(node):
                out[idx] = self.values[node]
                continue
            col = Xb[idx, self.feature[node]]
            missing = col == MISSING_BIN
            go_left = (col <= self.threshold_bin[node]) & ~missing
            if self.default_left[node]:
                go_left |= missing
            stack.append((int(self.children_left[node]), idx[go_left]))
            stack.append((int(self.children_right[node]), idx[~go_left]))
        return out

    def feature_gains(self, n_features: int) -> np.ndarray:
        """Total split gain credited to each feature."""
        gains = np.zeros(n_features)
        for node in range(self.n_nodes):
            if not self.is_leaf(node):
                gains[self.feature[node]] += max(0.0, float(self.gain[node]))
        return gains


def _leaf_weight(g: float, h: float, params: TreeGrowthParams) -> float:
    """Optimal leaf weight with L1 soft-thresholding and L2 shrinkage."""
    if params.reg_alpha > 0:
        if g > params.reg_alpha:
            g = g - params.reg_alpha
        elif g < -params.reg_alpha:
            g = g + params.reg_alpha
        else:
            g = 0.0
    return -g / (h + params.reg_lambda)


def _score(g: np.ndarray, h: np.ndarray, params: TreeGrowthParams) -> np.ndarray:
    """Structure-score term G^2 / (H + lambda), vectorized, alpha-aware."""
    g = np.asarray(g, dtype=np.float64)
    if params.reg_alpha > 0:
        g = np.sign(g) * np.maximum(0.0, np.abs(g) - params.reg_alpha)
    return g * g / (h + params.reg_lambda)


class _TreeBuilder:
    """Grows one tree depth-first on binned data with g/h targets."""

    def __init__(
        self,
        Xb: np.ndarray,
        binner: HistogramBinner,
        grad: np.ndarray,
        hess: np.ndarray,
        params: TreeGrowthParams,
        feature_indices: np.ndarray,
    ):
        self.Xb = Xb
        self.binner = binner
        self.grad = grad
        self.hess = hess
        self.params = params
        self.feature_indices = feature_indices
        self.nodes: list[dict] = []

    def build(self, row_indices: np.ndarray) -> RegressionTree:
        self._grow(row_indices, depth=0)
        return self._to_arrays()

    def _new_node(self) -> int:
        self.nodes.append(
            {
                "feature": -1,
                "threshold": np.nan,
                "threshold_bin": -1,
                "left": -1,
                "right": -1,
                "default_left": True,
                "value": 0.0,
                "cover": 0.0,
                "gain": 0.0,
            }
        )
        return len(self.nodes) - 1

    def _grow(self, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        g_sum = float(self.grad[idx].sum())
        h_sum = float(self.hess[idx].sum())
        record = self.nodes[node]
        record["cover"] = h_sum
        params = self.params
        if (
            depth >= params.max_depth
            or idx.size < 2 * params.min_samples_leaf
            or h_sum < 2 * params.min_child_weight
        ):
            record["value"] = _leaf_weight(g_sum, h_sum, params)
            return node
        best = self._best_split(idx, g_sum, h_sum)
        if best is None:
            record["value"] = _leaf_weight(g_sum, h_sum, params)
            return node
        feat, bin_idx, default_left, gain = best
        col = self.Xb[idx, feat]
        missing = col == MISSING_BIN
        go_left = (col <= bin_idx) & ~missing
        if default_left:
            go_left |= missing
        left_idx, right_idx = idx[go_left], idx[~go_left]
        record["feature"] = int(feat)
        record["threshold"] = self.binner.threshold_value(feat, bin_idx)
        record["threshold_bin"] = int(bin_idx)
        record["default_left"] = bool(default_left)
        record["gain"] = float(gain)
        record["left"] = self._grow(left_idx, depth + 1)
        record["right"] = self._grow(right_idx, depth + 1)
        return node

    def _best_split(
        self, idx: np.ndarray, g_sum: float, h_sum: float
    ) -> tuple[int, int, bool, float] | None:
        params = self.params
        parent_score = float(_score(np.array([g_sum]), np.array([h_sum]), params)[0])
        best_gain = 0.0
        best: tuple[int, int, bool, float] | None = None
        g_rows = self.grad[idx]
        h_rows = self.hess[idx]
        for feat in self.feature_indices:
            nbins = self.binner.n_bins(feat)
            if nbins < 2:
                continue
            col = self.Xb[idx, feat].astype(np.int64)
            g_hist = np.bincount(col, weights=g_rows, minlength=256)
            h_hist = np.bincount(col, weights=h_rows, minlength=256)
            n_hist = np.bincount(col, minlength=256)
            g_miss, h_miss = g_hist[MISSING_BIN], h_hist[MISSING_BIN]
            n_miss = n_hist[MISSING_BIN]
            cg = np.cumsum(g_hist[:nbins])[:-1]
            ch = np.cumsum(h_hist[:nbins])[:-1]
            cn = np.cumsum(n_hist[:nbins])[:-1]
            for default_left in (False, True):
                gl = cg + (g_miss if default_left else 0.0)
                hl = ch + (h_miss if default_left else 0.0)
                nl = cn + (n_miss if default_left else 0)
                gr = g_sum - gl
                hr = h_sum - hl
                nr = idx.size - nl
                valid = (
                    (hl >= params.min_child_weight)
                    & (hr >= params.min_child_weight)
                    & (nl >= params.min_samples_leaf)
                    & (nr >= params.min_samples_leaf)
                )
                if not valid.any():
                    continue
                gains = 0.5 * (
                    _score(gl, hl, params) + _score(gr, hr, params) - parent_score
                ) - params.gamma
                gains[~valid] = -np.inf
                b = int(np.argmax(gains))
                if gains[b] > best_gain:
                    best_gain = float(gains[b])
                    best = (int(feat), b, default_left, best_gain)
                # With no missing values both directions are identical; skip
                # the redundant second pass.
                if n_miss == 0:
                    break
        return best

    def _to_arrays(self) -> RegressionTree:
        n = len(self.nodes)
        tree = RegressionTree(
            feature=np.array([r["feature"] for r in self.nodes], dtype=np.int32),
            threshold=np.array([r["threshold"] for r in self.nodes]),
            threshold_bin=np.array(
                [r["threshold_bin"] for r in self.nodes], dtype=np.int32
            ),
            children_left=np.array([r["left"] for r in self.nodes], dtype=np.int32),
            children_right=np.array([r["right"] for r in self.nodes], dtype=np.int32),
            default_left=np.array([r["default_left"] for r in self.nodes], dtype=bool),
            values=np.array([r["value"] for r in self.nodes]),
            cover=np.array([r["cover"] for r in self.nodes]),
            gain=np.array([r["gain"] for r in self.nodes]),
        )
        assert tree.n_nodes == n
        return tree


def grow_tree(
    Xb: np.ndarray,
    binner: HistogramBinner,
    grad: np.ndarray,
    hess: np.ndarray,
    row_indices: np.ndarray,
    feature_indices: np.ndarray,
    params: TreeGrowthParams,
) -> RegressionTree:
    """Grow a single regression tree on binned data (see module docstring)."""
    builder = _TreeBuilder(Xb, binner, grad, hess, params, feature_indices)
    return builder.build(row_indices)
