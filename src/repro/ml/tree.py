"""Histogram-based regression trees for gradient boosting.

This is the tree learner underneath :mod:`repro.ml.gbdt`, re-implementing
the core of XGBoost (Chen & Guestrin, KDD'16) that the paper relies on:

* quantile histogram binning (``max_bins`` buckets per feature);
* second-order split gain with L2 (``reg_lambda``), L1 (``reg_alpha``) and
  minimum-gain (``gamma``) regularization;
* *sparsity-aware* splits: missing values (NaN) learn a per-node default
  direction by trying both assignments during split search;
* per-node cover (hessian mass) retained for TreeSHAP.

Trees are stored as flat parallel arrays so prediction and SHAP can run
without Python object traversal per node.

========================  ====================================================
Surface                   Role
========================  ====================================================
:class:`HistogramBinner`  quantile cuts; float matrix -> uint8 bin codes
:func:`grow_tree`         one tree from binned data + gradients/hessians
:class:`RegressionTree`   flat per-tree arrays; reference predict paths
:class:`FlatEnsemble`     all trees concatenated; batched float traversal,
                          binned traversal (:meth:`~FlatEnsemble.bind_binner`
                          + ``predict_margin(..., binned=True)``), TreeSHAP
                          substrate, expectations, gains
========================  ====================================================

Kernel design (the NumPy hot path)
----------------------------------

The training and inference hot paths are fully vectorized:

**Fused multi-feature histograms.**  Split finding bins every active
feature of a node in *one* ``np.bincount`` call: bin codes are flattened
to ``feature_slot * 256 + bin_code`` (``MISSING_BIN`` = 255 keeps the
stride a constant 256) and the gradient/hessian/count histograms of all
features come back as ``(n_features, 256)`` matrices from a single pass
over the node's rows.  The per-feature-offset code matrix is flattened
row-major (a free view of the C-contiguous gather); for any fixed
feature the codes still appear in ascending row order, so each
per-feature histogram accumulates identically to — and is bitwise
identical with — the seed's per-feature ``bincount`` loop.

**Sibling subtraction.**  A node's histogram is the elementwise sum of
its children's histograms, so after a split only the *smaller* child's
histogram is computed from rows; the larger child's is derived as
``parent_hist - small_child_hist`` (the LightGBM trick).  This roughly
halves histogram work per level.  Derived histograms can differ from
directly-computed ones in the last float ulp (bins whose derived count is
zero are cleared, so empty bins stay exact); the only observable effect
is at *exact gain ties*, where the perturbed argmax may select the other
equally-optimal split.  Disable with ``sibling_subtraction=False`` for
full bitwise parity with the seed kernels (see
:mod:`repro.ml._reference`).

**Vectorized split selection.**  Candidate gains for *all* (feature,
missing-direction, bin) triples are evaluated as one ``(F, 2, B-1)``
tensor and selected with a single flat ``argmax``.  C-order flattening
makes first-maximum tie-breaking identical to the seed's sequential scan
(feature order, then missing-goes-right before missing-goes-left, then
lowest bin).

**Flat ensemble inference.**  :class:`FlatEnsemble` concatenates every
tree's node arrays into one set of parallel arrays (children re-indexed
to global node ids) and routes all (row, tree) pairs simultaneously with
a frontier traversal: ``max_depth`` vectorized gather/where steps replace
the per-tree Python loop.  TreeSHAP (:mod:`repro.ml.shap`) walks the same
flat arrays.

**Binned batch inference.**  The float frontier traversal is
gather-bound: every level gathers six node arrays plus a float64 feature
column for *all* (row, tree) pairs, finished or not.
:meth:`FlatEnsemble.bind_binner` pre-quantizes every split threshold
against a fitted :class:`HistogramBinner` (validating that each
threshold is exactly one of the binner's cut values, so routing cannot
drift) and compiles each node into one packed int64 *route word*
(comparison bound, code-matrix column, right-child offset — see the
method docstring).  ``predict_margin(X, binned=True, binner=...)`` then
traverses uint8 bin codes with **two** gathers per level (route word +
code), missing-value handling folded into the column choice via a
pre-incremented copy of the code matrix, leaves self-looping as all-zero
words, and per-depth active-set compaction once enough (row, tree) pairs
have finished.  Because ``x <= threshold`` is exactly equivalent to
``code(x) <= threshold_bin`` when the threshold is one of the binner's
cuts (and both paths send non-finite values to the node's default
direction), the binned margin is bitwise identical to the float path —
asserted by the equivalence tests and re-checked by the perf benchmark
on every run.  The payoff is in the steady state where codes are already
in hand — scoring pre-binned tuning/validation matrices, or re-scoring
one binned batch many times; binning a fresh float batch first costs
about as much as one float traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FlatEnsemble",
    "HistogramBinner",
    "RegressionTree",
    "TreeGrowthParams",
    "grow_tree",
]

#: Bin code reserved for missing values.
MISSING_BIN = 255

#: Per-feature stride of the fused histogram layout (bin codes are uint8).
_CODE_STRIDE = 256

#: Soft cap on elements materialized per fused-histogram / binning block.
_BLOCK_ELEMENTS = 1 << 22

#: Ceiling on (rows x active features) for precomputing the per-tree
#: offset-code matrix (int64 codes with the feature-slot offset already
#: added): 2^24 elements = 128 MB.  Above it, nodes fall back to the
#: gather-then-offset path so training memory stays bounded at NBM scale.
_OFFSET_CODES_MAX_ELEMENTS = 1 << 24

#: Widest padded cut matrix the broadcast binner beats per-feature
#: searchsorted on: O(n_cuts) comparisons per element wins on call
#: overhead below this, loses to O(log n_cuts) above it.
_BROADCAST_CUTS_MAX = 64

#: Row-block cap for frontier traversal: the (rows, trees) temporaries of
#: each level must stay cache-resident or the batched gathers lose to the
#: per-tree loop's contiguous column reads (measured crossover ~2^18).
_TRAVERSAL_BLOCK_ELEMENTS = 1 << 16

#: Row block for the cut-accumulation binning loop: one block of float64
#: rows (~0.5 MB at 128 features) stays L2-resident across all cut
#: passes.
_BINNING_BLOCK_ROWS = 512

#: Compact the binned-traversal frontier when the live fraction of
#: (row, tree) pairs drops below this (compaction costs a few selects,
#: so it must drop enough dead pairs to pay for itself).
_COMPACTION_THRESHOLD = 0.6


class HistogramBinner:
    """Quantile binning of a float feature matrix into uint8 codes.

    Bin ``b`` of feature ``f`` contains values ``x`` with
    ``split_values[f][b-1] < x <= split_values[f][b]`` (open below for b=0).
    NaN maps to :data:`MISSING_BIN`.

    ``transform`` bins all features at once when cut lists are narrow
    (≤ :data:`_BROADCAST_CUTS_MAX` cuts): the per-feature cut lists are
    padded into one ``(d, max_cuts)`` matrix (padding ``+inf``) and the
    bin code of every element is the count of cuts strictly below it,
    accumulated one broadcast cut-column comparison at a time over
    cache-resident row blocks — branch-free (quantile binning is
    mispredict-bound under binary search) and bitwise-equivalent to a
    per-feature ``searchsorted`` loop.  Wide cut lists (large
    ``max_bins``) fall back to per-feature ``searchsorted``, whose
    O(log) scan wins once the O(n_cuts) comparison work grows past the
    branch misses it avoids.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 254:
            raise ValueError(f"max_bins must be in [2, 254], got {max_bins}")
        self.max_bins = max_bins
        self.split_values_: list[np.ndarray] | None = None
        self._padded_cuts: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "HistogramBinner":
        """Choose per-feature split candidates from value quantiles."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        splits = []
        for f in range(X.shape[1]):
            col = X[:, f]
            finite = col[np.isfinite(col)]
            if finite.size == 0:
                splits.append(np.empty(0))
                continue
            uniq = np.unique(finite)
            if uniq.size <= self.max_bins - 1:
                # Split between consecutive distinct values.
                cuts = (uniq[:-1] + uniq[1:]) / 2.0 if uniq.size > 1 else np.empty(0)
            else:
                qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(finite, qs))
            splits.append(cuts.astype(np.float64))
        self._set_splits(splits)
        return self

    def _set_splits(self, splits: list[np.ndarray]) -> None:
        """Install fitted cuts and rebuild the padded broadcast matrix."""
        self.split_values_ = splits
        n_cuts = max((c.size for c in splits), default=0)
        padded = np.full((len(splits), n_cuts), np.inf)
        for f, cuts in enumerate(splits):
            padded[f, : cuts.size] = cuts
        self._padded_cuts = padded

    def export_state(self) -> dict[str, np.ndarray]:
        """Fitted cuts as flat arrays (the pickle-free artifact payload).

        The ragged per-feature cut lists are packed into one float64 value
        array plus an int64 offset array (``cut_offsets[f]:cut_offsets[f+1]``
        delimits feature ``f``); :meth:`from_state` inverts the packing
        exactly, so a round-tripped binner produces bitwise-identical codes.
        """
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        sizes = [c.size for c in self.split_values_]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        values = (
            np.concatenate(self.split_values_)
            if offsets[-1]
            else np.empty(0, dtype=np.float64)
        ).astype(np.float64)
        return {
            "max_bins": np.int64(self.max_bins),
            "cut_values": values,
            "cut_offsets": offsets,
        }

    @classmethod
    def from_state(cls, state: dict) -> "HistogramBinner":
        """Rebuild a fitted binner from :meth:`export_state` arrays."""
        binner = cls(max_bins=int(state["max_bins"]))
        offsets = np.asarray(state["cut_offsets"], dtype=np.int64)
        values = np.asarray(state["cut_values"], dtype=np.float64)
        if offsets.size < 1 or offsets[0] != 0 or (np.diff(offsets) < 0).any():
            raise ValueError("cut_offsets must start at 0 and be non-decreasing")
        if offsets[-1] != values.size:
            raise ValueError(
                f"cut_offsets end at {int(offsets[-1])}, "
                f"but {values.size} cut values were provided"
            )
        binner._set_splits(
            [
                values[offsets[f] : offsets[f + 1]].copy()
                for f in range(offsets.size - 1)
            ]
        )
        return binner

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map a float matrix to uint8 bin codes (NaN -> MISSING_BIN)."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.split_values_):
            raise ValueError(
                f"X must be (n, {len(self.split_values_)}), got {np.shape(X)}"
            )
        cuts = self._padded_cuts
        n, d = X.shape
        out = np.empty((n, d), dtype=np.uint8)
        if cuts.shape[1] > _BROADCAST_CUTS_MAX:
            for f, feature_cuts in enumerate(self.split_values_):
                col = X[:, f]
                binned = np.searchsorted(feature_cuts, col, side="left")
                codes = binned.astype(np.uint8)
                codes[~np.isfinite(col)] = MISSING_BIN
                out[:, f] = codes
            return out
        # Accumulate one broadcast comparison per cut column over a
        # cache-resident row block: the bin code is the count of cuts
        # strictly below the value (== searchsorted 'left'), and the
        # (rows, d) accumulator never materializes the full
        # (rows, d, n_cuts) tensor.
        step = max(1, _BINNING_BLOCK_ROWS)
        for start in range(0, n, step):
            blk = X[start : start + step]
            codes = np.zeros(blk.shape, dtype=np.uint8)
            for j in range(cuts.shape[1]):
                codes += cuts[:, j] < blk
            codes[~np.isfinite(blk)] = MISSING_BIN
            out[start : start + step] = codes
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of occupied value bins for a feature (excluding missing)."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.split_values_[feature]) + 1

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Numeric threshold such that ``x <= threshold`` means bin <= bin_index."""
        if self.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        return float(self.split_values_[feature][bin_index])


@dataclass(frozen=True)
class TreeGrowthParams:
    """Regularization and structure limits for one tree."""

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    reg_alpha: float = 0.0
    gamma: float = 0.0
    min_samples_leaf: int = 1


@dataclass
class RegressionTree:
    """A fitted tree in flat-array form.

    ``children_left[i] == -1`` marks node ``i`` as a leaf; leaves carry
    ``values[i]``.  Internal nodes route ``x[feature[i]] <= threshold[i]``
    left, with NaN following ``default_left[i]``.  Nodes are stored in
    preorder (every child index is greater than its parent's), which the
    flat-ensemble expectation scan relies on.
    """

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    threshold: np.ndarray = field(default_factory=lambda: np.empty(0))
    threshold_bin: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    children_left: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    children_right: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    default_left: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    cover: np.ndarray = field(default_factory=lambda: np.empty(0))
    gain: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    def is_leaf(self, node: int) -> bool:
        return self.children_left[node] < 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the tree on raw float rows (NaN = missing)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        out = np.empty(X.shape[0])
        # Vectorized level traversal: route index masks through the tree.
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.is_leaf(node):
                out[idx] = self.values[node]
                continue
            col = X[idx, self.feature[node]]
            missing = ~np.isfinite(col)
            go_left = (col <= self.threshold[node]) & ~missing
            if self.default_left[node]:
                go_left |= missing
            stack.append((int(self.children_left[node]), idx[go_left]))
            stack.append((int(self.children_right[node]), idx[~go_left]))
        return out

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Evaluate the tree on pre-binned uint8 rows (training fast path)."""
        out = np.empty(Xb.shape[0])
        stack = [(0, np.arange(Xb.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.is_leaf(node):
                out[idx] = self.values[node]
                continue
            col = Xb[idx, self.feature[node]]
            missing = col == MISSING_BIN
            go_left = (col <= self.threshold_bin[node]) & ~missing
            if self.default_left[node]:
                go_left |= missing
            stack.append((int(self.children_left[node]), idx[go_left]))
            stack.append((int(self.children_right[node]), idx[~go_left]))
        return out

    def feature_gains(self, n_features: int) -> np.ndarray:
        """Total split gain credited to each feature (negatives clipped)."""
        internal = self.children_left >= 0
        if not internal.any():
            return np.zeros(n_features)
        return np.bincount(
            self.feature[internal],
            weights=np.maximum(self.gain[internal], 0.0),
            minlength=n_features,
        )


@dataclass(eq=False)
class FlatEnsemble:
    """All trees of an ensemble concatenated into parallel node arrays.

    ``children_left``/``children_right`` hold *global* node ids (leaves
    stay ``-1``); ``roots[t]`` is tree ``t``'s root id and ``offsets`` the
    node-range boundaries.  One set of arrays means batched inference can
    route every (row, tree) pair simultaneously instead of looping over
    ``RegressionTree`` objects, and TreeSHAP can walk any tree without
    per-tree reconstruction.
    """

    feature: np.ndarray
    threshold: np.ndarray
    threshold_bin: np.ndarray
    children_left: np.ndarray
    children_right: np.ndarray
    default_left: np.ndarray
    values: np.ndarray
    cover: np.ndarray
    gain: np.ndarray
    roots: np.ndarray
    offsets: np.ndarray
    #: Binner bound by :meth:`bind_binner` (packed route words, feature
    #: count, and traversal depth bound).
    _bound_binner: "HistogramBinner | None" = None
    _route: np.ndarray | None = None
    _route_n_features: int = 0
    _max_depth: int = 0

    @classmethod
    def from_trees(cls, trees: list[RegressionTree]) -> "FlatEnsemble":
        """Concatenate per-tree arrays, re-basing child ids to global ids."""
        sizes = np.array([t.n_nodes for t in trees], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

        def _cat(name: str, dtype, empty_dtype) -> np.ndarray:
            if not trees:
                return np.empty(0, dtype=empty_dtype)
            return np.concatenate([getattr(t, name) for t in trees]).astype(dtype)

        children_left = [
            np.where(t.children_left >= 0, t.children_left.astype(np.int64) + off, -1)
            for t, off in zip(trees, offsets[:-1])
        ]
        children_right = [
            np.where(t.children_right >= 0, t.children_right.astype(np.int64) + off, -1)
            for t, off in zip(trees, offsets[:-1])
        ]
        return cls(
            feature=_cat("feature", np.int64, np.int64),
            threshold=_cat("threshold", np.float64, np.float64),
            threshold_bin=_cat("threshold_bin", np.int64, np.int64),
            children_left=(
                np.concatenate(children_left) if trees else np.empty(0, np.int64)
            ),
            children_right=(
                np.concatenate(children_right) if trees else np.empty(0, np.int64)
            ),
            default_left=_cat("default_left", bool, bool),
            values=_cat("values", np.float64, np.float64),
            cover=_cat("cover", np.float64, np.float64),
            gain=_cat("gain", np.float64, np.float64),
            roots=offsets[:-1].copy(),
            offsets=offsets,
        )

    #: (name, dtype) of every array :meth:`export_arrays` emits, in order.
    EXPORT_FIELDS = (
        ("feature", np.int64),
        ("threshold", np.float64),
        ("threshold_bin", np.int64),
        ("children_left", np.int64),
        ("children_right", np.int64),
        ("default_left", bool),
        ("values", np.float64),
        ("cover", np.float64),
        ("gain", np.float64),
        ("roots", np.int64),
        ("offsets", np.int64),
    )

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The concatenated node arrays as a plain name->array dict.

        Everything inference, TreeSHAP, and gain importances need — the
        pickle-free payload :func:`repro.serve.artifacts` writes to disk.
        :meth:`from_arrays` reconstructs an ensemble whose traversals are
        bitwise identical to this one's.
        """
        return {name: getattr(self, name) for name, _ in self.EXPORT_FIELDS}

    @classmethod
    def from_arrays(cls, arrays: dict) -> "FlatEnsemble":
        """Rebuild an ensemble from :meth:`export_arrays` output.

        Validates structural sanity (array lengths, child ids in range,
        node ranges partitioned by ``offsets``) so malformed or truncated
        artifacts fail loudly instead of mis-routing traversals.
        """
        fields = {
            name: np.ascontiguousarray(np.asarray(arrays[name]), dtype=dtype)
            for name, dtype in cls.EXPORT_FIELDS
        }
        n_nodes = fields["feature"].size
        per_node = (
            "feature", "threshold", "threshold_bin", "children_left",
            "children_right", "default_left", "values", "cover", "gain",
        )
        for name in per_node:
            if fields[name].ndim != 1 or fields[name].size != n_nodes:
                raise ValueError(
                    f"ensemble array {name!r} must be 1-D with {n_nodes} "
                    f"nodes, got shape {fields[name].shape}"
                )
        offsets = fields["offsets"]
        roots = fields["roots"]
        if offsets.size != roots.size + 1:
            raise ValueError("offsets must have one more entry than roots")
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != n_nodes:
            raise ValueError("offsets must run from 0 to n_nodes")
        if (np.diff(offsets) <= 0).any():
            raise ValueError("offsets must be strictly increasing (no empty trees)")
        if not np.array_equal(roots, offsets[:-1]):
            raise ValueError("roots must equal offsets[:-1]")
        if (
            (fields["children_left"] >= 0) != (fields["children_right"] >= 0)
        ).any():
            raise ValueError("children_left/children_right leaf markers disagree")
        for side in ("children_left", "children_right"):
            child = fields[side]
            if child.max(initial=-1) >= n_nodes:
                raise ValueError(f"{side} contains out-of-range node ids")
        return cls(**fields)

    def to_trees(self) -> list[RegressionTree]:
        """Split the concatenated arrays back into per-tree objects.

        Child ids are re-localized to each tree's node range (leaves stay
        ``-1``); ``FlatEnsemble.from_trees(ensemble.to_trees())`` rebuilds
        these exact arrays, which is how artifact loading restores the
        classifier's per-tree view without pickling.
        """
        trees = []
        for t in range(self.n_trees):
            lo, hi = int(self.offsets[t]), int(self.offsets[t + 1])
            left = self.children_left[lo:hi]
            right = self.children_right[lo:hi]
            trees.append(
                RegressionTree(
                    feature=self.feature[lo:hi].astype(np.int32),
                    threshold=self.threshold[lo:hi].copy(),
                    threshold_bin=self.threshold_bin[lo:hi].astype(np.int32),
                    children_left=np.where(left >= 0, left - lo, -1).astype(np.int32),
                    children_right=np.where(right >= 0, right - lo, -1).astype(np.int32),
                    default_left=self.default_left[lo:hi].copy(),
                    values=self.values[lo:hi].copy(),
                    cover=self.cover[lo:hi].copy(),
                    gain=self.gain[lo:hi].copy(),
                )
            )
        return trees

    @property
    def n_trees(self) -> int:
        return int(self.roots.size)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    def _leaves_block(self, X: np.ndarray) -> np.ndarray:
        """Global leaf id reached by every (row, tree) pair of a block."""
        m = X.shape[0]
        cur = np.broadcast_to(self.roots, (m, self.n_trees)).copy()
        rows = np.arange(m)[:, None]
        # Frontier traversal: every iteration advances all still-internal
        # (row, tree) pairs one level; at most max-tree-depth iterations.
        for _ in range(self.n_nodes + 1):
            left = self.children_left[cur]
            internal = left >= 0
            if not internal.any():
                return cur
            feat = np.where(internal, self.feature[cur], 0)
            col = X[rows, feat]
            missing = ~np.isfinite(col)
            go_left = ((col <= self.threshold[cur]) & ~missing) | (
                self.default_left[cur] & missing
            )
            nxt = np.where(go_left, left, self.children_right[cur])
            cur = np.where(internal, nxt, cur)
        raise RuntimeError("malformed ensemble: traversal did not terminate")

    def predict_leaves(self, X: np.ndarray) -> np.ndarray:
        """(n, n_trees) global leaf ids for raw float rows (NaN = missing)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n = X.shape[0]
        if self.n_trees == 0:
            return np.empty((n, 0), dtype=np.int64)
        out = np.empty((n, self.n_trees), dtype=np.int64)
        step = max(1, _TRAVERSAL_BLOCK_ELEMENTS // max(self.n_trees, 1))
        for start in range(0, n, step):
            out[start : start + step] = self._leaves_block(X[start : start + step])
        return out

    # -- binned inference ---------------------------------------------------

    def bind_binner(self, binner: "HistogramBinner") -> None:
        """Pre-quantize split thresholds against a fitted binner.

        For every internal node with split feature ``f`` and threshold
        ``t``, finds the bin index ``k`` with ``cuts_f[k] == t``, so that
        ``x <= t``  ⇔  ``code(x) <= k`` for the binner's uint8 codes —
        an exact equivalence, not an approximation.  Raises ``ValueError``
        when a threshold is not one of the binner's cut values (i.e. the
        ensemble was not trained against this binner), because routing
        through a mismatched binner could silently diverge.

        The quantized splits are compiled into one packed int64 *route
        word* per node, so the traversal gathers a single array:

        ==========  ===========================================================
        Bits        Field
        ==========  ===========================================================
        0..8        strict comparison bound ``q2`` (``go left ⇔ code' < q2``)
        9..25       column in the doubled code matrix — ``f`` for
                    missing-goes-right nodes, ``f + d`` (the pre-incremented
                    copy, uint8 wraparound sending :data:`MISSING_BIN` to 0)
                    for missing-goes-left nodes
        26..62      offset from the node to its right child
        ==========  ===========================================================

        Leaves are the all-zero word: their comparison ``code' < 0`` is
        always false and their right-child offset is 0, so finished
        (row, tree) pairs self-loop with no masking.  (The zero word is
        unambiguous — an internal node's right child is at least two
        nodes away, so its route word is nonzero.)
        """
        if binner.split_values_ is None:
            raise RuntimeError("binner is not fitted")
        d = len(binner.split_values_)
        if d > (1 << 16):
            raise ValueError(f"binned routing supports at most 65536 features, got {d}")
        internal = self.children_left >= 0
        features = self.feature[internal]
        thresholds = self.threshold[internal]
        quantized = np.full(features.size, -1, dtype=np.int64)
        for f in np.unique(features):
            cuts = binner.split_values_[int(f)]
            sel = features == f
            t = thresholds[sel]
            if cuts.size == 0:
                raise ValueError(
                    f"feature {int(f)} has splits but the binner has no cuts "
                    "for it; bind the binner the ensemble was trained with"
                )
            k = np.searchsorted(cuts, t, side="left")
            bad = (k >= cuts.size) | (cuts[np.minimum(k, cuts.size - 1)] != t)
            if bad.any():
                raise ValueError(
                    f"feature {int(f)}: {int(bad.sum())} split threshold(s) "
                    "are not cut values of this binner; bind the binner the "
                    "ensemble was trained with"
                )
            quantized[sel] = k

        nodes = np.where(internal)[0]
        default_left = self.default_left[internal]
        # go_left ⇔ code + shift < qthr + shift + 2·0 + 1 with the shift
        # realized by column choice (see docstring); strict '<' keeps the
        # leaf word all-zero.
        q2 = quantized + 1 + default_left
        column = features.astype(np.int64) + default_left * d
        rdelta = self.children_right[internal].astype(np.int64) - nodes
        route = np.zeros(self.n_nodes, dtype=np.int64)
        route[internal] = q2 | (column << 9) | (rdelta << 26)

        # Deepest root-to-node path bounds the fixed-depth traversal loop.
        depth = 0
        frontier = self.roots[self.children_left[self.roots] >= 0]
        while frontier.size:
            depth += 1
            children = np.concatenate(
                [self.children_left[frontier], self.children_right[frontier]]
            )
            frontier = children[self.children_left[children] >= 0]

        self._bound_binner = binner
        self._route = route
        self._route_n_features = d
        self._max_depth = depth

    def _leaves_block_binned(self, Xb2: np.ndarray) -> np.ndarray:
        """Leaf ids for one block of doubled pre-binned rows (packed walk).

        ``Xb2`` is a row block of the doubled code matrix (original codes
        beside the pre-incremented copy).  Per level: one route-word
        gather, one uint8 code gather, one comparison, one child-step
        add.  When the live fraction of (row, tree) pairs drops below
        :data:`_COMPACTION_THRESHOLD`, the frontier is compacted so
        deeper levels only touch still-routing pairs.
        """
        m = Xb2.shape[0]
        T = self.n_trees
        d2 = Xb2.shape[1]
        codes = Xb2.reshape(-1)
        route = self._route
        out = np.empty(m * T, dtype=np.int64)
        pos = None  # frontier is dense until first compaction
        cur = np.tile(self.roots, m)
        base = np.repeat(np.arange(m, dtype=np.int64) * d2, T)
        for _ in range(self._max_depth):
            w = route[cur]
            live = w != 0
            n_live = int(np.count_nonzero(live))
            if n_live == 0:
                break
            if n_live < _COMPACTION_THRESHOLD * cur.size:
                done = ~live
                if pos is None:
                    out[done.nonzero()[0]] = cur[done]
                    pos = live.nonzero()[0]
                else:
                    out[pos[done]] = cur[done]
                    pos = pos[live]
                cur = cur[live]
                base = base[live]
                w = w[live]
            col = codes[base + ((w >> 9) & 0x1FFFF)]
            go_left = col < (w & 0x1FF)
            cur = cur + np.where(go_left, 1, w >> 26)
        if pos is None:
            return cur.reshape(m, T)
        out[pos] = cur
        return out.reshape(m, T)

    def predict_leaves_binned(self, Xb: np.ndarray) -> np.ndarray:
        """(n, n_trees) global leaf ids for pre-binned uint8 rows.

        Requires :meth:`bind_binner` first; ``Xb`` must be codes produced
        by the bound binner's :meth:`HistogramBinner.transform`.
        """
        if self._route is None:
            raise RuntimeError("no binner bound; call bind_binner() first")
        Xb = np.asarray(Xb)
        if Xb.dtype != np.uint8 or Xb.ndim != 2:
            raise ValueError("Xb must be a 2-D uint8 bin-code matrix")
        if Xb.shape[1] != self._route_n_features:
            raise ValueError(
                f"Xb must have {self._route_n_features} columns, got {Xb.shape[1]}"
            )
        n = Xb.shape[0]
        if self.n_trees == 0:
            return np.empty((n, 0), dtype=np.int64)
        # Doubled code matrix: columns d.. hold codes + 1 (uint8 wrap), the
        # missing-goes-left view (MISSING_BIN wraps to 0 = "below any cut").
        Xb2 = np.concatenate([Xb, Xb + np.uint8(1)], axis=1)
        out = np.empty((n, self.n_trees), dtype=np.int64)
        step = max(1, _TRAVERSAL_BLOCK_ELEMENTS // max(self.n_trees, 1))
        for start in range(0, n, step):
            out[start : start + step] = self._leaves_block_binned(
                Xb2[start : start + step]
            )
        return out

    def predict_margin(
        self,
        X: np.ndarray,
        base_margin: float = 0.0,
        *,
        binned: bool = False,
        binner: "HistogramBinner | None" = None,
    ) -> np.ndarray:
        """Additive ensemble score per row via one batched traversal.

        With ``binned=True`` the rows are routed through the binned path
        (see the module docstring): ``binner`` (or one previously bound
        with :meth:`bind_binner`) quantizes ``X`` to uint8 codes — or
        pass ``X`` already binned as uint8 codes to skip the transform.
        Both paths accumulate leaf values tree-by-tree (vectorized over
        rows), so results are bitwise identical to each other and to
        summing per-tree predictions in ensemble order.
        """
        if binned:
            if binner is not None and binner is not self._bound_binner:
                self.bind_binner(binner)
            X = np.asarray(X)
            if X.dtype == np.uint8:
                leaves = self.predict_leaves_binned(X)
            else:
                if self._bound_binner is None:
                    raise RuntimeError(
                        "binned=True requires a binner (argument or bind_binner)"
                    )
                leaves = self.predict_leaves_binned(
                    self._bound_binner.transform(np.asarray(X, dtype=np.float64))
                )
        else:
            leaves = self.predict_leaves(X)
        margin = np.full(leaves.shape[0], float(base_margin))
        for t in range(self.n_trees):
            margin += self.values[leaves[:, t]]
        return margin

    def feature_gains(self, n_features: int) -> np.ndarray:
        """Total split gain per feature across all trees (negatives clipped)."""
        internal = self.children_left >= 0
        if not internal.any():
            return np.zeros(n_features)
        return np.bincount(
            self.feature[internal],
            weights=np.maximum(self.gain[internal], 0.0),
            minlength=n_features,
        )

    def expected_values(self) -> np.ndarray:
        """Cover-weighted mean leaf value of each tree.

        One reverse scan over the concatenated arrays: nodes are stored in
        preorder, so every child index exceeds its parent's and a single
        backwards pass folds leaf values up to the roots.
        """
        E = self.values.astype(np.float64).copy()
        left, right, cover = self.children_left, self.children_right, self.cover
        for i in range(self.n_nodes - 1, -1, -1):
            l = left[i]
            if l >= 0:
                r = right[i]
                c = cover[i]
                if c <= 0:
                    E[i] = 0.5 * (E[l] + E[r])
                else:
                    E[i] = (cover[l] * E[l] + cover[r] * E[r]) / c
        return E[self.roots]


def _leaf_weight(g: float, h: float, params: TreeGrowthParams) -> float:
    """Optimal leaf weight with L1 soft-thresholding and L2 shrinkage."""
    if params.reg_alpha > 0:
        if g > params.reg_alpha:
            g = g - params.reg_alpha
        elif g < -params.reg_alpha:
            g = g + params.reg_alpha
        else:
            g = 0.0
    return -g / (h + params.reg_lambda)


def _score(g: np.ndarray, h: np.ndarray, params: TreeGrowthParams) -> np.ndarray:
    """Structure-score term G^2 / (H + lambda), vectorized, alpha-aware."""
    g = np.asarray(g, dtype=np.float64)
    if params.reg_alpha > 0:
        g = np.sign(g) * np.maximum(0.0, np.abs(g) - params.reg_alpha)
    return g * g / (h + params.reg_lambda)


def _subtract_hists(
    parent: tuple[np.ndarray, np.ndarray, np.ndarray],
    child: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sibling histogram as parent minus child, with empty bins made exact.

    Counts subtract exactly; gradient/hessian bins can retain float
    residues from earlier derivations.  A derived count of zero means the
    true mass is exactly zero, so those bins are cleared — this keeps the
    seed's tie-breaking (empty value bins, features with no missing rows)
    bit-stable under repeated subtraction.
    """
    g = parent[0] - child[0]
    h = parent[1] - child[1]
    n = parent[2] - child[2]
    empty = n == 0
    if empty.any():
        g[empty] = 0.0
        h[empty] = 0.0
    return g, h, n


class _TreeBuilder:
    """Grows one tree depth-first on binned data with g/h targets.

    Each node's split search uses the fused multi-feature histogram and
    flat-argmax selection described in the module docstring; child
    histograms reuse the parent's via sibling subtraction unless
    ``sibling_subtraction=False`` (the bitwise-exact mode the equivalence
    tests exercise).
    """

    def __init__(
        self,
        Xb: np.ndarray,
        binner: HistogramBinner,
        grad: np.ndarray,
        hess: np.ndarray,
        params: TreeGrowthParams,
        feature_indices: np.ndarray,
        sibling_subtraction: bool = True,
        train_pred_out: np.ndarray | None = None,
        codes_cache: dict | None = None,
    ):
        self.Xb = Xb
        self.binner = binner
        self.grad = grad
        self.hess = hess
        self.params = params
        self.sibling_subtraction = sibling_subtraction
        self.train_pred = train_pred_out
        self.codes_cache = codes_cache
        self.nodes: list[dict] = []

        active = np.asarray(feature_indices, dtype=np.int64)
        self.active = active
        self.n_active = int(active.size)
        nbins = np.array(
            [binner.n_bins(int(f)) for f in active], dtype=np.int64
        )
        self.nbins = nbins
        self.max_nbins = int(nbins.max()) if nbins.size else 0
        self._code_offset = np.arange(self.n_active, dtype=np.int64) * _CODE_STRIDE
        if self.max_nbins >= 2:
            # Candidate bins per feature: b in [0, n_bins(f) - 2].
            self._split_valid = (
                np.arange(self.max_nbins - 1)[None, :] < (nbins - 1)[:, None]
            )
        else:
            self._split_valid = np.zeros((self.n_active, 0), dtype=bool)

    def build(self, row_indices: np.ndarray) -> RegressionTree:
        # Work in positional row space over a compact (rows, active-cols)
        # gather: subsampled rows and inactive columns are copied exactly
        # once (never, when training uses every row and column), and all
        # per-node gathers hit the small contiguous submatrix.
        rows = np.asarray(row_indices)
        Xb = self.Xb
        full_rows = rows.size == Xb.shape[0] and np.array_equal(
            rows, np.arange(Xb.shape[0])
        )
        full_cols = self.n_active == Xb.shape[1] and np.array_equal(
            self.active, np.arange(Xb.shape[1])
        )
        if full_rows and full_cols:
            self.rows = None
            self.Xs = Xb
            self.g = self.grad
            self.h = self.hess
        elif full_rows:
            self.rows = None
            self.Xs = np.ascontiguousarray(Xb[:, self.active])
            self.g = self.grad
            self.h = self.hess
        else:
            self.rows = rows
            self.Xs = Xb[np.ix_(rows, self.active)]
            self.g = self.grad[rows]
            self.h = self.hess[rows]
        # Offset-code matrix: int64 codes with the per-feature-slot offset
        # pre-added, so node histograms skip the per-node astype + add.
        # Bounded by _OFFSET_CODES_MAX_ELEMENTS; reused across trees (via
        # codes_cache) when every tree sees the full matrix.
        self.Xcodes: np.ndarray | None = None
        if self.Xs.size <= _OFFSET_CODES_MAX_ELEMENTS and self.n_active:
            cacheable = full_rows and full_cols and self.codes_cache is not None
            if cacheable and "full" in self.codes_cache:
                self.Xcodes = self.codes_cache["full"]
            else:
                self.Xcodes = self.Xs.astype(np.int64) + self._code_offset[None, :]
                if cacheable:
                    self.codes_cache["full"] = self.Xcodes
        self._grow(np.arange(rows.size), depth=0, hists=None)
        return self._to_arrays()

    def _new_node(self) -> int:
        self.nodes.append(
            {
                "feature": -1,
                "threshold": np.nan,
                "threshold_bin": -1,
                "left": -1,
                "right": -1,
                "default_left": True,
                "value": 0.0,
                "cover": 0.0,
                "gain": 0.0,
            }
        )
        return len(self.nodes) - 1

    # -- histograms --------------------------------------------------------

    def _node_hists(
        self, idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused (g, h, count) histograms for all active features at once.

        Bin codes are offset per feature slot; the ``(rows, F)`` code
        matrix is C-contiguous so its row-major ravel is a free view, and
        per-row weights are repeated across the feature axis.  For any
        (feature, bin) pair the weights still accumulate in ascending row
        order, so each per-feature histogram is bitwise identical to a
        per-feature ``bincount`` loop.

        In production mode, nodes above ~4M (row, feature) pairs are
        processed in row blocks to bound the materialized code/weight
        arrays; block accumulation can regroup float additions by ulps.
        Exact mode (``sibling_subtraction=False``) never blocks — its
        unconditional bitwise contract with the seed kernels outranks the
        memory cap — so it materializes the full node at any size.
        """
        F = self.n_active
        size = F * _CODE_STRIDE
        m = idx.size

        def _flat_codes(part: np.ndarray) -> np.ndarray:
            if self.Xcodes is not None:
                if part.size == self.Xcodes.shape[0]:
                    return self.Xcodes.reshape(-1)  # root: free view, no gather
                return self.Xcodes[part].reshape(-1)
            codes = self.Xs[part].astype(np.int64)
            codes += self._code_offset[None, :]
            return codes.ravel()

        step = max(1, _BLOCK_ELEMENTS // max(F, 1))
        if m <= step or not self.sibling_subtraction:
            flat = _flat_codes(idx)
            g_hist = np.bincount(flat, weights=np.repeat(self.g[idx], F), minlength=size)
            h_hist = np.bincount(flat, weights=np.repeat(self.h[idx], F), minlength=size)
            n_hist = np.bincount(flat, minlength=size)
        else:
            g_hist = np.zeros(size)
            h_hist = np.zeros(size)
            n_hist = np.zeros(size, dtype=np.int64)
            for start in range(0, m, step):
                part = idx[start : start + step]
                flat = _flat_codes(part)
                g_hist += np.bincount(
                    flat, weights=np.repeat(self.g[part], F), minlength=size
                )
                h_hist += np.bincount(
                    flat, weights=np.repeat(self.h[part], F), minlength=size
                )
                n_hist += np.bincount(flat, minlength=size)
        return (
            g_hist.reshape(F, _CODE_STRIDE),
            h_hist.reshape(F, _CODE_STRIDE),
            n_hist.reshape(F, _CODE_STRIDE),
        )

    # -- growth ------------------------------------------------------------

    def _leafify(self, record: dict, idx: np.ndarray, g_sum: float, h_sum: float) -> None:
        record["value"] = _leaf_weight(g_sum, h_sum, self.params)
        if self.train_pred is not None:
            out_rows = idx if self.rows is None else self.rows[idx]
            self.train_pred[out_rows] = record["value"]

    def _grow(
        self,
        idx: np.ndarray,
        depth: int,
        hists: tuple[np.ndarray, np.ndarray, np.ndarray] | None,
    ) -> int:
        node = self._new_node()
        g_sum = float(self.g[idx].sum())
        h_sum = float(self.h[idx].sum())
        record = self.nodes[node]
        record["cover"] = h_sum
        params = self.params
        if (
            depth >= params.max_depth
            or idx.size < 2 * params.min_samples_leaf
            or h_sum < 2 * params.min_child_weight
        ):
            self._leafify(record, idx, g_sum, h_sum)
            return node
        if hists is None:
            hists = self._node_hists(idx)
        best = self._best_split(idx, g_sum, h_sum, hists)
        if best is None:
            self._leafify(record, idx, g_sum, h_sum)
            return node
        f_slot, bin_idx, default_left, gain = best
        feat = int(self.active[f_slot])
        col = self.Xs[idx, f_slot]
        missing = col == MISSING_BIN
        go_left = (col <= bin_idx) & ~missing
        if default_left:
            go_left |= missing
        left_idx, right_idx = idx[go_left], idx[~go_left]
        record["feature"] = feat
        record["threshold"] = self.binner.threshold_value(feat, bin_idx)
        record["threshold_bin"] = int(bin_idx)
        record["default_left"] = bool(default_left)
        record["gain"] = float(gain)

        left_hists = right_hists = None
        if self.sibling_subtraction:
            # Histogram only the smaller child; the sibling's histogram is
            # the parent's minus it.  Skip both when neither child can
            # split again (depth or min-leaf-size limits).
            splittable = depth + 1 < params.max_depth
            need_left = splittable and left_idx.size >= 2 * params.min_samples_leaf
            need_right = splittable and right_idx.size >= 2 * params.min_samples_leaf
            if need_left or need_right:
                if left_idx.size <= right_idx.size:
                    small = self._node_hists(left_idx)
                    left_hists = small
                    right_hists = _subtract_hists(hists, small)
                else:
                    small = self._node_hists(right_idx)
                    right_hists = small
                    left_hists = _subtract_hists(hists, small)
        del hists
        record["left"] = self._grow(left_idx, depth + 1, left_hists)
        record["right"] = self._grow(right_idx, depth + 1, right_hists)
        return node

    # -- split search ------------------------------------------------------

    def _best_split(
        self,
        idx: np.ndarray,
        g_sum: float,
        h_sum: float,
        hists: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[int, int, bool, float] | None:
        params = self.params
        B = self.max_nbins
        if B < 2:
            return None
        g_hist, h_hist, n_hist = hists
        parent_score = float(_score(np.array([g_sum]), np.array([h_sum]), params)[0])
        # Left-accumulated stats for every candidate bin of every feature.
        cg = np.cumsum(g_hist[:, :B], axis=1)[:, :-1]
        ch = np.cumsum(h_hist[:, :B], axis=1)[:, :-1]
        cn = np.cumsum(n_hist[:, :B], axis=1)[:, :-1]
        g_miss = g_hist[:, MISSING_BIN]
        h_miss = h_hist[:, MISSING_BIN]
        n_miss = n_hist[:, MISSING_BIN]
        F = self.n_active
        # Axis 1 is the missing-value direction: 0 = missing right (the
        # seed's first pass), 1 = missing left.
        gl = np.empty((F, 2, B - 1))
        hl = np.empty((F, 2, B - 1))
        nl = np.empty((F, 2, B - 1), dtype=np.int64)
        gl[:, 0, :] = cg + 0.0
        gl[:, 1, :] = cg + g_miss[:, None]
        hl[:, 0, :] = ch + 0.0
        hl[:, 1, :] = ch + h_miss[:, None]
        nl[:, 0, :] = cn
        nl[:, 1, :] = cn + n_miss[:, None]
        gr = g_sum - gl
        hr = h_sum - hl
        nr = idx.size - nl
        valid = (
            (hl >= params.min_child_weight)
            & (hr >= params.min_child_weight)
            & (nl >= params.min_samples_leaf)
            & (nr >= params.min_samples_leaf)
            & self._split_valid[:, None, :]
        )
        gains = (
            0.5 * (_score(gl, hl, params) + _score(gr, hr, params) - parent_score)
            - params.gamma
        )
        gains = np.where(valid, gains, -np.inf)
        # A NaN gain (possible only with reg_lambda == 0 and zero hessian
        # mass) poisons its whole (feature, direction) pass in the seed's
        # sequential argmax; replicate by invalidating those passes.
        nan_pass = np.isnan(gains).any(axis=2)
        if nan_pass.any():
            gains[nan_pass] = -np.inf
        flat = gains.reshape(-1)
        if flat.size == 0:
            return None
        b = int(np.argmax(flat))
        best_gain = float(flat[b])
        if not best_gain > 0.0:
            return None
        f_slot, rem = divmod(b, 2 * (B - 1))
        direction, bin_idx = divmod(rem, B - 1)
        return int(f_slot), int(bin_idx), bool(direction), best_gain

    def _to_arrays(self) -> RegressionTree:
        n = len(self.nodes)
        tree = RegressionTree(
            feature=np.array([r["feature"] for r in self.nodes], dtype=np.int32),
            threshold=np.array([r["threshold"] for r in self.nodes]),
            threshold_bin=np.array(
                [r["threshold_bin"] for r in self.nodes], dtype=np.int32
            ),
            children_left=np.array([r["left"] for r in self.nodes], dtype=np.int32),
            children_right=np.array([r["right"] for r in self.nodes], dtype=np.int32),
            default_left=np.array([r["default_left"] for r in self.nodes], dtype=bool),
            values=np.array([r["value"] for r in self.nodes]),
            cover=np.array([r["cover"] for r in self.nodes]),
            gain=np.array([r["gain"] for r in self.nodes]),
        )
        assert tree.n_nodes == n
        return tree


def grow_tree(
    Xb: np.ndarray,
    binner: HistogramBinner,
    grad: np.ndarray,
    hess: np.ndarray,
    row_indices: np.ndarray,
    feature_indices: np.ndarray,
    params: TreeGrowthParams,
    sibling_subtraction: bool = True,
    train_pred_out: np.ndarray | None = None,
    codes_cache: dict | None = None,
) -> RegressionTree:
    """Grow a single regression tree on binned data (see module docstring).

    ``train_pred_out``, when given an ``(n,)`` float array, is filled with
    the (unshrunk) leaf value reached by every row of ``row_indices`` —
    the boosting loop reuses it to update training margins without a
    second traversal.  ``codes_cache``, when given a dict, lets repeated
    calls over the same full matrix share the precomputed offset-code
    matrix (the boosting loop passes one dict for the whole fit).  ``sibling_subtraction=False`` forces every node
    histogram to be computed directly from rows in a single unblocked
    pass, making the grown tree bitwise identical to the seed kernel in
    :mod:`repro.ml._reference` at any input size (at the cost of
    materializing the full node's code matrix; the default production
    mode instead blocks very large nodes, which can shift gains — and,
    at exact gain ties, split choices — by float ulps).
    """
    builder = _TreeBuilder(
        Xb,
        binner,
        grad,
        hess,
        params,
        feature_indices,
        sibling_subtraction=sibling_subtraction,
        train_pred_out=train_pred_out,
        codes_cache=codes_cache,
    )
    return builder.build(row_indices)
