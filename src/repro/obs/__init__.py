"""``repro.obs`` — zero-dependency observability for the audit stack.

Three small pieces:

- :mod:`repro.obs.metrics` — process-wide and per-service
  :class:`~repro.obs.metrics.MetricsRegistry` instances holding
  lock-cheap counters, gauges, and fixed-bucket latency histograms with
  numpy-compatible p50/p95/p99 readout, rendered as JSON snapshots or
  Prometheus text exposition.
- :mod:`repro.obs.trace` — a contextvar-propagated, request-scoped span
  tree (``trace=1`` on v2 routes returns it in the response).
- :mod:`repro.obs.catalog` — the authoritative metric/span name catalog
  that both registries and ``tools/check_docs.py`` enforce.

See ``docs/OBSERVABILITY.md`` for the metric catalog and wire formats.
"""

from .catalog import METRIC_CATALOG, SPAN_CATALOG
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    get_metrics,
    metrics_enabled,
    render_prometheus,
    set_enabled,
)
from .trace import Span, Trace, activate, annotate, current_trace, span

__all__ = [
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disabled",
    "get_metrics",
    "metrics_enabled",
    "render_prometheus",
    "set_enabled",
    "Span",
    "Trace",
    "activate",
    "annotate",
    "current_trace",
    "span",
]
