"""The authoritative catalog of metric and span names.

Every metric a :class:`~repro.obs.metrics.MetricsRegistry` will accept
must be declared here, and every span name a
:class:`~repro.obs.trace.Trace` will open must be declared in
``SPAN_CATALOG``.  ``tools/check_docs.py`` parses this module textually
(no imports) and fails CI when a catalog entry is missing from
``docs/OBSERVABILITY.md`` or when a registration call site in ``src/``
uses a name that is not in the catalog — so the catalog, the code, and
the docs cannot drift apart.

Keep the literals below plain (no computed keys): the docs checker
reads them with ``ast.literal_eval``.
"""

from __future__ import annotations

#: name -> (type, one-line description).  Types: counter | gauge | histogram.
METRIC_CATALOG: dict[str, tuple[str, str]] = {
    # -- serve/http.py --------------------------------------------------
    "http_requests_total": (
        "counter",
        "HTTP requests by route pattern, method, and status code.",
    ),
    "http_request_seconds": (
        "histogram",
        "End-to-end request latency per route pattern.",
    ),
    "http_deadline_expired_total": (
        "counter",
        "Requests rejected because their deadline expired in flight.",
    ),
    # -- serve/resilience.py --------------------------------------------
    "admission_admitted_total": (
        "counter",
        "Requests admitted through the per-version admission gate.",
    ),
    "admission_shed_total": (
        "counter",
        "Requests shed by the admission gate, by reason "
        "(queue_full | deadline).",
    ),
    "admission_peak_running": (
        "gauge",
        "High-water mark of concurrently running requests per gate.",
    ),
    "admission_peak_queued": (
        "gauge",
        "High-water mark of queued requests per gate.",
    ),
    "breaker_transitions_total": (
        "counter",
        "Circuit-breaker state transitions, by destination state.",
    ),
    # -- serve/registry.py ----------------------------------------------
    "model_requests_total": (
        "counter",
        "Requests resolved against a model version.",
    ),
    "model_scores_total": (
        "counter",
        "Claims scored per model version, by path "
        "(precomputed | cold).",
    ),
    # -- serve/batcher.py -----------------------------------------------
    "batcher_requests_total": (
        "counter",
        "Score requests submitted to the micro-batcher.",
    ),
    "batcher_cache_hits_total": (
        "counter",
        "Micro-batcher requests served from the LRU result cache.",
    ),
    "batcher_coalesced_total": (
        "counter",
        "Requests coalesced onto an already-pending identical payload.",
    ),
    "batcher_batches_total": (
        "counter",
        "Batches flushed by the micro-batcher.",
    ),
    "batcher_scored_total": (
        "counter",
        "Distinct payloads scored across all flushed batches.",
    ),
    "batcher_deadline_drops_total": (
        "counter",
        "Queued payloads dropped because their deadline expired.",
    ),
    "batcher_max_batch": (
        "gauge",
        "Largest batch flushed so far (high-water mark).",
    ),
    "batcher_batch_size": (
        "histogram",
        "Batch occupancy: payloads per flushed batch.",
    ),
    "batcher_flush_seconds": (
        "histogram",
        "Latency of a micro-batcher flush (scoring included).",
    ),
    # -- serve/store.py + store/sharded.py (process-wide) ---------------
    "store_lookups_total": (
        "counter",
        "Claim keys probed against a ClaimScoreStore.",
    ),
    "store_lookup_hits_total": (
        "counter",
        "Probed keys found in the precomputed score store.",
    ),
    "store_build_seconds": (
        "histogram",
        "Wall time to build a ClaimScoreStore from a fitted model.",
    ),
    "store_load_seconds": (
        "histogram",
        "Wall time to load a persisted store, by mode (mmap | eager).",
    ),
    "shard_build_seconds": (
        "histogram",
        "Per-shard build stage timings, by stage (split | write | load).",
    ),
    # -- serve/workers.py (parent process of the pre-fork pool) ----------
    "pool_workers": (
        "gauge",
        "Live worker processes in the pre-fork serving pool.",
    ),
    "pool_worker_restarts_total": (
        "counter",
        "Worker processes respawned by the pool monitor after a death.",
    ),
    "pool_swaps_total": (
        "counter",
        "Fleet-wide two-phase model swaps, by outcome "
        "(committed | aborted).",
    ),
    # -- store/ingest.py (process-wide) ----------------------------------
    "ingest_rows_total": (
        "counter",
        "BDC ingestion rows, by outcome (read | ingested | rejected).",
    ),
    "ingest_rejected_total": (
        "counter",
        "Rows rejected during ingestion, by reason family.",
    ),
    "ingest_seconds": (
        "histogram",
        "Wall time of a full ingest_csv run (rows/s = rows_read / this).",
    ),
    # -- core/pipeline.py + core/model.py (process-wide) -----------------
    "pipeline_stage_seconds": (
        "histogram",
        "Wall time per build_world pipeline stage.",
    ),
    # -- enrich/truthmap.py + enrich/priority.py (process-wide) ----------
    "enrich_build_seconds": (
        "histogram",
        "Wall time per enrichment build stage (truthmap | priority).",
    ),
    "model_fit_seconds": (
        "histogram",
        "Wall time per NBMIntegrityModel.fit stage "
        "(vectorize | labels | fit).",
    ),
}

#: span name -> one-line description of what the span covers.
SPAN_CATALOG: dict[str, str] = {
    "request": "Root span: one HTTP request, route and method attached.",
    "admission": "Waiting on the per-version admission gate.",
    "parse_body": "Reading and JSON-decoding the request body.",
    "handler": "Route handler execution (everything below admission).",
    "store_lookup": "Vectorized probe of the precomputed score store.",
    "batcher_flush": "Micro-batcher flush, including batch scoring.",
    "cold_score": "Cold-path feature build + GBDT inference for misses.",
}
