"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

Design goals, in order:

1. **Lock-cheap on the hot path.**  Every instrument has its own
   ``threading.Lock`` held only for the few instructions of an update,
   so concurrent scoring threads never contend on a registry-wide lock
   and no increment is ever lost (see the threaded-hammer test).
2. **Quantiles that match the bench.**  ``Histogram.quantile`` follows
   the same rank semantics as ``numpy.percentile(..., method="linear")``
   used by ``bench_perf_latency.py``: the target rank is
   ``(count - 1) * q / 100`` and the readout interpolates between the
   estimated order statistics at the neighbouring integer ranks.  With
   bucketed counts each order statistic is only known to within its
   bucket, so the estimate is guaranteed to sit within one bucket width
   of the exact value (pinned by a hypothesis property test).
3. **Catalog-enforced names.**  A registry refuses metric names that are
   not declared in :mod:`repro.obs.catalog`, which ``tools/check_docs.py``
   cross-checks against ``docs/OBSERVABILITY.md``.

The module-level :func:`get_metrics` registry is process-wide and used
by library code with no natural owner (pipeline stages, ingestion, the
score-store build/load paths).  The serving stack instead hangs a
private registry off each ``ModelRegistry`` so per-version counters in
one service never bleed into another — ``GET /metrics`` exposes both.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Iterable, Iterator

from .catalog import METRIC_CATALOG

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "get_metrics",
    "set_enabled",
    "metrics_enabled",
    "disabled",
    "merge_states",
    "render_prometheus",
]

#: Log-spaced latency buckets (seconds): 100us .. 60s, ~3 per decade.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Buckets for size-like histograms (batch occupancy).
SIZE_BOUNDS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

# Process-wide enable switch.  ``bench_perf_obs.py`` flips it off to
# measure the bare hot path; everything else leaves it on.
_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Globally enable or disable metric updates (reads still work)."""
    global _ENABLED
    _ENABLED = bool(flag)


def metrics_enabled() -> bool:
    return _ENABLED


class disabled:
    """Context manager: suspend all metric updates inside the block."""

    def __enter__(self) -> "disabled":
        self._prev = _ENABLED
        set_enabled(False)
        return self

    def __exit__(self, *exc: object) -> None:
        set_enabled(self._prev)


class Counter:
    """A monotonically increasing count guarded by its own lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; ``set_max`` keeps a high-water mark."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Timer:
    """Context manager that observes its block duration into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._hist.observe(time.perf_counter() - self._start)


class Histogram:
    """Fixed-bucket histogram with numpy-compatible quantile readout.

    ``bounds`` are strictly increasing upper bucket edges (``le``
    semantics, as in Prometheus); one overflow bucket is added past the
    last bound.  Observed min/max are tracked so quantile interpolation
    can clamp bucket edges to the actual data range.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = threading.Lock()
        self._bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        value = float(value)
        i = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> _Timer:
        return _Timer(self)

    # -- readout ---------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _state(self) -> tuple[list[int], int, float, float, float]:
        """One consistent ``(counts, count, sum, min, max)`` snapshot.

        Taken under a single lock acquisition so renderers never see a
        ``_sum`` torn from the bucket counts it belongs with.
        """
        with self._lock:
            return (
                list(self._counts),
                self._count,
                self._sum,
                self._min,
                self._max,
            )

    def _restore(
        self,
        counts: Iterable[int],
        sum_: float,
        count: int,
        min_: float | None,
        max_: float | None,
    ) -> None:
        """Overwrite internals from an exported state (see ``from_state``)."""
        counts = [int(c) for c in counts]
        if len(counts) != len(self._bounds) + 1:
            raise ValueError(
                f"histogram state has {len(counts)} buckets, "
                f"bounds imply {len(self._bounds) + 1}"
            )
        with self._lock:
            self._counts = counts
            self._sum = float(sum_)
            self._count = int(count)
            self._min = math.inf if min_ is None else float(min_)
            self._max = -math.inf if max_ is None else float(max_)

    def _bucket_edges(self, i: int, lo_clamp: float, hi_clamp: float) -> tuple[float, float]:
        lo = self._bounds[i - 1] if i > 0 else -math.inf
        hi = self._bounds[i] if i < len(self._bounds) else math.inf
        lo = max(lo, lo_clamp)
        hi = min(hi, hi_clamp)
        if lo > hi:
            lo = hi
        return lo, hi

    def _rank_value(
        self, k: int, counts: list[int], lo_clamp: float, hi_clamp: float
    ) -> float:
        """Estimate the 0-based order statistic ``k`` from bucket counts."""
        cum = 0
        for i, c in enumerate(counts):
            if c and k < cum + c:
                lo, hi = self._bucket_edges(i, lo_clamp, hi_clamp)
                # Midpoint rule: the c values in this bucket are assumed
                # evenly spread over [lo, hi]; rank k is the (k-cum)-th.
                return lo + (hi - lo) * ((k - cum) + 0.5) / c
            cum += c
        return hi_clamp

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (numpy ``linear`` rank semantics)."""
        counts, n, _, lo_clamp, hi_clamp = self._state()
        if n == 0:
            return math.nan
        if n == 1:
            return lo_clamp
        target = (n - 1) * (q / 100.0)
        k = int(math.floor(target))
        frac = target - k
        v1 = self._rank_value(k, counts, lo_clamp, hi_clamp)
        if frac == 0.0:
            return v1
        v2 = self._rank_value(min(k + 1, n - 1), counts, lo_clamp, hi_clamp)
        return v1 + frac * (v2 - v1)

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    __slots__ = ("kind", "help", "bounds", "series")

    def __init__(self, kind: str, help_: str, bounds: tuple[float, ...] | None):
        self.kind = kind
        self.help = help_
        self.bounds = bounds
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a (name, labels) pair allocates the instrument, later calls
    return the same object, so call sites can resolve instruments once
    and hold them.  Names must be declared in
    :data:`repro.obs.catalog.METRIC_CATALOG` with a matching type.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get(
        self,
        kind: str,
        name: str,
        labels: dict[str, object],
        bounds: Iterable[float] | None = None,
    ):
        spec = METRIC_CATALOG.get(name)
        if spec is None:
            raise ValueError(
                f"metric {name!r} is not declared in repro.obs.catalog."
                "METRIC_CATALOG; add it there (and to docs/OBSERVABILITY.md)"
            )
        if spec[0] != kind:
            raise ValueError(
                f"metric {name!r} is declared as a {spec[0]}, not a {kind}"
            )
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    kind, spec[1], tuple(bounds) if bounds is not None else None
                )
                self._families[name] = family
            metric = family.series.get(key)
            if metric is None:
                if kind == "histogram":
                    metric = Histogram(
                        family.bounds
                        if family.bounds is not None
                        else DEFAULT_LATENCY_BOUNDS
                    )
                else:
                    metric = _TYPES[kind]()
                family.series[key] = metric
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] | None = None,
        **labels: object,
    ) -> Histogram:
        return self._get("histogram", name, labels, bounds=bounds)

    def total(self, name: str) -> float:
        """Sum a family's values across all label sets (0 if absent)."""
        with self._lock:
            family = self._families.get(name)
            series = list(family.series.values()) if family else []
        if not series:
            return 0.0
        if isinstance(series[0], Histogram):
            return float(sum(h.count for h in series))
        return float(sum(m.value for m in series))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def _items(self) -> Iterator[tuple[str, _Family, list[tuple[tuple, object]]]]:
        with self._lock:
            snap = [
                (name, fam, sorted(fam.series.items()))
                for name, fam in sorted(self._families.items())
            ]
        yield from snap

    def snapshot(self) -> dict:
        """A JSON-ready dump of every instrument in the registry."""
        out: dict[str, dict] = {}
        for name, family, series in self._items():
            rows = []
            for key, metric in series:
                labels = dict(key)
                if isinstance(metric, Histogram):
                    pct = metric.percentiles()
                    rows.append(
                        {
                            "labels": labels,
                            "count": metric.count,
                            "sum": metric.sum,
                            "p50": _finite(pct["p50"]),
                            "p95": _finite(pct["p95"]),
                            "p99": _finite(pct["p99"]),
                        }
                    )
                else:
                    rows.append({"labels": labels, "value": metric.value})
            out[name] = {"type": family.kind, "help": family.help, "series": rows}
        return out

    def render_prometheus(self) -> str:
        return render_prometheus(self)

    # -- mergeable state (worker-pool aggregation) ------------------------

    def export_state(self) -> dict:
        """A JSON-safe, *mergeable* dump of every instrument.

        Unlike :meth:`snapshot` (a human/JSON readout with derived
        percentiles), the exported state keeps raw bucket counts so two
        processes' registries can be combined loss-lessly: counters sum,
        histograms add bucket-wise, gauges stay per-source.  Feed a list
        of these to :func:`merge_states` and rebuild a registry with
        :meth:`from_state`.
        """
        out: dict[str, dict] = {}
        for name, family, series in self._items():
            rows = []
            for key, metric in series:
                labels = dict(key)
                if isinstance(metric, Histogram):
                    counts, count, sum_, min_, max_ = metric._state()
                    rows.append(
                        {
                            "labels": labels,
                            "counts": counts,
                            "count": count,
                            "sum": sum_,
                            "min": _finite(min_),
                            "max": _finite(max_),
                        }
                    )
                else:
                    rows.append({"labels": labels, "value": metric.value})
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "bounds": list(family.bounds) if family.bounds else None,
                "series": rows,
            }
        return out

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a live registry from :meth:`export_state` output.

        Names still go through the catalog check, so a merged fleet
        state can only contain documented series.
        """
        registry = cls()
        for name, family in state.items():
            bounds = family.get("bounds")
            for row in family["series"]:
                labels = dict(row["labels"])
                if family["kind"] == "histogram":
                    hist = registry.histogram(name, bounds=bounds, **labels)
                    hist._restore(
                        row["counts"], row["sum"], row["count"],
                        row.get("min"), row.get("max"),
                    )
                elif family["kind"] == "counter":
                    registry.counter(name, **labels).inc(int(row["value"]))
                else:
                    registry.gauge(name, **labels).set(float(row["value"]))
        return registry


def merge_states(
    states: Iterable[dict],
    labels: Iterable[dict[str, object] | None] | None = None,
) -> dict:
    """Merge :meth:`MetricsRegistry.export_state` dumps from N processes.

    ``labels`` — one extra label dict per state (e.g. ``{"worker": 0}``)
    — is applied to **gauge** series only: a gauge is a point-in-time
    per-process value, so each source keeps its own labelled series.
    Counters and histograms are cumulative and merge by identical label
    set: values sum, bucket counts add element-wise (bounds must match
    across sources), min/max widen.  Gauge series that still collide
    (no per-source labels given) keep the max, matching the high-water
    semantics of every cataloged gauge.
    """
    states = list(states)
    if labels is None:
        extra_by_state: list[dict[str, object] | None] = [None] * len(states)
    else:
        extra_by_state = list(labels)
        if len(extra_by_state) != len(states):
            raise ValueError("labels must align one-to-one with states")
    merged: dict[str, dict] = {}
    for state, extra in zip(states, extra_by_state):
        for name, family in state.items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "bounds": (
                        list(family["bounds"]) if family.get("bounds") else None
                    ),
                    "series": [],
                }
            elif target["kind"] != family["kind"]:
                raise ValueError(
                    f"metric {name!r} merges a {family['kind']} into a "
                    f"{target['kind']}"
                )
            elif (
                family["kind"] == "histogram"
                and target["bounds"] != (
                    list(family["bounds"]) if family.get("bounds") else None
                )
            ):
                raise ValueError(
                    f"histogram {name!r} has mismatched bounds across sources"
                )
            rows = {_label_key(r["labels"]): r for r in target["series"]}
            for row in family["series"]:
                row_labels = dict(row["labels"])
                if family["kind"] == "gauge" and extra:
                    row_labels.update({k: str(v) for k, v in extra.items()})
                key = _label_key(row_labels)
                into = rows.get(key)
                if into is None:
                    into = dict(row)
                    into["labels"] = row_labels
                    if family["kind"] == "histogram":
                        into["counts"] = list(row["counts"])
                    rows[key] = into
                    target["series"].append(into)
                elif family["kind"] == "counter":
                    into["value"] += row["value"]
                elif family["kind"] == "gauge":
                    into["value"] = max(into["value"], row["value"])
                else:
                    if len(into["counts"]) != len(row["counts"]):
                        raise ValueError(
                            f"histogram {name!r} has mismatched bucket counts"
                        )
                    into["counts"] = [
                        a + b for a, b in zip(into["counts"], row["counts"])
                    ]
                    into["count"] += row["count"]
                    into["sum"] += row["sum"]
                    into["min"] = _merge_extremum(min, into["min"], row["min"])
                    into["max"] = _merge_extremum(max, into["max"], row["max"])
    return merged


def _merge_extremum(pick, a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)


def _finite(x: float) -> float | None:
    return x if math.isfinite(x) else None


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for k, v in merged.items():
        v = v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{k}="{v}"')
    return "{" + ",".join(parts) + "}"


def _fmt_value(v: float) -> str:
    f = float(v)
    if math.isnan(f):
        return "NaN"
    if f == math.inf:
        return "+Inf"
    if f == -math.inf:
        return "-Inf"
    return repr(int(f)) if f.is_integer() else repr(f)


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render one or more registries in Prometheus text exposition format."""
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for name, family, series in registry._items():
            if name in seen:  # merged registries must not redeclare a family
                continue
            seen.add(name)
            lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, metric in series:
                labels = dict(key)
                base = _fmt_labels(labels)
                if isinstance(metric, Histogram):
                    counts, total, sum_, _, _ = metric._state()
                    cum = 0
                    for bound, c in zip(
                        list(metric.bounds) + [math.inf], counts
                    ):
                        cum += c
                        le = _fmt_labels(labels, {"le": _fmt_value(bound)})
                        lines.append(f"{name}_bucket{le} {cum}")
                    lines.append(f"{name}_sum{base} {_fmt_value(sum_)}")
                    lines.append(f"{name}_count{base} {total}")
                else:
                    lines.append(f"{name}{base} {_fmt_value(metric.value)}")
    return "\n".join(lines) + "\n"


#: The process-wide registry for library code with no natural owner.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """Return the process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL
