"""Request-scoped tracing: a contextvar-propagated span tree.

A :class:`Trace` is activated for one request (``trace=1`` on a v2
route) and propagated through the scoring stack via a
``contextvars.ContextVar`` — instrumented code calls
:func:`span`, which is a no-op returning a shared singleton when no
trace is active, so the untraced hot path pays a single contextvar
lookup per span site.  Span timings are monotonic
(``time.perf_counter``) and reported relative to the trace start.

Span nesting uses a plain stack on the trace object: the serving stack
flushes batches synchronously on the request thread, so spans opened by
the batcher and the cold scorer land under the handler span.  Flushes
fired by the batcher's background timer run without an active trace and
simply skip span recording.

Span names must be declared in :data:`repro.obs.catalog.SPAN_CATALOG`
so ``docs/OBSERVABILITY.md`` stays the single reference for what a
span tree can contain.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from typing import Iterator

from .catalog import SPAN_CATALOG

__all__ = ["Span", "Trace", "activate", "current_trace", "span", "annotate"]

_ACTIVE: contextvars.ContextVar["Trace | None"] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def new_request_id() -> str:
    """A short, log-friendly, unique-enough request identifier."""
    return uuid.uuid4().hex[:16]


class Span:
    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list["Span"] = []

    def to_dict(self, origin: float) -> dict:
        end = self.end if self.end is not None else time.perf_counter()
        doc: dict[str, object] = {
            "name": self.name,
            "start_ms": round((self.start - origin) * 1e3, 3),
            "duration_ms": round((end - self.start) * 1e3, 3),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [c.to_dict(origin) for c in self.children]
        return doc


class _SpanHandle:
    """Context manager that opens/closes one span on its trace's stack."""

    __slots__ = ("_trace", "_name", "_attrs", "_span")

    def __init__(self, trace: "Trace", name: str, attrs: dict[str, object]):
        self._trace = trace
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._trace._push(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._trace._pop(self._span)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP = _NoopSpan()


class Trace:
    """One request's span tree plus identifying annotations."""

    def __init__(self, request_id: str | None = None) -> None:
        self.request_id = request_id or new_request_id()
        self.origin = time.perf_counter()
        self.root: Span | None = None
        self.annotations: dict[str, object] = {}
        self._stack: list[Span] = []

    # -- span bookkeeping (request-thread only) --------------------------

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        if name not in SPAN_CATALOG:
            raise ValueError(
                f"span {name!r} is not declared in repro.obs.catalog."
                "SPAN_CATALOG; add it there (and to docs/OBSERVABILITY.md)"
            )
        return _SpanHandle(self, name, dict(attrs))

    def _push(self, name: str, attrs: dict[str, object]) -> Span:
        node = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        elif self.root is None:
            self.root = node
        else:  # a second top-level span: keep the tree single-rooted
            self.root.children.append(node)
        self._stack.append(node)
        return node

    def _pop(self, node: Span) -> None:
        node.end = time.perf_counter()
        if self._stack and self._stack[-1] is node:
            self._stack.pop()

    def annotate(self, **attrs: object) -> None:
        self.annotations.update(attrs)

    def to_dict(self) -> dict:
        doc: dict[str, object] = {"request_id": self.request_id}
        if self.annotations:
            doc.update(self.annotations)
        if self.root is not None:
            doc["spans"] = self.root.to_dict(self.origin)
        return doc

    def span_names(self) -> list[str]:
        """Flattened preorder list of span names (test/debug helper)."""
        out: list[str] = []

        def walk(node: Span) -> None:
            out.append(node.name)
            for child in node.children:
                walk(child)

        if self.root is not None:
            walk(self.root)
        return out


class _Activation:
    __slots__ = ("_trace", "_token")

    def __init__(self, trace: Trace) -> None:
        self._trace = trace

    def __enter__(self) -> Trace:
        self._token = _ACTIVE.set(self._trace)
        return self._trace

    def __exit__(self, *exc: object) -> None:
        _ACTIVE.reset(self._token)


def activate(request_id: str | None = None) -> _Activation:
    """Context manager installing a fresh :class:`Trace` as current."""
    return _Activation(Trace(request_id))


def current_trace() -> Trace | None:
    return _ACTIVE.get()


def span(name: str, **attrs: object):
    """Open a span on the active trace, or do nothing if none is active."""
    trace = _ACTIVE.get()
    if trace is None:
        return _NOOP
    return trace.span(name, **attrs)


def annotate(**attrs: object) -> None:
    """Attach annotations to the active trace, if any."""
    trace = _ACTIVE.get()
    if trace is not None:
        trace.annotate(**attrs)
