"""Adversarial overclaim scenarios and the end-to-end invariant harness.

The paper's detection problem is defined by its edge regimes — blanket
DSL overclaims, "everywhere" filings, stale carryover, phantom providers
— not by the average world.  This package names those regimes:

* :mod:`repro.scenarios.registry` — the named-scenario registry and the
  :class:`ScenarioWorld` contract (mutated world + injected-claim mask);
* :mod:`repro.scenarios.mutators` — ~10 seeded world mutators layered on
  :func:`repro.core.pipeline.build_world` via
  :class:`~repro.core.pipeline.PipelineHooks`;
* :mod:`repro.scenarios.harness` — runs each scenario through dataset →
  features → GBDT → score store → audit service and checks metamorphic
  invariants (monotonicity, AUC floors, binned/float equality, serving
  consistency);
* :mod:`repro.scenarios.goldens` — the committed golden-metric contract
  and its tolerances.
"""

from repro.scenarios import mutators as _mutators  # noqa: F401 — registers scenarios
from repro.scenarios.goldens import compare_all, compare_metrics, to_golden
from repro.scenarios.harness import (
    HarnessBaseline,
    ScenarioMetrics,
    ScenarioRun,
    build_baseline,
    check_invariants,
    intensity_sweep,
    run_scenario,
    run_suite,
    scenario_default_config,
)
from repro.scenarios.registry import (
    ScenarioSpec,
    ScenarioWorld,
    build_scenario,
    get,
    names,
    register,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioWorld",
    "register",
    "get",
    "names",
    "build_scenario",
    "HarnessBaseline",
    "ScenarioMetrics",
    "ScenarioRun",
    "build_baseline",
    "check_invariants",
    "intensity_sweep",
    "run_scenario",
    "run_suite",
    "scenario_default_config",
    "compare_all",
    "compare_metrics",
    "to_golden",
]
