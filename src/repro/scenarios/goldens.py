"""Golden scenario metrics: the committed contract and its tolerances.

The harness's per-scenario numbers are committed as one JSON document
(``tests/goldens/scenario_metrics.json``) and checked by the tier-1 /
sweep tests.  Counts must match exactly — they are pure functions of the
seeded world — while learned quantities (AUCs, percentiles) carry small
tolerances so heterogeneous BLAS/SIMD builds don't flake the suite.

``tools/refresh_goldens.py`` regenerates the document and reports which
metrics moved beyond tolerance before overwriting anything.
"""

from __future__ import annotations

import json
import math
import os

__all__ = [
    "GOLDEN_BASENAME",
    "TOLERANCES",
    "default_golden_path",
    "to_golden",
    "load_goldens",
    "save_goldens",
    "compare_metrics",
    "compare_all",
]

GOLDEN_BASENAME = "scenario_metrics.json"

#: Absolute tolerance per goldened metric; fields not listed must match
#: exactly.  Timing fields are never goldened.
TOLERANCES: dict[str, float] = {
    "auc_injected": 0.02,
    "ref_auc_injected": 0.02,
    "mean_injected_percentile": 1.5,
    "mean_clean_percentile": 1.5,
    "percentile_separation": 2.0,
    "ref_target_mean_percentile": 1.5,
    "baseline_target_mean_percentile": 1.5,
    "base_auc_injected": 0.02,
    "enrichment_margin": 0.04,
}

#: Metrics excluded from the golden document (machine-dependent).
_UNGOLDENED = ("claims_per_s",)


def default_golden_path(repo_root: str | None = None) -> str:
    """``tests/goldens/scenario_metrics.json`` under the repo root."""
    if repo_root is None:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        )
    return os.path.join(repo_root, "tests", "goldens", GOLDEN_BASENAME)


def to_golden(metrics) -> dict:
    """One scenario's golden payload (timing fields dropped)."""
    doc = metrics.as_dict()
    for field in _UNGOLDENED:
        doc.pop(field, None)
    return doc


def load_goldens(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != "scenario-goldens":
        raise ValueError(f"{path} is not a scenario-goldens document")
    return doc["scenarios"]


def save_goldens(path: str, metrics_by_name: dict[str, dict]) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    doc = {
        "kind": "scenario-goldens",
        "schema": 1,
        "tolerances": TOLERANCES,
        "scenarios": {name: metrics_by_name[name] for name in sorted(metrics_by_name)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _match(field: str, fresh, golden) -> bool:
    tol = TOLERANCES.get(field)
    if fresh is None or golden is None:
        return fresh is None and golden is None
    if isinstance(fresh, float) and isinstance(golden, (int, float)):
        if math.isnan(fresh) or math.isnan(float(golden)):
            return math.isnan(fresh) and math.isnan(float(golden))
        if tol is not None:
            return abs(fresh - float(golden)) <= tol
        return fresh == float(golden)
    return fresh == golden


def compare_metrics(fresh: dict, golden: dict) -> list[str]:
    """Out-of-tolerance fields for one scenario, as readable messages."""
    failures: list[str] = []
    for field in sorted(set(fresh) | set(golden)):
        if field in _UNGOLDENED:
            continue
        if field not in fresh:
            failures.append(f"{field}: missing from fresh metrics")
            continue
        if field not in golden:
            failures.append(f"{field}: missing from golden file (refresh goldens)")
            continue
        if not _match(field, fresh[field], golden[field]):
            tol = TOLERANCES.get(field)
            suffix = f" (tol {tol})" if tol is not None else " (exact)"
            failures.append(
                f"{field}: fresh {fresh[field]!r} vs golden {golden[field]!r}{suffix}"
            )
    return failures


def compare_all(
    fresh_by_name: dict[str, dict], golden_by_name: dict[str, dict]
) -> dict[str, list[str]]:
    """Per-scenario failures across a whole run (missing scenarios included)."""
    out: dict[str, list[str]] = {}
    for name in sorted(set(fresh_by_name) | set(golden_by_name)):
        if name not in golden_by_name:
            out[name] = ["scenario missing from golden file (refresh goldens)"]
        elif name not in fresh_by_name:
            out[name] = ["scenario missing from fresh run"]
        else:
            failures = compare_metrics(fresh_by_name[name], golden_by_name[name])
            if failures:
                out[name] = failures
    return out
