"""End-to-end invariant harness over the scenario registry.

For every named scenario the harness runs the complete production path —
mutated world → labelled dataset → columnar features → GBDT →
:class:`~repro.serve.store.ClaimScoreStore` →
:class:`~repro.serve.service.AuditService` — and measures it against the
scenario's ground-truth injected-claim mask.  Two kinds of checks come
out of a run:

**Metamorphic invariants** (:func:`check_invariants`):

1. the binned route-word inference path used by the store is bitwise
   equal to the float path *on the scenario world* (not just the happy
   path the perf suite exercises);
2. scenario AUC — store margin against the injected mask — clears the
   scenario's registered floor;
3. injected claims sit measurably above clean claims on the percentile
   scale (separation floor per scenario);
4. **monotonicity**: scoring the scenario world with a *fixed* reference
   classifier (the baseline model), the targeted providers' mean
   suspicion percentile must not drop below their baseline-world value —
   injecting more overclaims for a provider must never make it look
   cleaner (``intensity_sweep`` extends this across intensities);
5. the :class:`AuditService` read path agrees with the store record for
   injected claims, and filtered top-k output is sorted by suspicion.

**Golden metrics** (:class:`ScenarioMetrics`): the per-scenario numbers
committed under ``tests/goldens/`` and refreshed by
``tools/refresh_goldens.py``; see :mod:`repro.scenarios.goldens` for the
tolerance contract.

Everything is seeded, so two consecutive runs of the harness produce
identical metrics — the seed-stability regression test pins that
property for :func:`repro.core.pipeline.build_world` itself.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.model import NBMIntegrityModel
from repro.core.pipeline import (
    SimulationWorld,
    build_dataset,
    build_world,
    enrichment_from_world,
    make_feature_builder,
)
from repro.dataset.splits import Split, random_observation_split
from repro.fcc.fabric import FabricConfig
from repro.fcc.providers import ProviderConfig
from repro.ml.gbdt import GBDTParams
from repro.ml.metrics import roc_auc_score
from repro.scenarios import registry
from repro.scenarios.registry import ScenarioSpec, ScenarioWorld
from repro.serve.service import AuditService
from repro.serve.store import ClaimScoreStore

__all__ = [
    "scenario_default_config",
    "HarnessBaseline",
    "ScenarioMetrics",
    "ScenarioRun",
    "build_baseline",
    "run_scenario",
    "run_suite",
    "check_invariants",
    "check_fault_invariants",
    "check_pool_fault_invariants",
    "intensity_sweep",
]

#: Tolerance (percentile points) on the cross-world monotonicity check.
MONOTONICITY_TOL = 2.0


def scenario_default_config(seed: int = 7) -> ScenarioConfig:
    """The harness scale: smaller than ``tiny`` so a full scenario sweep
    (one world build + train + two score stores per scenario) stays
    test-suite-affordable, while keeping every marginal the paper's
    presets preserve."""
    return ScenarioConfig(
        seed=seed,
        fabric=FabricConfig(locations_per_million=60),
        providers=ProviderConfig(n_providers=28),
        model=GBDTParams(n_estimators=40, max_depth=4, learning_rate=0.25),
        embedding_dim=16,
    )


@dataclass
class HarnessBaseline:
    """The unmutated reference world and its trained model + store."""

    config: ScenarioConfig
    world: SimulationWorld
    dataset: object
    split: Split
    builder: object
    model: NBMIntegrityModel
    store: ClaimScoreStore


@dataclass(frozen=True)
class ScenarioMetrics:
    """One scenario's end-to-end numbers (the golden-file payload)."""

    name: str
    intensity: float
    n_claims: int
    n_injected: int
    n_observations: int
    #: AUC of the scenario-trained store's margins vs. the injected mask.
    auc_injected: float
    #: Same AUC under the fixed baseline classifier (reference scoring).
    ref_auc_injected: float
    mean_injected_percentile: float
    mean_clean_percentile: float
    percentile_separation: float
    #: Targeted providers' mean percentile under the *fixed* reference
    #: classifier, on the scenario world vs. on the baseline world
    #: (``baseline_target_mean_percentile`` is None for providers the
    #: scenario created from nothing).
    ref_target_mean_percentile: float
    baseline_target_mean_percentile: float | None
    binned_equals_float: bool
    #: Store-build throughput (claims scored per second; not goldened).
    claims_per_s: float
    #: "enriched" scenarios only: AUC of a base-feature control model
    #: trained on the same scenario world, and the margin the enrichment
    #: block adds over it (``auc_injected - base_auc_injected``).  None
    #: for base-feature scenarios — and *omitted* from :meth:`as_dict`,
    #: so pre-enrichment golden entries compare unchanged.
    base_auc_injected: float | None = None
    enrichment_margin: float | None = None

    def as_dict(self) -> dict:
        doc = asdict(self)
        for optional in ("base_auc_injected", "enrichment_margin"):
            if doc[optional] is None:
                del doc[optional]
        return doc


@dataclass
class ScenarioRun:
    """Everything one scenario run produced."""

    scenario: ScenarioWorld
    spec: ScenarioSpec
    builder: object
    model: NBMIntegrityModel
    store: ClaimScoreStore
    #: Scenario claims scored by the fixed baseline classifier.
    ref_store: ClaimScoreStore
    service: AuditService
    mask: np.ndarray
    metrics: ScenarioMetrics


def build_baseline(config: ScenarioConfig | None = None) -> HarnessBaseline:
    """Build and train the unmutated reference world once."""
    config = config or scenario_default_config()
    world = build_world(config)
    dataset = build_dataset(world)
    builder = make_feature_builder(world)
    split = random_observation_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=config.model).fit(
        dataset, split.train_idx
    )
    store = ClaimScoreStore.build(model.classifier, builder)
    return HarnessBaseline(
        config=config,
        world=world,
        dataset=dataset,
        split=split,
        builder=builder,
        model=model,
        store=store,
    )


def _provider_mean_percentile(store: ClaimScoreStore, provider_ids) -> float | None:
    mask = np.isin(store.claims.provider_id, np.array(sorted(provider_ids), dtype=np.int64))
    if not mask.any():
        return None
    return float(store.percentile[mask].mean())


def run_scenario(
    name: str, baseline: HarnessBaseline, intensity: float = 1.0
) -> ScenarioRun:
    """Run one scenario end to end: world → dataset → GBDT → store → service."""
    spec = registry.get(name)
    scenario = registry.build_scenario(name, baseline.config, intensity)
    world = scenario.world
    dataset = build_dataset(world)
    # "enriched" scenarios train on the measured-truth feature block; the
    # fixed-reference scoring (and the base-feature control model) go
    # through a plain base builder — the baseline classifier was trained
    # on base features and must never see the wider matrix.
    enriched = "enriched" in spec.tags
    enrichment = enrichment_from_world(world) if enriched else None
    builder = make_feature_builder(world, enrichment=enrichment)
    base_builder = make_feature_builder(world) if enriched else builder
    split = random_observation_split(dataset, seed=1)
    model = NBMIntegrityModel(builder, params=baseline.config.model).fit(
        dataset, split.train_idx
    )
    t0 = time.perf_counter()
    store = ClaimScoreStore.build(model.classifier, builder)
    build_s = time.perf_counter() - t0
    ref_store = ClaimScoreStore.build(baseline.model.classifier, base_builder)
    service = AuditService(
        store,
        classifier=model.classifier,
        builder=builder,
        model=model,
        enrichment=enrichment,
    )

    mask = scenario.injected_mask()
    labels = mask.astype(np.int64)
    both_classes = 0 < int(mask.sum()) < mask.size
    auc = roc_auc_score(labels, store.margin) if both_classes else float("nan")
    ref_auc = roc_auc_score(labels, ref_store.margin) if both_classes else float("nan")
    # The same blocked scorer, routed through the float traversal — any
    # divergence from the binned production path fails the invariant.
    float_store = ClaimScoreStore.build(model.classifier, builder, binned=False)
    binned_ok = bool(np.array_equal(store.margin, float_store.margin))
    ref_target = _provider_mean_percentile(ref_store, scenario.target_provider_ids)
    baseline_target = _provider_mean_percentile(
        baseline.store, scenario.target_provider_ids
    )
    base_auc = None
    enrichment_margin = None
    if enriched and both_classes:
        # The control: the same GBDT recipe on the same scenario world,
        # minus the enrichment block.  The margin this leaves proves the
        # enriched features add separation the base set cannot achieve.
        base_model = NBMIntegrityModel(
            base_builder, params=baseline.config.model
        ).fit(dataset, split.train_idx)
        base_store = ClaimScoreStore.build(base_model.classifier, base_builder)
        base_auc = float(roc_auc_score(labels, base_store.margin))
        enrichment_margin = float(auc) - base_auc
    metrics = ScenarioMetrics(
        name=name,
        intensity=float(intensity),
        n_claims=len(store),
        n_injected=int(mask.sum()),
        n_observations=len(dataset),
        auc_injected=float(auc),
        ref_auc_injected=float(ref_auc),
        mean_injected_percentile=float(store.percentile[mask].mean()) if mask.any() else float("nan"),
        mean_clean_percentile=float(store.percentile[~mask].mean()) if (~mask).any() else float("nan"),
        percentile_separation=float(
            store.percentile[mask].mean() - store.percentile[~mask].mean()
        )
        if both_classes
        else float("nan"),
        ref_target_mean_percentile=float(ref_target) if ref_target is not None else float("nan"),
        baseline_target_mean_percentile=baseline_target,
        binned_equals_float=binned_ok,
        claims_per_s=float(len(store) / build_s) if build_s > 0 else float("inf"),
        base_auc_injected=base_auc,
        enrichment_margin=enrichment_margin,
    )
    return ScenarioRun(
        scenario=scenario,
        spec=spec,
        builder=builder,
        model=model,
        store=store,
        ref_store=ref_store,
        service=service,
        mask=mask,
        metrics=metrics,
    )


def check_invariants(run: ScenarioRun, baseline: HarnessBaseline) -> list[str]:
    """Every violated invariant as a human-readable message (empty = pass)."""
    failures: list[str] = []
    m = run.metrics
    spec = run.spec
    if m.n_injected == 0:
        failures.append("scenario injected no claims that materialized")
        return failures
    if not m.binned_equals_float:
        failures.append("binned store margins differ from the float path")
    if not m.auc_injected >= spec.auc_floor:
        failures.append(
            f"scenario AUC {m.auc_injected:.3f} below floor {spec.auc_floor:.2f}"
        )
    if not m.percentile_separation >= spec.min_separation:
        failures.append(
            f"percentile separation {m.percentile_separation:.1f} below "
            f"floor {spec.min_separation:.1f}"
        )
    if spec.min_enrichment_margin is not None:
        if m.enrichment_margin is None:
            failures.append(
                "scenario declares min_enrichment_margin but the run "
                "produced no enrichment margin (missing 'enriched' tag?)"
            )
        elif not m.enrichment_margin >= spec.min_enrichment_margin:
            failures.append(
                f"enrichment margin {m.enrichment_margin:.3f} "
                f"(AUC {m.auc_injected:.3f} enriched vs "
                f"{m.base_auc_injected:.3f} base) below floor "
                f"{spec.min_enrichment_margin:.2f}"
            )
    if m.baseline_target_mean_percentile is not None:
        if m.ref_target_mean_percentile < (
            m.baseline_target_mean_percentile - MONOTONICITY_TOL
        ):
            failures.append(
                "monotonicity violated: target providers' mean percentile "
                f"dropped from {m.baseline_target_mean_percentile:.1f} "
                f"(baseline) to {m.ref_target_mean_percentile:.1f} (scenario) "
                "under the fixed reference classifier"
            )
    else:
        # A provider invented by the scenario has no baseline footprint to
        # compare against (and may copy a legitimate one, as the duplicate
        # FRN does); its *injected* claims must land in the suspicious half.
        if m.mean_injected_percentile < 50.0:
            failures.append(
                "injected claims' mean percentile "
                f"{m.mean_injected_percentile:.1f} is below the median"
            )
    failures.extend(_service_consistency(run))
    return failures


def _service_consistency(run: ScenarioRun, sample: int = 5) -> list[str]:
    """The serving read path must agree with the store on injected claims.

    Checked twice: directly against the :class:`AuditService` facade, and
    over the wire — a live HTTP server walked with the typed
    :class:`~repro.client.AuditClient` — so every scenario sweep
    exercises the full v2 surface (router, schemas, pagination, batch
    scoring), not just the in-process facade.
    """
    failures: list[str] = []
    rows = np.nonzero(run.mask)[0][:sample]
    for row in rows:
        key = run.store.claims.key_at(int(row))
        record = run.service.score_claim(*key)
        if record is None:
            failures.append(f"service returned no record for injected claim {key}")
            continue
        if record["margin"] != float(run.store.margin[row]):
            failures.append(f"service margin mismatch for injected claim {key}")
    top = run.service.top_suspicious(k=min(10, len(run.store)))
    scores = [r["score"] for r in top]
    if scores != sorted(scores, reverse=True):
        failures.append("top_suspicious output is not sorted by score")
    failures.extend(_http_consistency(run, rows))
    return failures


def _http_consistency(run: ScenarioRun, rows: np.ndarray) -> list[str]:
    """Drive the v2 HTTP API + client SDK against the scenario store."""
    import threading

    from repro.client import AuditClient
    from repro.serve.http import make_server

    failures: list[str] = []
    store = run.store
    server = make_server(run.service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = AuditClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        keys = [store.claims.key_at(int(row)) for row in rows]
        for row, key in zip(rows, keys):
            record = client.get_claim(*key)
            if record is None or record.margin != float(store.margin[row]):
                failures.append(
                    f"v2 claim endpoint disagrees with the store for {key}"
                )
        page = client.page_claims(limit=min(10, len(store)))
        expected = [float(store.margin[r]) for r in store.sus_order[: len(page.items)]]
        if [r.margin for r in page.items] != expected:
            failures.append(
                "v2 paginated list disagrees with the store's suspicion order"
            )
        if keys:
            response = client.batch_score(keys)
            batch_margins = [
                None if r is None else r.margin for r in response.results
            ]
            if batch_margins != [float(store.margin[r]) for r in rows]:
                failures.append(
                    "v2 batch scoring disagrees with the store margins"
                )
    finally:
        client.close()
        server.shutdown()
        server.server_close()
    return failures


def check_fault_invariants(
    store: ClaimScoreStore,
    classifier=None,
    builder=None,
    plan_name: str = "cold_flaky",
    iterations: int = 25,
    n_readers: int = 3,
    n_swaps: int = 20,
) -> list[str]:
    """The resilience invariant, end to end over the wire.

    Serves ``store`` (plus a sign-flipped shadow version) through a live
    HTTP server configured with a **deterministic fault plan** at every
    serving seam, a hair-trigger circuit breaker, a tight admission gate,
    and short deadlines — while reader threads hammer the data routes and
    a swapper thread flips the default version back and forth.

    Every observed response must be one of:

    * **correct** — a 200 whose precomputed values match the score store
      of exactly the version named in its envelope (never a mix);
    * **shed** — a 429 or 503 carrying ``Retry-After``;
    * **degraded** — a 200 batch response with ``"degraded": true``
      whose unscored slots are exactly the cold-capable keys.

    A 500, a missing ``Retry-After``, or a mixed-version body is a
    failure.  Returns violated invariants as messages (empty = pass).
    """
    import http.client as _http
    import json as _json
    import threading

    from repro.serve.http import make_server
    from repro.serve.registry import ModelRegistry
    from repro.serve.resilience import (
        CircuitBreaker,
        ResilienceConfig,
        chaos_plan,
    )

    failures: list[str] = []
    flipped = ClaimScoreStore(store.claims, -store.margin)
    plans = {"default": chaos_plan(plan_name), "flipped": chaos_plan(plan_name)}
    registry_ = ModelRegistry(max_delay_s=0.0005, cache_size=0)
    for name, version_store in (("default", store), ("flipped", flipped)):
        registry_.add(
            name,
            version_store,
            classifier=classifier,
            builder=builder,
            fault_plan=plans[name],
            breaker=CircuitBreaker(failure_threshold=2, reset_after_s=0.05),
        )
    registry_.activate("default")
    service = AuditService.from_registry(registry_)
    server = make_server(
        service,
        resilience=ResilienceConfig(
            max_concurrent=2,
            max_queue=2,
            max_queue_wait_s=0.05,
            default_deadline_s=2.0,
            socket_timeout_s=5.0,
            retry_after_s=1.0,
        ),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    port = server.server_address[1]

    margin_by_version = {
        "default": store.margin,
        "flipped": flipped.margin,
    }
    order_by_version = {
        "default": store.sus_order,
        "flipped": flipped.sus_order,
    }
    # A handful of precomputed keys, plus one cold-capable key (a
    # technology no claim uses at this cell, scored as a hypothetical).
    rows = [int(r) for r in np.linspace(0, len(store) - 1, 8).astype(int)]
    keys = [store.claims.key_at(r) for r in rows]
    cold_key = None
    if classifier is not None and builder is not None:
        pid, cell, _tech = keys[0]
        state = store.record(rows[0])["state"]
        for tech in (10, 40, 50, 70, 71):
            pos = store.positions(
                np.array([pid]), np.array([cell], dtype=np.uint64), np.array([tech])
            )
            if pos[0] < 0:
                cold_key = {
                    "provider_id": int(pid),
                    "cell": int(cell),
                    "technology": int(tech),
                    "state": str(state),
                }
                break
    batch_body = _json.dumps(
        {
            "claims": [
                {"provider_id": int(p), "cell": int(c), "technology": int(t)}
                for p, c, t in keys
            ]
            + ([cold_key] if cold_key is not None else [])
        }
    ).encode()

    lock = threading.Lock()

    def fail(message: str) -> None:
        with lock:
            if len(failures) < 20:
                failures.append(message)

    def check_shed(status: int, headers, where: str) -> None:
        if headers.get("Retry-After") is None:
            fail(f"{where}: {status} response without Retry-After")

    def classify(status: int, headers, doc, where: str) -> None:
        """Everything that is not 200/shed/degraded is a violation."""
        if status in (429, 503):
            check_shed(status, headers, where)
        elif status == 408:
            pass  # slow-client timeout: valid shed outcome
        elif status != 200:
            fail(f"{where}: unexpected status {status} ({doc})")

    def request(conn, method, path, body=None):
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        if response.will_close:
            conn.close()
        try:
            doc = _json.loads(raw) if raw else None
        except _json.JSONDecodeError:
            doc = None
        return response.status, dict(response.getheaders()), doc

    def reader() -> None:
        conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            for i in range(iterations):
                try:
                    # One precomputed single-claim read.
                    p, c, t = keys[i % len(keys)]
                    status, headers, doc = request(
                        conn, "GET", f"/v2/claims/{int(p)}/{int(c)}/{int(t)}"
                    )
                    classify(status, headers, doc, "claim")
                    if status == 200:
                        version = doc["model_version"]
                        row = rows[i % len(keys)]
                        if doc["record"]["margin"] != float(
                            margin_by_version[version][row]
                        ):
                            fail(f"claim: margin does not match version {version!r}")
                    # One page of the suspicion walk.
                    status, headers, doc = request(
                        conn, "GET", "/v2/claims?limit=5"
                    )
                    classify(status, headers, doc, "page")
                    if status == 200:
                        version = doc["model_version"]
                        expected = [
                            float(margin_by_version[version][r])
                            for r in order_by_version[version][:5]
                        ]
                        if [r["margin"] for r in doc["items"]] != expected:
                            fail(f"page: items mix versions under {version!r}")
                    # One batch with a cold-capable tail key.
                    status, headers, doc = request(
                        conn, "POST", "/v2/claims:batchScore", batch_body
                    )
                    classify(status, headers, doc, "batch")
                    if status == 200:
                        version = doc["model_version"]
                        margins = margin_by_version[version]
                        for j, result in enumerate(doc["results"][: len(keys)]):
                            if result is None:
                                fail("batch: precomputed slot came back null")
                            elif result["margin"] != float(margins[rows[j]]):
                                fail(
                                    "batch: precomputed slot does not match "
                                    f"version {version!r}"
                                )
                        if cold_key is not None:
                            cold_result = doc["results"][len(keys)]
                            if cold_result is None and not doc.get("degraded"):
                                fail(
                                    "batch: cold slot null without "
                                    "degraded: true"
                                )
                except (_http.HTTPException, OSError):
                    # Connection closed under us (shed/timeout hygiene):
                    # reconnect and continue — not a correctness failure.
                    conn.close()
                    conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        finally:
            conn.close()

    def swapper() -> None:
        conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            for i in range(n_swaps):
                target = "flipped" if i % 2 == 0 else "default"
                try:
                    status, _headers, doc = request(
                        conn, "POST", f"/v2/models/{target}:activate"
                    )
                    if status != 200:
                        fail(f"activate: unexpected status {status} ({doc})")
                except (_http.HTTPException, OSError):
                    conn.close()
                    conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        finally:
            conn.close()

    threads = [threading.Thread(target=reader) for _ in range(n_readers)]
    threads.append(threading.Thread(target=swapper))
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    fired = sum(
        seam["fired"] for plan in plans.values() for seam in plan.counts().values()
    )
    if fired == 0:
        failures.append(
            f"fault plan {plan_name!r} never fired — the chaos run was vacuous"
        )
    return failures


def check_pool_fault_invariants(
    store: ClaimScoreStore,
    workdir: str,
    plan_name: str = "store_read_flaky",
    n_workers: int = 2,
    iterations: int = 15,
    n_readers: int = 3,
    n_swaps: int = 8,
    n_kills: int = 2,
) -> list[str]:
    """The resilience invariant under a *multi-process* fleet.

    :func:`check_fault_invariants` hammers one process; this serves
    ``store`` (plus a sign-flipped shadow version) through a live
    :class:`~repro.serve.workers.WorkerPool` — every worker running the
    chaos plan at its serving seams under a tight admission gate — while
    reader threads hammer the data routes, a swapper drives fleet-wide
    two-phase swaps, and a killer SIGKILLs live workers mid-traffic.

    Invariants, on top of everything the single-process check demands
    (never a 500, sheds carry ``Retry-After``, every 200 internally
    consistent with exactly the version in its envelope):

    * a swap either commits on every worker or aborts on all of them —
      an abort caused by a mid-swap worker death is acceptable, a mixed
      response is not;
    * every killed worker is respawned (the pool's restart counter
      moves and the fleet answers with ``n_workers`` pids again), and
      the respawn serves the *current* default;
    * the chaos plans actually fired inside the workers (reported over
      the control pipes — a fault plan's counters cannot cross a
      process boundary on their own).

    Returns violated invariants as messages (empty = pass).
    """
    import http.client as _http
    import json as _json
    import os as _os
    import signal as _signal
    import threading

    from repro.serve.resilience import ResilienceConfig
    from repro.serve.workers import WorkerPool, WorkerVersionSpec

    failures: list[str] = []
    flipped = ClaimScoreStore(store.claims, -store.margin)
    default_dir = _os.path.join(workdir, "pool-default")
    flipped_dir = _os.path.join(workdir, "pool-flipped")
    store.save_sharded(default_dir, shards=1)
    flipped.save_sharded(flipped_dir, shards=1)
    specs = [
        WorkerVersionSpec(
            name="default", path=default_dir, chaos_plan=plan_name
        ),
        WorkerVersionSpec(
            name="flipped", path=flipped_dir, chaos_plan=plan_name
        ),
    ]
    pool = WorkerPool(
        specs,
        n_workers=n_workers,
        resilience=ResilienceConfig(
            max_concurrent=2,
            max_queue=2,
            max_queue_wait_s=0.05,
            default_deadline_s=2.0,
            socket_timeout_s=5.0,
            retry_after_s=1.0,
        ),
    )
    pool.start()
    port = pool.port

    margin_by_version = {"default": store.margin, "flipped": flipped.margin}
    order_by_version = {
        "default": store.sus_order,
        "flipped": flipped.sus_order,
    }
    rows = [int(r) for r in np.linspace(0, len(store) - 1, 8).astype(int)]
    keys = [store.claims.key_at(r) for r in rows]
    batch_body = _json.dumps(
        {
            "claims": [
                {"provider_id": int(p), "cell": int(c), "technology": int(t)}
                for p, c, t in keys
            ]
        }
    ).encode()

    lock = threading.Lock()

    def fail(message: str) -> None:
        with lock:
            if len(failures) < 20:
                failures.append(message)

    def classify(status: int, headers, doc, where: str) -> None:
        if status in (429, 503):
            if headers.get("Retry-After") is None:
                fail(f"{where}: {status} response without Retry-After")
        elif status == 408:
            pass  # slow-client timeout: valid shed outcome
        elif status != 200:
            fail(f"{where}: unexpected status {status} ({doc})")

    def request(conn, method, path, body=None):
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        if response.will_close:
            conn.close()
        try:
            doc = _json.loads(raw) if raw else None
        except _json.JSONDecodeError:
            doc = None
        return response.status, dict(response.getheaders()), doc

    def reader() -> None:
        conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            for i in range(iterations):
                try:
                    p, c, t = keys[i % len(keys)]
                    status, headers, doc = request(
                        conn, "GET", f"/v2/claims/{int(p)}/{int(c)}/{int(t)}"
                    )
                    classify(status, headers, doc, "claim")
                    if status == 200:
                        version = doc["model_version"]
                        row = rows[i % len(keys)]
                        if doc["record"]["margin"] != float(
                            margin_by_version[version][row]
                        ):
                            fail(
                                f"claim: margin does not match version "
                                f"{version!r}"
                            )
                    status, headers, doc = request(
                        conn, "GET", "/v2/claims?limit=5"
                    )
                    classify(status, headers, doc, "page")
                    if status == 200:
                        version = doc["model_version"]
                        expected = [
                            float(margin_by_version[version][r])
                            for r in order_by_version[version][:5]
                        ]
                        if [r["margin"] for r in doc["items"]] != expected:
                            fail(f"page: items mix versions under {version!r}")
                    status, headers, doc = request(
                        conn, "POST", "/v2/claims:batchScore", batch_body
                    )
                    classify(status, headers, doc, "batch")
                    if status == 200:
                        version = doc["model_version"]
                        margins = margin_by_version[version]
                        for j, result in enumerate(doc["results"]):
                            if result is None:
                                fail("batch: precomputed slot came back null")
                            elif result["margin"] != float(margins[rows[j]]):
                                fail(
                                    "batch: precomputed slot does not match "
                                    f"version {version!r}"
                                )
                except (_http.HTTPException, OSError):
                    # Worker killed under us / connection shed: reconnect
                    # and keep hammering — not a correctness failure.
                    conn.close()
                    conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        finally:
            conn.close()

    def swapper() -> None:
        for i in range(n_swaps):
            target = "flipped" if i % 2 == 0 else "default"
            try:
                pool.activate(target)
            except RuntimeError:
                # A worker died mid-stage: the two-phase protocol aborts
                # with the fleet untouched — acceptable under kill churn.
                pass
            time.sleep(0.01)

    def killer() -> None:
        for _ in range(n_kills):
            time.sleep(0.15)
            pids = pool.worker_pids()
            if not pids:
                continue
            try:
                _os.kill(pids[0], _signal.SIGKILL)
            except ProcessLookupError:
                pass

    threads = [threading.Thread(target=reader) for _ in range(n_readers)]
    threads.append(threading.Thread(target=swapper))
    threads.append(threading.Thread(target=killer))
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Respawn: every kill must be healed — the restart counter moved
        # and the fleet answers with a full complement again.  The
        # monitor detects deaths asynchronously, so wait for it.
        restart_counter = pool.metrics.counter("pool_worker_restarts_total")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if (
                restart_counter.value >= n_kills
                and len(pool.ping()) == n_workers
            ):
                break
            time.sleep(0.05)
        if restart_counter.value < n_kills:
            failures.append(
                f"only {restart_counter.value} worker respawns observed "
                f"for {n_kills} kills"
            )
        if len(pool.ping()) != n_workers:
            failures.append(
                "fleet never returned to full strength after kill churn"
            )
        # Post-churn coherence: one more fleet swap commits cleanly and
        # every worker serves the committed default.
        try:
            pool.activate("default")
        except RuntimeError as exc:
            failures.append(f"post-churn swap failed: {exc}")
        else:
            for desc in pool.describe():
                if desc["default"] != "default":
                    failures.append(
                        f"worker {desc['index']} serves {desc['default']!r} "
                        "after the post-churn swap"
                    )
        # Vacuousness check: the plans must verifiably fire *inside* the
        # workers.  Counts die with a killed process, so drive a little
        # fresh traffic at the healed fleet before reading them.
        conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            for _ in range(2 * n_workers):
                try:
                    request(conn, "POST", "/v2/claims:batchScore", batch_body)
                except (_http.HTTPException, OSError):
                    conn.close()
                    conn = _http.HTTPConnection("127.0.0.1", port, timeout=10)
        finally:
            conn.close()
        fired = sum(
            seam["fired"]
            for seams in pool.chaos_counts().values()
            for seam in seams.values()
        )
        if fired == 0:
            failures.append(
                f"fault plan {plan_name!r} never fired in any worker — "
                "the chaos run was vacuous"
            )
    finally:
        pool.stop()
    return failures


def run_suite(
    baseline: HarnessBaseline,
    names: list[str] | None = None,
    intensity: float = 1.0,
) -> dict[str, ScenarioRun]:
    """Run (a subset of) the registry; returns runs keyed by scenario name."""
    out: dict[str, ScenarioRun] = {}
    for name in names if names is not None else registry.names():
        out[name] = run_scenario(name, baseline, intensity)
    return out


def intensity_sweep(
    name: str,
    baseline: HarnessBaseline,
    intensities: tuple[float, ...] = (0.5, 1.0),
) -> list[ScenarioMetrics]:
    """The metamorphic sweep behind invariant 4: as a scenario's intensity
    rises, the targeted providers' mean suspicion percentile under the
    fixed reference classifier must be non-decreasing (within tolerance)."""
    runs = [run_scenario(name, baseline, i) for i in sorted(intensities)]
    return [r.metrics for r in runs]
