"""The adversarial scenario mutators (one per documented claim pathology).

Every scenario is a seeded function ``(config, intensity) -> ScenarioWorld``
registered under a stable name.  Mutations run inside
:func:`repro.core.pipeline.build_world` through
:class:`~repro.core.pipeline.PipelineHooks`, so each pathology propagates
through the *entire* simulated data chain: injected claims draw (or fail
to draw) challenges, shape the release timeline, and leave the
crowdsource-absence fingerprints (no Ookla devices, no attributed MLab
tests) that make them detectable — exactly as in the real NBM.

Scenario catalogue
------------------

==============================  ==============================================
Name                            Pathology
==============================  ==============================================
``blanket_dsl_overclaim``       a DSL incumbent blankets whole states with
                                copper claims far beyond its plant
``satellite_everywhere``        a terrestrial ISP files a GSO-satellite-style
                                "everywhere" blanket with no plant at all
``stale_release_carryover``     quiet removals are suppressed: stale
                                overclaims survive every minor release
``phantom_provider``            a provider with zero true footprint files
                                fiber claims around real towns
``border_hex_spillover``        buffered footprints spill one hex ring past
                                every provider's true service edge
``challenge_suppressed_state``  top campaign states file no challenges, so
                                their overclaims carry no labels
``duplicate_frn_filing``        one operator files twice under two FRNs,
                                doubling its (over)claims
``speed_tier_inflation``        marketing-driven filings: absurd advertised
                                tiers plus a buffered footprint
``consultant_template_epidemic`` many small ISPs file word-identical
                                consultant text plus buffered overclaims
``overclaim_surge``             every terrestrial provider's overclaim rate
                                surges at once (the worst-map regime)
``speed_overstatement_gradient`` fast-tier claims spread over cells served
                                only by slow plant — just the measured-speed
                                enrichment sees the gap
``challenge_validated_overclaim`` overclaims into a provider's own served
                                cells, later conceded under challenge — the
                                challenge-join features carry the signal
==============================  ==============================================

All randomness is drawn from ``stream_rng(config.seed, "scenario", name,
...)`` so a scenario world is bitwise-reproducible from (config, name,
intensity) alone — the property the committed golden metrics rely on.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.pipeline import PipelineHooks, SimulationWorld, build_world
from repro.fcc.bdc import AvailabilityTable, ClaimKey
from repro.fcc.challenges import ChallengeOutcome, ChallengeReason, ChallengeRecord
from repro.fcc.providers import (
    FootprintPair,
    Methodology,
    Provider,
    ProviderUniverse,
    ServiceTier,
    methodology_text,
)
from repro.fcc.releases import ReleaseTimeline, RemovalCause
from repro.fcc.states import STATES, challenge_weights
from repro.geo import hexgrid
from repro.scenarios.registry import ScenarioWorld, register
from repro.utils.rng import stream_rng

__all__ = [
    "SATELLITE_EVERYWHERE_PID",
    "PHANTOM_PROVIDER_PID",
    "DUPLICATE_FRN_PID",
]

#: Provider ids of scenario-injected providers (kept clear of both the
#: generated id range and the JCC case study's 999_999).
SATELLITE_EVERYWHERE_PID = 999_101
PHANTOM_PROVIDER_PID = 999_102
DUPLICATE_FRN_PID = 999_103


# -- shared helpers ----------------------------------------------------------


def _rng(config: ScenarioConfig, name: str, *parts):
    return stream_rng(config.seed, "scenario", name, *parts)


def _sample_cells(rng, cells, count: int) -> set[int]:
    """Deterministically sample ``count`` cells from an iterable of ints."""
    arr = sorted(int(c) for c in cells)
    if count >= len(arr):
        return set(arr)
    if count <= 0:
        return set()
    idx = rng.choice(len(arr), size=count, replace=False)
    return {arr[i] for i in idx}


def _extend_claimed(
    universe: ProviderUniverse,
    key: tuple[int, str, int],
    extra: set[int],
) -> None:
    """Grow one footprint's *claimed* cells (true cells untouched)."""
    fp = universe.footprints[key]
    universe.footprints[key] = FootprintPair(
        fp.true_cells, frozenset(fp.claimed_cells | extra)
    )


def _occupied_cells(fabric, abbr: str, cache: dict) -> set[int]:
    """Occupied cells of one state, memoized per mutator invocation."""
    occupied = cache.get(abbr)
    if occupied is None:
        occupied = set(fabric.cells_in_state(abbr))
        cache[abbr] = occupied
    return occupied


def _ring_candidates(
    fabric, abbr: str, fp: FootprintPair, occupied_cache: dict
) -> set[int]:
    """Occupied in-state cells one hex ring beyond a claimed footprint."""
    occupied = _occupied_cells(fabric, abbr, occupied_cache)
    ring: set[int] = set()
    for cell in fp.claimed_cells:
        ring.update(int(c) for c in hexgrid.grid_disk(cell, 1))
    return (ring & occupied) - fp.claimed_cells


def _claim_truth(table: AvailabilityTable) -> tuple[list[ClaimKey], np.ndarray, np.ndarray]:
    """Distinct claims with overclaim truth and state index."""
    keys = table.claim_keys()
    uniq, first = np.unique(keys, return_index=True)
    claims = [
        (int(k["provider_id"]), int(k["cell"]), int(k["technology"])) for k in uniq
    ]
    return claims, ~table.truly_served[first], table.state_idx[first]


def _materialized(world: SimulationWorld, keys) -> frozenset[ClaimKey]:
    """Restrict candidate injected keys to claims present in the table."""
    keys = sorted(set(keys))
    if not keys:
        return frozenset()
    claims = world.table.columnar()
    pos = claims.positions(
        np.array([k[0] for k in keys], dtype=np.int64),
        np.array([k[1] for k in keys], dtype=np.uint64),
        np.array([k[2] for k in keys], dtype=np.int64),
    )
    return frozenset(k for k, p in zip(keys, pos) if p >= 0)


def _world(
    name: str,
    config: ScenarioConfig,
    intensity: float,
    hooks: PipelineHooks,
    candidates: list[ClaimKey],
    targets: set[int],
    notes: dict | None = None,
) -> ScenarioWorld:
    world = build_world(config, hooks=hooks)
    return ScenarioWorld(
        name=name,
        world=world,
        injected_keys=_materialized(world, candidates),
        target_provider_ids=frozenset(targets),
        intensity=intensity,
        notes=notes or {},
    )


def _scale(intensity: float, n: int, fraction: float = 1.0) -> int:
    return int(round(intensity * fraction * n))


# -- filing-side scenarios ---------------------------------------------------


@register(
    "blanket_dsl_overclaim",
    description=(
        "A copper incumbent blankets each of its states with DSL claims "
        "far beyond its true plant (the Form-477 census-block habit at "
        "its worst)."
    ),
    auc_floor=0.80,
    min_separation=10.0,
    tags=("filing",),
)
def blanket_dsl_overclaim(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "blanket_dsl_overclaim")

    def post_universe(fabric, universe):
        dsl_keys = [k for k in universe.footprints if k[2] == 10]
        if not dsl_keys:
            raise RuntimeError("no DSL footprints in this world; enlarge the scenario")
        # The incumbent with the widest copper plant files the blanket.
        totals: dict[int, int] = {}
        for pid, _abbr, _tech in dsl_keys:
            totals[pid] = totals.get(pid, 0) + len(
                universe.footprints[(pid, _abbr, 10)].true_cells
            )
        target = min(p for p, t in totals.items() if t == max(totals.values()))
        targets.add(target)
        # Blanket the provider's biggest copper states (capped at four so
        # a national incumbent doesn't swamp the whole filing table).
        keys = sorted(
            (k for k in dsl_keys if k[0] == target),
            key=lambda k: (-len(universe.footprints[k].true_cells), k),
        )[:4]
        for key in sorted(keys):
            _pid, abbr, _tech = key
            occupied = set(fabric.cells_in_state(abbr))
            extra_pool = occupied - universe.footprints[key].claimed_cells
            extra = _sample_cells(rng, extra_pool, _scale(intensity, len(extra_pool)))
            _extend_claimed(universe, key, extra)
            candidates.extend((target, cell, 10) for cell in extra)

    return _world(
        "blanket_dsl_overclaim",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        targets,
    )


@register(
    "satellite_everywhere",
    description=(
        "A terrestrial ISP files a GSO-satellite-style blanket — every "
        "occupied cell of several states — with no plant behind it."
    ),
    auc_floor=0.80,
    min_separation=10.0,
    tags=("filing", "new-provider"),
)
def satellite_everywhere(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []

    def post_universe(fabric, universe):
        by_size = sorted(
            (s.abbr for s in STATES if fabric.cells_in_state(s.abbr)),
            key=lambda a: (-len(fabric.cells_in_state(a)), a),
        )
        n_states = max(1, _scale(intensity, 6, 1.0))
        chosen = by_size[:n_states]
        tier = ServiceTier(
            technology=60, max_download_mbps=100.0, max_upload_mbps=12.0, low_latency=False
        )
        name = "Everywhere Broadband Inc"
        provider = Provider(
            provider_id=SATELLITE_EVERYWHERE_PID,
            name=name,
            brand_name="Everywhere Broadband",
            holding_company=name,
            size_class="local",  # *not* a real satellite operator
            states=tuple(chosen),
            tiers=(tier,),
            methodology=Methodology.CENSUS_BLOCKS,
            methodology_text=methodology_text(Methodology.CENSUS_BLOCKS, name),
            overclaim_rate=1.0,
            concede_propensity=0.9,
            self_correction_rate=0.0,
            frns=(39_999_101,),
            contact_email="noc@everywherebroadband.com",
            email_domain="everywherebroadband.com",
            hq_address="1 Blanket Way, Springfield, TX 75001",
            hq_state=chosen[0],
        )
        footprints = {}
        for abbr in chosen:
            cells = frozenset(int(c) for c in fabric.cells_in_state(abbr))
            footprints[(abbr, 60)] = FootprintPair(frozenset(), cells)
            candidates.extend((SATELLITE_EVERYWHERE_PID, cell, 60) for cell in cells)
        universe.add_provider(provider, footprints)

    return _world(
        "satellite_everywhere",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        {SATELLITE_EVERYWHERE_PID},
    )


@register(
    "phantom_provider",
    description=(
        "A provider with zero true footprint files fiber claims around "
        "real towns in two states — plant that simply does not exist."
    ),
    auc_floor=0.80,
    min_separation=10.0,
    tags=("filing", "new-provider"),
)
def phantom_provider(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    rng = _rng(config, "phantom_provider")

    def post_universe(fabric, universe):
        ranked = sorted(
            (s.abbr for s in STATES if fabric.towns_in_state(s.abbr)),
            key=lambda a: (-len(fabric.towns_in_state(a)), a),
        )
        chosen = ranked[:2]
        tier = ServiceTier(
            technology=50, max_download_mbps=940.0, max_upload_mbps=940.0, low_latency=True
        )
        name = "Lightspeed Fiber Holdings LLC"
        provider = Provider(
            provider_id=PHANTOM_PROVIDER_PID,
            name=name,
            brand_name="Lightspeed Fiber",
            holding_company=name,
            size_class="local",
            states=tuple(chosen),
            tiers=(tier,),
            methodology=Methodology.INFRASTRUCTURE_MAPS,
            methodology_text=methodology_text(Methodology.INFRASTRUCTURE_MAPS, name),
            overclaim_rate=1.0,
            concede_propensity=0.1,
            self_correction_rate=0.0,
            frns=(39_999_102,),
            contact_email="noc@lightspeedfiber.com",
            email_domain="lightspeedfiber.com",
            hq_address="500 Commerce Boulevard, Springfield, DE 19901",
            hq_state=chosen[0],
        )
        res = fabric.config.hex_resolution
        footprints = {}
        for abbr in chosen:
            towns = sorted(
                fabric.towns_in_state(abbr), key=lambda t: -t.weight
            )[:3]
            occupied = set(fabric.cells_in_state(abbr))
            cells: set[int] = set()
            for town in towns:
                center = hexgrid.latlng_to_cell(town.lat, town.lng, res)
                cells.update(int(c) for c in hexgrid.grid_disk(center, 5))
            cells &= occupied
            cells = _sample_cells(rng, cells, _scale(intensity, len(cells)))
            footprints[(abbr, 50)] = FootprintPair(frozenset(), frozenset(cells))
            candidates.extend((PHANTOM_PROVIDER_PID, cell, 50) for cell in cells)
        universe.add_provider(provider, footprints)

    return _world(
        "phantom_provider",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        {PHANTOM_PROVIDER_PID},
    )


@register(
    "border_hex_spillover",
    description=(
        "Every terrestrial footprint spills one hex ring past its true "
        "edge — the universal sloppy-buffer / propagation-margin error."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("filing", "global"),
)
def border_hex_spillover(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "border_hex_spillover")

    def post_universe(fabric, universe):
        occupied_cache: dict[str, set[int]] = {}
        for key in sorted(universe.footprints):
            pid, abbr, tech = key
            if tech == 60:
                continue
            fp = universe.footprints[key]
            ring = _ring_candidates(fabric, abbr, fp, occupied_cache)
            extra = _sample_cells(
                rng, ring, _scale(intensity, len(ring), fraction=0.5)
            )
            if not extra:
                continue
            _extend_claimed(universe, key, extra)
            targets.add(pid)
            candidates.extend((pid, cell, tech) for cell in extra)

    return _world(
        "border_hex_spillover",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        targets,
    )


@register(
    "duplicate_frn_filing",
    description=(
        "One operator files the same footprint twice under a second FRN "
        "— affiliated-entity double filing, overclaims included."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("filing", "new-provider"),
)
def duplicate_frn_filing(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []

    def post_universe(fabric, universe):
        overclaims: dict[int, int] = {}
        for (pid, _abbr, tech), fp in universe.footprints.items():
            if tech == 60:
                continue
            overclaims[pid] = overclaims.get(pid, 0) + len(fp.overclaimed_cells)
        donor_id = min(p for p, n in overclaims.items() if n == max(overclaims.values()))
        donor = universe.provider(donor_id)
        clone = replace(
            donor,
            provider_id=DUPLICATE_FRN_PID,
            frns=(39_999_103,),
        )
        keys = sorted(
            (abbr, tech)
            for (pid, abbr, tech) in universe.footprints
            if pid == donor_id
        )
        keep = keys[: max(1, _scale(intensity, len(keys)))]
        footprints = {}
        for abbr, tech in keep:
            fp = universe.footprints[(donor_id, abbr, tech)]
            footprints[(abbr, tech)] = fp
            candidates.extend(
                (DUPLICATE_FRN_PID, cell, tech) for cell in fp.overclaimed_cells
            )
        universe.add_provider(clone, footprints)

    return _world(
        "duplicate_frn_filing",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        {DUPLICATE_FRN_PID},
    )


@register(
    "speed_tier_inflation",
    description=(
        "Marketing-driven filings: a few small ISPs advertise absurd "
        "gigabit-symmetric tiers on legacy plant while buffering their "
        "footprints outward."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("filing",),
)
def speed_tier_inflation(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "speed_tier_inflation")

    def post_universe(fabric, universe):
        def _true_total(p):
            return sum(
                len(fp.true_cells)
                for (pid, _a, _t), fp in universe.footprints.items()
                if pid == p.provider_id
            )

        locals_ = sorted(
            (
                p
                for p in universe.providers
                if p.size_class == "local" and any(t.technology in (10, 70, 71) for t in p.tiers)
            ),
            key=lambda p: (-_true_total(p), p.provider_id),
        )
        chosen = locals_[: max(1, _scale(intensity, 3))]
        occupied_cache: dict[str, set[int]] = {}
        for provider in chosen:
            targets.add(provider.provider_id)
            inflated = tuple(
                tier
                if tier.technology == 60
                else ServiceTier(tier.technology, 2000.0, 2000.0, True)
                for tier in provider.tiers
            )
            universe.replace_provider(replace(provider, tiers=inflated))
            for key in sorted(
                k for k in universe.footprints if k[0] == provider.provider_id
            ):
                _pid, abbr, tech = key
                if tech == 60:
                    continue
                occupied = _occupied_cells(fabric, abbr, occupied_cache)
                fp = universe.footprints[key]
                pool = occupied - fp.claimed_cells
                # The marketing footprint grows with the marketing tier:
                # roughly double the plant's true extent gets claimed.
                extra = _sample_cells(
                    rng, pool, _scale(intensity, len(fp.true_cells), fraction=1.0)
                )
                _extend_claimed(universe, key, extra)
                candidates.extend((provider.provider_id, cell, tech) for cell in extra)

    return _world(
        "speed_tier_inflation",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        targets,
        notes={"inflated_download_mbps": 2000.0},
    )


@register(
    "consultant_template_epidemic",
    description=(
        "A consultant's word-identical methodology text spreads across "
        "many small ISPs, each arriving with a freshly buffered footprint."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("filing", "methodology"),
)
def consultant_template_epidemic(
    config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "consultant_template_epidemic")

    def post_universe(fabric, universe):
        locals_ = sorted(
            (p for p in universe.providers if p.size_class == "local"),
            key=lambda p: p.provider_id,
        )
        chosen = locals_[: max(2, _scale(intensity, 6))]
        occupied_cache: dict[str, set[int]] = {}
        template = methodology_text(Methodology.CONSULTANT_TEMPLATE, "")
        for provider in chosen:
            targets.add(provider.provider_id)
            universe.replace_provider(
                replace(
                    provider,
                    methodology=Methodology.CONSULTANT_TEMPLATE,
                    methodology_text=template,
                )
            )
            for key in sorted(
                k for k in universe.footprints if k[0] == provider.provider_id
            ):
                _pid, abbr, tech = key
                if tech == 60:
                    continue
                occupied = _occupied_cells(fabric, abbr, occupied_cache)
                fp = universe.footprints[key]
                pool = occupied - fp.claimed_cells
                # The consultant's buffer roughly half-again the plant.
                extra = _sample_cells(
                    rng, pool, _scale(intensity, len(fp.true_cells), fraction=0.5)
                )
                _extend_claimed(universe, key, extra)
                candidates.extend((provider.provider_id, cell, tech) for cell in extra)

    return _world(
        "consultant_template_epidemic",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        targets,
    )


@register(
    "overclaim_surge",
    description=(
        "Every terrestrial provider's overclaiming surges at once — the "
        "worst-map regime an auditor could face."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("filing", "global"),
)
def overclaim_surge(config: ScenarioConfig, intensity: float = 1.0) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "overclaim_surge")

    def post_universe(fabric, universe):
        occupied_cache: dict[str, set[int]] = {}
        for key in sorted(universe.footprints):
            pid, abbr, tech = key
            if tech == 60:
                continue
            fp = universe.footprints[key]
            occupied = _occupied_cells(fabric, abbr, occupied_cache)
            pool = occupied - fp.claimed_cells
            extra = _sample_cells(
                rng, pool, _scale(intensity, len(fp.true_cells), fraction=0.35)
            )
            if not extra:
                continue
            _extend_claimed(universe, key, extra)
            targets.add(pid)
            candidates.extend((pid, cell, tech) for cell in extra)

    return _world(
        "overclaim_surge",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe),
        candidates,
        targets,
    )


# -- challenge- and release-side scenarios -----------------------------------


@register(
    "challenge_suppressed_state",
    description=(
        "The loudest campaign states go silent: no challenges are filed "
        "there, so their overclaims never earn labels — the model must "
        "flag them from features alone."
    ),
    auc_floor=0.60,
    min_separation=5.0,
    tags=("challenge",),
)
def challenge_suppressed_state(
    config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    suppressed: list[str] = []
    candidates: list[ClaimKey] = []
    targets: set[int] = set()

    def post_challenges(table, universe, challenges):
        weights = challenge_weights()
        by_weight = sorted(
            {r.state for r in challenges}, key=lambda a: (-weights[a], a)
        )
        n = max(1, _scale(intensity, 2))
        suppressed.extend(by_weight[:n])
        claims, overclaimed, state_idx = _claim_truth(table)
        abbrs = {i for i, s in enumerate(STATES) if s.abbr in suppressed}
        for claim, bad, sidx in zip(claims, overclaimed, state_idx):
            if bad and int(sidx) in abbrs:
                candidates.append(claim)
                targets.add(claim[0])
        return [r for r in challenges if r.state not in suppressed]

    return _world(
        "challenge_suppressed_state",
        config,
        intensity,
        PipelineHooks(post_challenges=post_challenges),
        candidates,
        targets,
        notes={"suppressed_states": suppressed},
    )


@register(
    "stale_release_carryover",
    description=(
        "Quiet removals never happen: overclaims that FCC quality checks "
        "or self-audits would have silently withdrawn survive every "
        "minor release (and the change-label source dries up)."
    ),
    auc_floor=0.55,
    min_separation=3.0,
    tags=("release",),
)
def stale_release_carryover(
    config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    rng = _rng(config, "stale_release_carryover")

    def post_timeline(table, challenges, timeline):
        quiet = [
            e for e in timeline.removals if e.cause != RemovalCause.PUBLIC_CHALLENGE
        ]
        keep_mask = rng.random(len(quiet)) >= intensity
        kept = [e for e, keep in zip(quiet, keep_mask) if keep]
        for event, keep in zip(quiet, keep_mask):
            if not keep:
                candidates.append(event.claim)
                targets.add(event.claim[0])
        removals = [
            e for e in timeline.removals if e.cause == RemovalCause.PUBLIC_CHALLENGE
        ] + kept
        return ReleaseTimeline(
            initial_claims=timeline.initial_claims,
            removals=removals,
            n_minor_releases=timeline.n_minor_releases,
        )

    return _world(
        "stale_release_carryover",
        config,
        intensity,
        PipelineHooks(post_timeline=post_timeline),
        candidates,
        targets,
    )


# -- measured-truth (enriched) scenarios --------------------------------------


@register(
    "speed_overstatement_gradient",
    description=(
        "Multi-tier providers extend their fast tech's claimed footprint "
        "over cells only their slow plant truly serves.  The claims are "
        "indistinguishable from the provider's legitimate fast filings "
        "in every base feature — only the measured-truth overstatement "
        "gradient exposes the gap between the 500+ Mbps claim and the "
        "~10 Mbps the plant actually delivers there."
    ),
    auc_floor=0.72,
    min_separation=10.0,
    tags=("filing", "enriched"),
    min_enrichment_margin=0.02,
)
def speed_overstatement_gradient(
    config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    claim_state: dict[ClaimKey, str] = {}
    rng = _rng(config, "speed_overstatement_gradient")

    def post_universe(fabric, universe):
        # Each chosen provider already sells a fast tier (cable/fiber-class
        # speeds) alongside a slow one, and quietly extends the *fast*
        # tech's claimed footprint over cells only its slow plant truly
        # serves.  The injected claims share provider, technology, and
        # advertised speeds with thousands of that provider's legitimate
        # filings — and their cells have devices and attributed tests —
        # so no base feature separates them.  Only the measured-truth
        # tiles (~10 Mbps medians under a 500+ Mbps claim) carry the
        # gradient.
        expansions = []  # (pool_size, pid, fast_key, pool)
        for provider in universe.providers:
            pid = provider.provider_id
            fast_techs = {
                t.technology
                for t in provider.tiers
                if t.technology != 60 and t.max_download_mbps >= 300.0
            }
            slow_techs = {
                t.technology
                for t in provider.tiers
                if t.technology != 60 and t.max_download_mbps <= 100.0
            }
            if not fast_techs or not slow_techs:
                continue
            for key in sorted(k for k in universe.footprints if k[0] == pid):
                _pid, abbr, tech = key
                if tech not in fast_techs:
                    continue
                slow_served: set[int] = set()
                for s_tech in slow_techs:
                    fp = universe.footprints.get((pid, abbr, s_tech))
                    if fp is not None:
                        slow_served |= set(fp.true_cells)
                pool = slow_served - universe.footprints[key].claimed_cells
                if pool:
                    expansions.append((len(pool), pid, key, pool))
        expansions.sort(key=lambda e: (-e[0], e[1], e[2]))
        budget = max(50, _scale(intensity, 2500))
        for _size, pid, key, pool in expansions:
            if budget <= 0:
                break
            extra = _sample_cells(
                rng, pool, min(budget, _scale(intensity, len(pool)))
            )
            if not extra:
                continue
            budget -= len(extra)
            _extend_claimed(universe, key, extra)
            targets.add(pid)
            _pid, abbr, tech = key
            for cell in extra:
                claim = (pid, cell, tech)
                candidates.append(claim)
                claim_state[claim] = abbr

    def post_challenges(table, universe, challenges):
        # Subscribers on the slow plant notice the fast-tier claim: a
        # speed-challenge wave hits a fifth of the extended filings.
        # The rest stay unlabelled — the model has to carry the measured
        # gradient from the challenged fifth to the quiet majority.
        keys = sorted(set(candidates))
        if not keys:
            return challenges
        claims = table.columnar()
        pos = claims.positions(
            np.array([k[0] for k in keys], dtype=np.int64),
            np.array([k[1] for k in keys], dtype=np.uint64),
            np.array([k[2] for k in keys], dtype=np.int64),
        )
        materialized = [k for k, p in zip(keys, pos) if p >= 0]
        next_id = max((r.challenge_id for r in challenges), default=0) + 1
        appended = []
        for claim in materialized:
            if rng.random() >= 0.2:
                continue
            pid, cell, tech = claim
            conceded = bool(rng.random() < 0.75)
            appended.append(
                ChallengeRecord(
                    challenge_id=next_id,
                    provider_id=pid,
                    cell=cell,
                    technology=tech,
                    state=claim_state[claim],
                    n_bsls=int(rng.integers(1, 4)),
                    reason=ChallengeReason.SPEEDS_UNAVAILABLE,
                    outcome=(
                        ChallengeOutcome.PROVIDER_CONCEDED
                        if conceded
                        else ChallengeOutcome.FCC_UPHELD
                    ),
                    fcc_adjudicated=not conceded,
                    resolved_release=int(
                        rng.integers(1, 5) if conceded else rng.integers(8, 15)
                    ),
                    major_release=0,
                )
            )
            next_id += 1
        return list(challenges) + appended

    return _world(
        "speed_overstatement_gradient",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe, post_challenges=post_challenges),
        candidates,
        targets,
    )


@register(
    "challenge_validated_overclaim",
    description=(
        "Multi-technology providers quietly extend one technology's "
        "claimed footprint into cells their other plant already serves, "
        "then concede when challenged.  The cells look served to every "
        "base feature; the conceded/upheld challenge records joined by "
        "the enrichment layer are the only durable fingerprint."
    ),
    auc_floor=0.70,
    min_separation=10.0,
    tags=("filing", "challenge", "enriched"),
    min_enrichment_margin=0.08,
)
def challenge_validated_overclaim(
    config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    candidates: list[ClaimKey] = []
    targets: set[int] = set()
    claim_state: dict[ClaimKey, str] = {}
    rng = _rng(config, "challenge_validated_overclaim")

    def post_universe(fabric, universe):
        multi = sorted(
            {
                pid
                for (pid, _a, _t) in universe.footprints
                if len({t for (p, _s, t) in universe.footprints if p == pid and t != 60})
                >= 2
            }
        )
        chosen = multi[: max(2, _scale(intensity, 6))]
        for pid in chosen:
            keys = sorted(
                k for k in universe.footprints if k[0] == pid and k[2] != 60
            )
            for key in keys:
                _pid, abbr, tech = key
                # Cells the provider truly serves through *other* plant in
                # the same state but has never claimed under this tech.
                served_elsewhere: set[int] = set()
                for other in keys:
                    if other[1] == abbr and other[2] != tech:
                        served_elsewhere |= set(universe.footprints[other].true_cells)
                pool = served_elsewhere - universe.footprints[key].claimed_cells
                extra = _sample_cells(
                    rng, pool, _scale(intensity, len(pool), fraction=0.75)
                )
                if not extra:
                    continue
                _extend_claimed(universe, key, extra)
                targets.add(pid)
                for cell in extra:
                    claim = (pid, cell, tech)
                    candidates.append(claim)
                    claim_state[claim] = abbr

    def post_challenges(table, universe, challenges):
        keys = sorted(set(candidates))
        if not keys:
            return challenges
        claims = table.columnar()
        pos = claims.positions(
            np.array([k[0] for k in keys], dtype=np.int64),
            np.array([k[1] for k in keys], dtype=np.uint64),
            np.array([k[2] for k in keys], dtype=np.int64),
        )
        materialized = [k for k, p in zip(keys, pos) if p >= 0]
        next_id = max((r.challenge_id for r in challenges), default=0) + 1
        appended = []
        for claim in materialized:
            pid, cell, tech = claim
            conceded = bool(rng.random() < 0.7)
            outcome = (
                ChallengeOutcome.PROVIDER_CONCEDED
                if conceded
                else ChallengeOutcome.FCC_UPHELD
            )
            appended.append(
                ChallengeRecord(
                    challenge_id=next_id,
                    provider_id=pid,
                    cell=cell,
                    technology=tech,
                    state=claim_state[claim],
                    n_bsls=int(rng.integers(1, 4)),
                    reason=(
                        ChallengeReason.TECHNOLOGY_UNAVAILABLE
                        if rng.random() < 0.55
                        else ChallengeReason.SPEEDS_UNAVAILABLE
                    ),
                    outcome=outcome,
                    fcc_adjudicated=not conceded,
                    resolved_release=int(rng.integers(1, 5) if conceded else rng.integers(8, 15)),
                    major_release=0,
                )
            )
            next_id += 1
        return list(challenges) + appended

    return _world(
        "challenge_validated_overclaim",
        config,
        intensity,
        PipelineHooks(post_universe=post_universe, post_challenges=post_challenges),
        candidates,
        targets,
    )
