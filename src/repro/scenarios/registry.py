"""The named-scenario registry: adversarial world shapes by name.

The paper's premise is that low-quality availability claims arrive in
*recognizable adversarial patterns* — blanket DSL overclaims, satellite
"everywhere" filings, stale coverage that outlives its removal, phantom
providers with no plant at all.  Each registered scenario reproduces one
such pattern as a seeded **world mutator** layered on
:func:`repro.core.pipeline.build_world` through
:class:`~repro.core.pipeline.PipelineHooks`, and returns a
:class:`ScenarioWorld`: the mutated world *plus* the ground-truth set of
injected claims, so every downstream consumer (model, score store, audit
service) can be measured against exactly the claims the scenario poisoned.

Usage::

    from repro import scenarios

    scenarios.names()                       # all registered scenario names
    sw = scenarios.build_scenario("phantom_provider", config)
    mask = sw.injected_mask()               # bool over the columnar claims

``intensity`` scales how hard a scenario leans on the world (1.0 = the
documented default; lower values inject proportionally fewer claims),
which is what the harness's metamorphic monotonicity checks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import ScenarioConfig
from repro.core.pipeline import SimulationWorld
from repro.fcc.bdc import ClaimKey

__all__ = [
    "ScenarioSpec",
    "ScenarioWorld",
    "register",
    "get",
    "names",
    "build_scenario",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered adversarial scenario."""

    name: str
    description: str
    #: Builds the scenario: ``(config, intensity) -> ScenarioWorld``.
    build: Callable[[ScenarioConfig, float], "ScenarioWorld"]
    #: Harness floor for the scenario AUC (store margin vs. injected mask).
    auc_floor: float = 0.65
    #: Harness floor for mean injected-minus-clean percentile separation.
    min_separation: float = 5.0
    #: Free-form tags ("filing", "challenge", "release", "enriched", ...).
    #: The "enriched" tag makes the harness train with the measured-truth
    #: enrichment features and also fit a base-feature control model.
    tags: tuple[str, ...] = ()
    #: For "enriched" scenarios: floor on ``auc_injected`` minus the
    #: base-feature control's AUC — the separation the enrichment block
    #: must add beyond what the base feature set can achieve.
    min_enrichment_margin: float | None = None


@dataclass(frozen=True)
class ScenarioWorld:
    """A mutated world plus the ground truth of what was injected."""

    name: str
    world: SimulationWorld
    #: Hex-level claims the scenario injected/poisoned, restricted to
    #: claims that actually materialized in the filing table.
    injected_keys: frozenset[ClaimKey]
    #: Providers the scenario targets (injected into or mutated).
    target_provider_ids: frozenset[int]
    intensity: float = 1.0
    #: Scenario-specific extras (suppressed states, inflated tiers, ...).
    notes: dict = field(default_factory=dict)

    @property
    def n_injected(self) -> int:
        return len(self.injected_keys)

    def injected_mask(self) -> np.ndarray:
        """Boolean mask over the world's columnar claims (injected = True)."""
        claims = self.world.table.columnar()
        mask = np.zeros(len(claims), dtype=bool)
        if not self.injected_keys:
            return mask
        keys = sorted(self.injected_keys)
        pos = claims.positions(
            np.array([k[0] for k in keys], dtype=np.int64),
            np.array([k[1] for k in keys], dtype=np.uint64),
            np.array([k[2] for k in keys], dtype=np.int64),
        )
        mask[pos[pos >= 0]] = True
        return mask


_REGISTRY: dict[str, ScenarioSpec] = {}


def register(
    name: str,
    *,
    description: str,
    auc_floor: float = 0.65,
    min_separation: float = 5.0,
    tags: tuple[str, ...] = (),
    min_enrichment_margin: float | None = None,
):
    """Decorator registering a ``(config, intensity) -> ScenarioWorld`` builder."""

    def _decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            build=fn,
            auc_floor=auc_floor,
            min_separation=min_separation,
            tags=tags,
            min_enrichment_margin=min_enrichment_margin,
        )
        return fn

    return _decorator


def get(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def build_scenario(
    name: str, config: ScenarioConfig, intensity: float = 1.0
) -> ScenarioWorld:
    """Build one named scenario world at the given intensity."""
    if not 0.0 < intensity <= 1.0:
        raise ValueError(f"intensity must be in (0, 1], got {intensity}")
    sw = get(name).build(config, intensity)
    if sw.name != name:
        raise RuntimeError(
            f"scenario builder for {name!r} returned world named {sw.name!r}"
        )
    return sw
