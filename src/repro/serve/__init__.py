"""Online claim-audit serving: artifacts, score store, registry, API.

The training side of the reproduction ends with a fitted
:class:`~repro.core.model.NBMIntegrityModel` bound to a live simulated
world.  This package turns that into a *serving* system — the consumption
pattern of the Texas Broadband Truth Map and BQT-style policymaker query
tools, and the ROADMAP's heavy-traffic north star:

=======================  ====================================================
Module                   Role
=======================  ====================================================
:mod:`~repro.serve.artifacts`  versioned on-disk model bundle (npz arrays +
                               JSON manifest, no pickle) with bitwise-exact
                               round-trips
:mod:`~repro.serve.store`      :class:`ClaimScoreStore` — every distinct
                               claim scored once through the binned path;
                               frozen score/percentile/top-k arrays plus
                               cursor pagination over the suspicion order
:mod:`~repro.serve.batcher`    :class:`MicroBatcher` — coalesces concurrent
                               single-claim requests into one vectorized
                               batch per flush, with an LRU result cache
:mod:`~repro.serve.schemas`    typed request/response dataclasses
                               (:class:`ClaimKey`, :class:`ScoreRecord`,
                               :class:`Page`, batch request/response) with
                               canonical JSON encode/decode + cursor codec
:mod:`~repro.serve.registry`   :class:`ModelRegistry` — named (model, store)
                               versions with atomic hot-swap of the default
                               and per-version stats
:mod:`~repro.serve.service`    :class:`AuditService` — the query facade
                               (claim lookups, filtered top-k, pagination,
                               summaries), bound through the registry
:mod:`~repro.serve.router`     declarative route table (method, pattern,
                               typed query spec, handler)
:mod:`~repro.serve.resilience` overload safety: admission control (bounded
                               queues, 429 + Retry-After), per-request
                               deadlines, a cold-path circuit breaker, and
                               deterministic fault injection for chaos tests
:mod:`~repro.serve.http`       stdlib JSON HTTP API: versioned ``/v2``
                               resource routes + frozen ``/v1`` adapters,
                               behind the admission gate
:mod:`~repro.serve.workers`    :class:`WorkerPool` — pre-fork multi-process
                               serving over shared mmap'd stores
                               (``SO_REUSEPORT`` accept balancing, two-phase
                               fleet hot-swap, respawn supervision, merged
                               fleet ``/metrics``)
=======================  ====================================================

The matching client SDK lives in :mod:`repro.client`.
"""

from repro.serve.artifacts import (
    ARTIFACT_SCHEMA,
    ModelArtifacts,
    load_model_artifacts,
    save_model_artifacts,
)
from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.http import (
    DEFAULT_PAGE_LIMIT,
    MAX_BODY_BYTES,
    MAX_RESULT_ROWS,
    AuditHTTPServer,
    build_router,
    make_server,
)
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    ColdPathDegraded,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceConfig,
    ServiceOverloaded,
    ServiceUnavailable,
    chaos_plan,
    chaos_plan_names,
)
from repro.serve.router import (
    ApiError,
    BadRequest,
    NotFound,
    PayloadTooLarge,
    QueryParam,
    RequestTimeout,
    Route,
    Router,
)
from repro.serve.schemas import (
    BatchScoreRequest,
    BatchScoreResponse,
    ClaimKey,
    ErrorBody,
    Page,
    SchemaError,
    ScoreRecord,
    decode_cursor,
    encode_cursor,
)
from repro.serve.service import AuditService
from repro.serve.store import ClaimScoreStore
from repro.serve.workers import WorkerPool, WorkerVersionSpec, reuse_port_available

__all__ = [
    "ARTIFACT_SCHEMA",
    "ModelArtifacts",
    "load_model_artifacts",
    "save_model_artifacts",
    "BatcherStats",
    "MicroBatcher",
    "AuditHTTPServer",
    "build_router",
    "make_server",
    "DEFAULT_PAGE_LIMIT",
    "MAX_BODY_BYTES",
    "MAX_RESULT_ROWS",
    "ModelRegistry",
    "ModelVersion",
    "AdmissionController",
    "CircuitBreaker",
    "ColdPathDegraded",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceConfig",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "chaos_plan",
    "chaos_plan_names",
    "ApiError",
    "BadRequest",
    "NotFound",
    "PayloadTooLarge",
    "QueryParam",
    "RequestTimeout",
    "Route",
    "Router",
    "BatchScoreRequest",
    "BatchScoreResponse",
    "ClaimKey",
    "ErrorBody",
    "Page",
    "SchemaError",
    "ScoreRecord",
    "decode_cursor",
    "encode_cursor",
    "AuditService",
    "ClaimScoreStore",
    "WorkerPool",
    "WorkerVersionSpec",
    "reuse_port_available",
]
