"""Online claim-audit serving: model artifacts, score store, batcher, API.

The training side of the reproduction ends with a fitted
:class:`~repro.core.model.NBMIntegrityModel` bound to a live simulated
world.  This package turns that into a *serving* system — the consumption
pattern of the Texas Broadband Truth Map and BQT-style policymaker query
tools, and the ROADMAP's heavy-traffic north star:

=======================  ====================================================
Module                   Role
=======================  ====================================================
:mod:`~repro.serve.artifacts`  versioned on-disk model bundle (npz arrays +
                               JSON manifest, no pickle) with bitwise-exact
                               round-trips
:mod:`~repro.serve.store`      :class:`ClaimScoreStore` — every distinct
                               claim scored once through the binned path;
                               frozen score/percentile/top-k arrays keyed by
                               the columnar claim index
:mod:`~repro.serve.batcher`    :class:`MicroBatcher` — coalesces concurrent
                               single-claim requests into one vectorized
                               batch per flush, with an LRU result cache
:mod:`~repro.serve.service`    :class:`AuditService` — the query facade
                               (claim lookups, filtered top-k, summaries)
:mod:`~repro.serve.http`       stdlib JSON HTTP API over the service
=======================  ====================================================
"""

from repro.serve.artifacts import (
    ARTIFACT_SCHEMA,
    ModelArtifacts,
    load_model_artifacts,
    save_model_artifacts,
)
from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.http import AuditHTTPServer, make_server
from repro.serve.service import AuditService
from repro.serve.store import ClaimScoreStore

__all__ = [
    "ARTIFACT_SCHEMA",
    "ModelArtifacts",
    "load_model_artifacts",
    "save_model_artifacts",
    "BatcherStats",
    "MicroBatcher",
    "AuditHTTPServer",
    "make_server",
    "AuditService",
    "ClaimScoreStore",
]
