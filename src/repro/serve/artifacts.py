"""Versioned on-disk model artifacts (npz arrays + JSON manifest).

A fitted :class:`~repro.ml.gbdt.GradientBoostedClassifier` is a handful of
NumPy arrays plus a few scalars; this module persists exactly those — no
pickle anywhere, so bundles are safe to load from untrusted storage and
stable across Python versions.  A bundle directory holds:

``manifest.json``
    schema version, artifact kind, :class:`~repro.ml.gbdt.GBDTParams`
    fields, feature names, and the feature builder's encoder manifest
    (embedder spec + one-hot category orders).
``arrays.npz``
    the flat-ensemble node arrays (:meth:`FlatEnsemble.export_arrays`),
    the histogram binner's packed cut lists
    (:meth:`HistogramBinner.export_state`), the base margin, and the
    builder's cached provider embeddings / cell centroids.

Round-trips are **bitwise exact**: float64 arrays pass through the npz
binary format untouched, JSON floats round-trip via ``repr``, and the
reloaded classifier's float and binned margins — and its TreeSHAP
attributions — are identical to the live model's (asserted by the test
suite).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.ml.gbdt import GBDTParams, GradientBoostedClassifier
from repro.ml.tree import FlatEnsemble, HistogramBinner

__all__ = [
    "ARTIFACT_SCHEMA",
    "ModelArtifacts",
    "load_model_artifacts",
    "save_model_artifacts",
]

#: Bump when the bundle layout changes incompatibly.
ARTIFACT_SCHEMA = 1

_KIND = "nbm-integrity-model"
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


@dataclass(frozen=True)
class ModelArtifacts:
    """A loaded bundle: the reconstructed classifier plus its metadata."""

    classifier: GradientBoostedClassifier
    params: GBDTParams
    feature_names: tuple[str, ...]
    #: Encoder manifest (embedder spec, category orders) or ``None`` when
    #: the bundle was saved without builder state.
    encoders: dict | None

    @property
    def ensemble(self) -> FlatEnsemble:
        return self.classifier.flat_ensemble

    @property
    def binner(self) -> HistogramBinner:
        return self.classifier.binner

    def predict_margin(self, X: np.ndarray, *, binned: bool = False) -> np.ndarray:
        return self.classifier.predict_margin(X, binned=binned)

    def predict_proba(self, X: np.ndarray, *, binned: bool = False) -> np.ndarray:
        return self.classifier.predict_proba(X, binned=binned)


def save_model_artifacts(
    path: str,
    classifier: GradientBoostedClassifier,
    feature_names: list[str] | tuple[str, ...] | None = None,
    builder=None,
) -> str:
    """Write a fitted classifier (and optional builder state) to ``path``.

    ``path`` is a bundle *directory* (created if absent).  ``builder``,
    when given a :class:`~repro.features.vectorize.FeatureBuilder`,
    contributes its encoder manifest and embedding/centroid caches so a
    compatible builder can be re-warmed on load.  Returns ``path``.
    """
    if not classifier.is_fitted:
        raise RuntimeError("cannot save an unfitted classifier; call fit() first")
    ensemble = classifier.flat_ensemble
    arrays: dict[str, np.ndarray] = {
        f"ensemble/{name}": arr for name, arr in ensemble.export_arrays().items()
    }
    for name, arr in classifier.binner.export_state().items():
        arrays[f"binner/{name}"] = arr
    arrays["scalar/base_margin"] = np.float64(classifier.base_margin)

    encoders = None
    if builder is not None:
        encoders, encoder_arrays = builder.export_encoder_state()
        for name, arr in encoder_arrays.items():
            arrays[f"encoder/{name}"] = arr
        if feature_names is None:
            feature_names = builder.feature_names

    manifest = {
        "schema": ARTIFACT_SCHEMA,
        "kind": _KIND,
        "params": asdict(classifier.params),
        "n_features": classifier.n_features,
        "n_trees": ensemble.n_trees,
        "n_nodes": ensemble.n_nodes,
        "feature_names": list(feature_names) if feature_names is not None else None,
        "encoders": encoders,
        "arrays": ARRAYS_NAME,
    }
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, ARRAYS_NAME), "wb") as fh:
        np.savez_compressed(fh, **arrays)
    with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _read_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no artifact manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("kind") != _KIND:
        raise ValueError(
            f"artifact kind {manifest.get('kind')!r} is not {_KIND!r}"
        )
    if manifest.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact schema {manifest.get('schema')!r} is not supported "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    return manifest


def load_model_artifacts(path: str, builder=None) -> ModelArtifacts:
    """Reconstruct a classifier from a bundle written by
    :func:`save_model_artifacts`.

    ``builder``, when given, has its embedding/centroid caches re-warmed
    from the bundle's encoder state (after validating that its embedder
    spec and category orders match — mismatches raise rather than
    silently changing feature columns).  Arrays load with
    ``allow_pickle=False``; a bundle can never execute code.
    """
    manifest = _read_manifest(path)
    arrays_path = os.path.join(path, manifest.get("arrays", ARRAYS_NAME))
    with np.load(arrays_path, allow_pickle=False) as payload:
        groups: dict[str, dict[str, np.ndarray]] = {}
        for key in payload.files:
            group, _, name = key.partition("/")
            groups.setdefault(group, {})[name] = payload[key]

    binner = HistogramBinner.from_state(groups.get("binner", {}))
    ensemble = FlatEnsemble.from_arrays(groups.get("ensemble", {}))
    params = GBDTParams(**manifest["params"])
    n_features = int(manifest["n_features"])
    if len(binner.split_values_) != n_features:
        raise ValueError(
            f"binner covers {len(binner.split_values_)} features, "
            f"manifest says {n_features}"
        )
    classifier = GradientBoostedClassifier.from_components(
        params=params,
        binner=binner,
        trees=ensemble.to_trees(),
        base_margin=float(groups["scalar"]["base_margin"]),
        n_features=n_features,
        flat=ensemble,
    )
    encoders = manifest.get("encoders")
    if builder is not None and encoders is not None:
        builder.restore_encoder_state(encoders, groups.get("encoder", {}))
    names = manifest.get("feature_names")
    return ModelArtifacts(
        classifier=classifier,
        params=params,
        feature_names=tuple(names) if names is not None else (),
        encoders=encoders,
    )
