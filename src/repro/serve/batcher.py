"""Micro-batching request queue for the audit service.

Serving traffic arrives one claim at a time, but every layer underneath
— vectorization, the composite-key index, the binned ensemble traversal
— is batch-oriented: the marginal cost of the 1000th row in a batch is
orders of magnitude below the cost of a 1-row call.  The
:class:`MicroBatcher` closes that gap:

* **Coalescing** — concurrent ``submit`` calls accumulate in a pending
  queue; the whole queue is scored in *one* vectorized call when it
  reaches ``max_batch`` or when ``max_delay_s`` elapses (a daemon timer
  armed by the first request of a batch), whichever comes first.
* **Deduplication** — requests for a key already pending in the current
  batch attach to the in-flight slot instead of adding a row.
* **LRU cache** — completed results are cached by key (default 4096
  entries), so hot claims skip scoring entirely.

The batcher is scorer-agnostic: it queues opaque payloads and delivers
``concurrent.futures.Future`` results, with the service supplying the
``score_batch(payloads) -> results`` callable.  ``flush()`` may be called
directly for deterministic draining (the bulk path and the tests do).

Requests may carry a :class:`~repro.serve.resilience.Deadline`: a slot
whose every waiter has blown its budget by flush time is *dropped* —
its waiters get :class:`~repro.serve.resilience.DeadlineExceeded` and
the scorer never sees the payload.  Scoring work is the scarce resource
under overload; spending it on answers nobody is still waiting for is
how queues melt down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future

from repro.obs import trace as obs_trace
from repro.obs.metrics import SIZE_BOUNDS, MetricsRegistry
from repro.serve.resilience import (
    SEAM_BATCH_FLUSH,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    merge_deadlines,
)

__all__ = ["BatcherStats", "MicroBatcher"]


class BatcherStats:
    """Batcher counters, backed by a :class:`MetricsRegistry`.

    The registry instruments (``batcher_*`` families) are the single
    source of truth; this class is the stable monitoring view the HTTP
    API has always exposed (`/v1/stats`), with the same attribute names
    and ``as_dict()`` keys as the pre-obs dataclass.  A batcher created
    without an explicit registry gets a private one, so standalone
    batchers never share series.
    """

    def __init__(
        self, metrics: MetricsRegistry | None = None, version: str = ""
    ) -> None:
        m = metrics if metrics is not None else MetricsRegistry()
        self.metrics = m
        self._requests = m.counter("batcher_requests_total", version=version)
        self._cache_hits = m.counter("batcher_cache_hits_total", version=version)
        self._coalesced = m.counter("batcher_coalesced_total", version=version)
        self._batches = m.counter("batcher_batches_total", version=version)
        self._scored = m.counter("batcher_scored_total", version=version)
        self._deadline_drops = m.counter(
            "batcher_deadline_drops_total", version=version
        )
        self._max_batch = m.gauge("batcher_max_batch", version=version)
        self._batch_size = m.histogram(
            "batcher_batch_size", bounds=SIZE_BOUNDS, version=version
        )
        self._flush_seconds = m.histogram("batcher_flush_seconds", version=version)

    # -- updates (batcher-internal) ------------------------------------

    def inc(self, field: str, n: int = 1) -> None:
        getattr(self, "_" + field).inc(n)

    def record_batch(self, size: int) -> None:
        self._batches.inc()
        self._scored.inc(size)
        self._max_batch.set_max(size)
        self._batch_size.observe(size)

    def flush_timer(self):
        return self._flush_seconds.time()

    # -- stable read view ----------------------------------------------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def scored(self) -> int:
        return self._scored.value

    @property
    def max_batch(self) -> int:
        return int(self._max_batch.value)

    @property
    def deadline_drops(self) -> int:
        return self._deadline_drops.value

    @property
    def cache_hit_ratio(self) -> float:
        requests = self.requests
        return self.cache_hits / requests if requests else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "scored": self.scored,
            "max_batch": self.max_batch,
            "deadline_drops": self.deadline_drops,
        }


class MicroBatcher:
    """Coalesce single-item scoring requests into vectorized batches."""

    def __init__(
        self,
        score_batch,
        max_batch: int = 1024,
        max_delay_s: float = 0.002,
        cache_size: int = 4096,
        fault_plan: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        version: str = "",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        self._score_batch = score_batch
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.cache_size = int(cache_size)
        self.fault_plan = fault_plan
        self.stats = BatcherStats(metrics, version=version)
        self._lock = threading.Lock()
        #: Pending batch: parallel payloads / cache keys / future lists /
        #: per-slot deadlines (the laxest across coalesced waiters).
        self._payloads: list = []
        self._keys: list = []
        self._futures: list[list[Future]] = []
        self._deadlines: list[Deadline | None] = []
        #: cache key -> pending-slot index (dedup within one batch).
        self._slot_by_key: dict = {}
        self._cache: OrderedDict = OrderedDict()
        self._timer: threading.Timer | None = None
        self._closed = False

    # -- submission ---------------------------------------------------------

    def submit(self, payload, cache_key=None, deadline: Deadline | None = None) -> Future:
        """Enqueue one request; the Future resolves at the next flush.

        ``cache_key``, when hashable and not ``None``, enables the LRU
        cache and within-batch deduplication for this request.
        ``deadline`` bounds how stale this request may be when the flush
        reaches it: a slot none of whose waiters still has budget is
        dropped unscored, failing its futures with
        :class:`DeadlineExceeded`.
        """
        fut: Future = Future()
        flush_now = False
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self.stats.inc("requests")
            if cache_key is not None:
                cached = self._cache.get(cache_key, _MISS)
                if cached is not _MISS:
                    self._cache.move_to_end(cache_key)
                    self.stats.inc("cache_hits")
                    fut.set_result(cached)
                    return fut
                slot = self._slot_by_key.get(cache_key)
                if slot is not None:
                    self._futures[slot].append(fut)
                    # The slot survives while *any* waiter has budget.
                    self._deadlines[slot] = merge_deadlines(
                        self._deadlines[slot], deadline
                    )
                    self.stats.inc("coalesced")
                    return fut
                self._slot_by_key[cache_key] = len(self._payloads)
            self._payloads.append(payload)
            self._keys.append(cache_key)
            self._futures.append([fut])
            self._deadlines.append(deadline)
            if len(self._payloads) >= self.max_batch:
                flush_now = True
            elif self._timer is None and self.max_delay_s > 0:
                self._timer = threading.Timer(self.max_delay_s, self.flush)
                self._timer.daemon = True
                self._timer.start()
        if flush_now:
            self.flush()
        return fut

    def score_many(
        self,
        payloads: list,
        cache_keys: list | None = None,
        deadline: Deadline | None = None,
    ) -> list:
        """Submit a burst and drain it in one flush; returns results in order."""
        if cache_keys is None:
            cache_keys = [None] * len(payloads)
        futures = [
            self.submit(payload, cache_key=key, deadline=deadline)
            for payload, key in zip(payloads, cache_keys)
        ]
        self.flush()
        return [fut.result() for fut in futures]

    # -- flushing -----------------------------------------------------------

    def flush(self) -> int:
        """Score everything pending now; returns the number of rows scored."""
        with self._lock:
            if not self._payloads:
                return 0
            payloads = self._payloads
            keys = self._keys
            futures = self._futures
            deadlines = self._deadlines
            self._payloads, self._keys, self._futures = [], [], []
            self._deadlines = []
            self._slot_by_key = {}
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
        # Shed expired slots before scoring: their waiters have already
        # given up, so the scorer's time belongs to the live ones.
        # ``expired`` is sampled exactly once per slot: a deadline that
        # expires between an expiry scan and the score call must be
        # classified the same way everywhere, or a slot could both get
        # ``set_exception`` here and stay in the live batch (whose later
        # ``set_result`` would raise InvalidStateError) while the drop
        # counter misses it.
        expired = [d is not None and d.expired for d in deadlines]
        if any(expired):
            live = [i for i, e in enumerate(expired) if not e]
            dropped = len(payloads) - len(live)
            exc = DeadlineExceeded("request deadline expired before scoring")
            for i, e in enumerate(expired):
                if e:
                    for fut in futures[i]:
                        fut.set_exception(exc)
            payloads = [payloads[i] for i in live]
            keys = [keys[i] for i in live]
            futures = [futures[i] for i in live]
            self.stats.inc("deadline_drops", dropped)
            if not payloads:
                return 0
        try:
            with obs_trace.span("batcher_flush", batch=len(payloads)):
                with self.stats.flush_timer():
                    if self.fault_plan is not None:
                        self.fault_plan.fire(SEAM_BATCH_FLUSH)
                    results = self._score_batch(payloads)
            if len(results) != len(payloads):
                raise RuntimeError(
                    f"scorer returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
        except BaseException as exc:  # deliver failures to every waiter
            for waiters in futures:
                for fut in waiters:
                    fut.set_exception(exc)
            return 0
        self.stats.record_batch(len(payloads))
        with self._lock:
            if self.cache_size > 0:
                for key, result in zip(keys, results):
                    if key is not None and not isinstance(result, BaseException):
                        self._cache[key] = result
                        self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        # A scorer may return an exception *instance* in a result slot:
        # it fails just that payload's waiters (and is never cached),
        # leaving the rest of the batch intact.
        for waiters, result in zip(futures, results):
            for fut in waiters:
                if isinstance(result, BaseException):
                    fut.set_exception(result)
                else:
                    fut.set_result(result)
        return len(payloads)

    # -- lifecycle ----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached result (e.g. after swapping the score store)."""
        with self._lock:
            self._cache.clear()

    def close(self) -> None:
        """Refuse further submissions, then flush everything pending.

        Ordering matters: the closed flag is set *before* the final
        drain, so a ``submit`` racing ``close`` either lands in the final
        batch (accepted strictly before the flag flipped) or raises —
        flushing first would leave a payload accepted in that window
        queued forever, its Future never resolving.
        """
        with self._lock:
            self._closed = True
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
        self.flush()


#: Cache-miss sentinel (``None`` is a legitimate cached result).
_MISS = object()
