"""Dependency-free JSON HTTP API over :class:`~repro.serve.service.AuditService`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly the shape the micro-batcher exploits:
concurrent single-claim handlers block on Futures while their requests
coalesce into one vectorized batch per flush.

Dispatch is a declarative route table (:mod:`repro.serve.router`): each
route declares its method, path pattern with ``{param}`` captures, and a
typed query-param spec.  Request/response payloads follow the typed
schemas of :mod:`repro.serve.schemas`, and every data route serves from
one atomic :class:`~repro.serve.registry.ModelVersion` snapshot, so
responses stay internally consistent across hot-swaps.

v2 routes (resource-oriented, the current surface)
--------------------------------------------------

====================================================  =======================
Route                                                 Response
====================================================  =======================
``GET /v2/claims/{provider_id}/{cell}/{technology}``  one claim's record
``[?state=XX]``                                       (``state`` enables the
                                                      cold path); 404 unknown
``GET /v2/claims?[filters]&limit=&cursor=``           cursor-paginated walk
                                                      of the suspicion order
                                                      (filters: provider_id,
                                                      state, technology,
                                                      cell)
``POST /v2/claims:batchScore``                        bulk scoring; body
                                                      ``{"claims": [...]}``
``GET /v2/analytics/priority?[state=XX]&limit=``      cursor-paginated audit-
``&cursor=``                                          priority walk (composite
                                                      suspicion/overstatement/
                                                      challenge ranking per
                                                      state × provider)
``GET /v2/providers/{provider_id}``                   provider score profile
``GET /v2/states/{abbr}``                             state score profile
``GET /v2/models``                                    registry versions +
                                                      per-version stats
``POST /v2/models/{name}:activate``                   atomic default swap
``GET /healthz``                                      liveness + limits +
                                                      admission/queue depths
``GET /readyz``                                       readiness; 503 +
                                                      ``Retry-After`` while a
                                                      hot-swap or store load
                                                      is in flight
``GET /metrics``                                      metric registries as
                                                      JSON, or Prometheus
                                                      text with
                                                      ``?format=prometheus``
====================================================  =======================

Observability (:mod:`repro.obs`)
--------------------------------

Every request gets a generated ``request_id``, echoed in the
``X-Request-Id`` response header, in non-v1 error bodies, and in the
structured access log (``verbose=True`` or the ``access_log`` sink).
Per-route request counters and latency histograms land in the service's
metric registry (``GET /metrics``).  Passing ``trace=1`` on a non-v1
route returns the request's span tree (admission -> parse_body ->
handler -> batcher/store spans) under a ``"trace"`` key.

Overload safety (:mod:`repro.serve.resilience`)
-----------------------------------------------

Data routes pass an **admission gate** before their body is read:
bounded per-version queues shed excess load as 429 + ``Retry-After``
instead of queueing unboundedly.  Every request carries a **deadline**
(``X-Request-Deadline-Ms`` header, else the server default); a budget
blown while queued or batched is dropped, not scored (503).  Cold-path
scoring sits behind a **circuit breaker** — when it trips, batch
responses degrade (``"degraded": true`` with ``None`` cold slots) rather
than fail.  Slow clients hit the socket read timeout and get a 408.
Meta routes (``/healthz``, ``/readyz``, ``/v2/models``, activation,
``/v1/stats``) bypass admission: an operator must be able to observe and
fix an overloaded server *through* the overload.

v1 routes (deprecated, frozen)
------------------------------

``/v1/stats``, ``/v1/claim``, ``/v1/top``, ``/v1/provider/{id}/summary``,
``/v1/state/{abbr}/summary``, and ``POST /v1/score`` are kept as thin
adapters over the same stack with **bitwise-identical** response bodies
(pinned by the golden compatibility tests).  New clients should use v2:
it adds pagination, model versioning, and typed schemas that v1 will
never grow.

Every failure is a JSON body ``{"error": "..."}`` — 400 for malformed
parameters, bodies, or unknown states; 404 for unknown routes and
claims; 413 for oversized bodies.  A traceback never reaches the wire.

Example session (see ``examples/audit_service.py`` for a scripted one)::

    server = make_server(service, port=8350)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    # curl 'http://127.0.0.1:8350/v2/claims?state=TX&limit=10'
"""

from __future__ import annotations

import json
import math
import socket
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs.metrics import MetricsRegistry, get_metrics, render_prometheus
from repro.obs.trace import activate as activate_trace, new_request_id
from repro.obs.trace import span as obs_span
from repro.serve.registry import ModelVersion, state_index, validate_key_range
from repro.serve.resilience import (
    AdmissionController,
    ColdPathDegraded,
    Deadline,
    DeadlineExceeded,
    InjectedFault,
    ResilienceConfig,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.serve.router import (
    ApiError,
    BadRequest,
    NotFound,
    PayloadTooLarge,
    QueryParam,
    RequestTimeout,
    Router,
    parse_query,
)
from repro.serve.schemas import (
    BatchScoreRequest,
    SchemaError,
    decode_cursor,
    encode_cursor,
    filter_fingerprint,
)
from repro.serve.service import AuditService

__all__ = [
    "AuditHTTPServer",
    "PlainTextResult",
    "RawJsonResult",
    "make_server",
    "build_router",
]

#: Cap on top-k, page limits, and bulk-scoring request size — enforced
#: uniformly across the v1 and v2 read/score endpoints.
MAX_RESULT_ROWS = 10_000

#: Cap on POST body size (a full 10k-claim bulk request fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest unread body an error response will drain to keep the
#: keep-alive connection usable (larger bodies just close instead).
MAX_DRAIN_BODY_BYTES = 1024 * 1024

#: Page size of ``GET /v2/claims`` when the client does not pass one.
DEFAULT_PAGE_LIMIT = 100

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PlainTextResult:
    """Marker return type for handlers that serve text, not JSON
    (``GET /metrics?format=prometheus``)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str = "text/plain; charset=utf-8"):
        self.text = text
        self.content_type = content_type


class RawJsonResult:
    """Marker return type for handlers that already hold the response as
    encoded JSON bytes (the paginated-walk fast path, which splices
    cached per-record fragments instead of re-encoding every page)."""

    __slots__ = ("body",)

    def __init__(self, body: bytes):
        self.body = body


def page_envelope_json(
    item_fragments: list[bytes],
    next_cursor: str | None,
    total: int,
    model_version: str,
) -> bytes:
    """Splice pre-encoded item fragments into the canonical v2 page
    envelope, byte-identical to ``json.dumps`` of the equivalent dict
    (``{"items": [...], "next_cursor": ..., "total": ...,
    "model_version": ...}`` with default separators)."""
    return (
        b'{"items": ['
        + b", ".join(item_fragments)
        + b"], "
        + (
            f'"next_cursor": {json.dumps(next_cursor)}, '
            f'"total": {int(total)}, '
            f'"model_version": {json.dumps(model_version)}}}'
        ).encode("utf-8")
    )


@dataclass
class RequestContext:
    """Everything one matched request needs, version-snapshotted."""

    service: AuditService
    path: dict[str, str]
    query: dict
    body: object | None = None
    #: This request's time budget (header-supplied or the server default).
    deadline: Deadline | None = None
    #: The server's admission controller (None when admission is off);
    #: here only so /healthz can report queue depths and shed counts.
    admission: AdmissionController | None = None
    #: Fleet metrics hook (pre-fork pool): a zero-arg callable returning
    #: merged ``MetricsRegistry.export_state`` dumps for every worker, or
    #: ``None`` when aggregation is unavailable (fall back to local).
    metrics_view: Callable[[], dict | None] | None = None
    #: True when ``?trace=1`` activated request tracing: handlers with a
    #: pre-encoded fast path must return a plain dict instead so the span
    #: tree can be attached to the response.
    tracing: bool = False
    _version: ModelVersion | None = field(default=None, repr=False)

    @property
    def version(self) -> ModelVersion:
        """The model version serving this request — resolved once, so the
        whole response is consistent with exactly one registry entry."""
        if self._version is None:
            self._version = self.service.registry.default
            self._version.count_request()
        return self._version

    def int_path(self, name: str, label: str | None = None) -> int:
        raw = self.path[name]
        try:
            return int(raw)
        except ValueError:
            raise BadRequest(
                f"{label or f'path parameter {name!r}'} must be an integer"
            ) from None


# -- shared pieces ------------------------------------------------------------

_COLD_UNAVAILABLE = (
    "cold-path scoring (state given) is unavailable: "
    "service has no live feature builder"
)

_CLAIM_FILTERS = (
    QueryParam("provider_id", "int"),
    QueryParam("state"),
    QueryParam("technology", "int"),
    QueryParam("cell", "int"),
)


def _require_cold_path(ctx: RequestContext, state) -> None:
    if state is not None and not ctx.version.cold_path_available:
        raise BadRequest(_COLD_UNAVAILABLE)


def _claim_record(ctx: RequestContext, provider_id, cell, technology, state):
    """Shared single-claim lookup; ``NotFound`` for unknown claims."""
    _require_cold_path(ctx, state)
    record = ctx.version.score_claim(
        provider_id, cell, technology, state, deadline=ctx.deadline
    )
    if record is None:
        raise NotFound(
            "claim not in the score store (pass state=XX to score it "
            "as a hypothetical filing)"
        )
    return record


# -- meta endpoints -----------------------------------------------------------


def _healthz(ctx: RequestContext):
    registry = ctx.service.registry
    version = registry.default
    doc = {
        "status": "ok",
        "n_claims": len(version.store),
        "limits": {
            "max_result_rows": MAX_RESULT_ROWS,
            "max_body_bytes": MAX_BODY_BYTES,
            "default_page_limit": DEFAULT_PAGE_LIMIT,
        },
        "ready": registry.ready,
        "batcher": version.batcher.stats.as_dict(),
    }
    if ctx.admission is not None:
        doc["admission"] = ctx.admission.describe()
    if version.breaker is not None:
        doc["breaker"] = version.breaker.describe()
    metrics = registry.metrics
    doc["metrics"] = {
        "http_requests_total": int(metrics.total("http_requests_total")),
        "model_requests_total": int(metrics.total("model_requests_total")),
        "admission_shed_total": int(metrics.total("admission_shed_total")),
        "batcher_batches_total": int(metrics.total("batcher_batches_total")),
    }
    return doc


def _metrics_endpoint(ctx: RequestContext):
    """``GET /metrics`` — the service registry (per-version serving
    series) merged with the process-wide registry (store/pipeline/ingest
    series), as JSON by default or Prometheus text with
    ``?format=prometheus``.

    Under a pre-fork pool, ``ctx.metrics_view`` supplies the *fleet*
    aggregate (counters summed, histograms merged bucket-wise, gauges
    per-worker-labelled); when the view is unset or momentarily fails,
    the response degrades to this worker's local registries."""
    fmt = ctx.query["format"] or "json"
    if fmt not in ("json", "prometheus"):
        raise BadRequest("format must be 'json' or 'prometheus'")
    extra: dict = {}
    view = ctx.metrics_view() if ctx.metrics_view is not None else None
    if view is not None:
        service_metrics = MetricsRegistry.from_state(view["service"])
        process_metrics = MetricsRegistry.from_state(view["process"])
        extra = {
            k: v for k, v in view.items() if k not in ("service", "process")
        }
    else:
        service_metrics = ctx.service.registry.metrics
        process_metrics = get_metrics()
    if fmt == "prometheus":
        return PlainTextResult(
            render_prometheus(service_metrics, process_metrics),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )
    doc = {
        "service": service_metrics.snapshot(),
        "process": process_metrics.snapshot(),
    }
    doc.update(extra)
    return doc


def _readyz(ctx: RequestContext):
    """Readiness: 200 while serving normally, 503 + ``Retry-After``
    while a hot-swap or a store load is in flight (or no default model
    version exists yet)."""
    readiness = ctx.service.registry.readiness()
    if not readiness["ready"]:
        raise ServiceUnavailable(f"not ready: {readiness['reason']}")
    return readiness


def _v1_stats(ctx: RequestContext):
    return ctx.service.stats()


# -- v1 adapters (frozen wire format) ----------------------------------------


def _v1_claim(ctx: RequestContext):
    q = ctx.query
    return _claim_record(
        ctx, q["provider_id"], q["cell"], q["technology"], q["state"]
    )


def _v1_top(ctx: RequestContext):
    k = ctx.query["k"]
    if not 0 <= k <= MAX_RESULT_ROWS:
        raise BadRequest(f"k must be in [0, {MAX_RESULT_ROWS}]")
    return {
        "results": ctx.service.top_suspicious(
            k=k,
            provider_id=ctx.query["provider_id"],
            state=ctx.query["state"],
            technology=ctx.query["technology"],
            cell=ctx.query["cell"],
            version=ctx.version.name,
        )
    }


def _v1_provider_summary(ctx: RequestContext):
    pid = ctx.int_path("provider_id", label="provider id")
    return ctx.service.provider_summary(pid, version=ctx.version.name)


def _v1_state_summary(ctx: RequestContext):
    return ctx.service.state_summary(ctx.path["abbr"], version=ctx.version.name)


def _v1_score(ctx: RequestContext):
    doc = ctx.body
    if not isinstance(doc, dict):
        raise BadRequest('body must be a JSON object {"claims": [...]}')
    claims = doc.get("claims")
    if not isinstance(claims, list):
        raise BadRequest('body must be {"claims": [...]}')
    if len(claims) > MAX_RESULT_ROWS:
        raise BadRequest(f"at most {MAX_RESULT_ROWS} claims per request")
    payloads = []
    for entry in claims:
        if not isinstance(entry, dict):
            raise BadRequest("each claim must be an object")
        state = entry.get("state")
        if state is not None and not isinstance(state, str):
            raise BadRequest("claim state must be a string state abbreviation")
        try:
            payload = (
                int(entry["provider_id"]),
                int(entry["cell"]),
                int(entry["technology"]),
                state,
            )
        except (KeyError, TypeError, ValueError):
            raise BadRequest(
                "each claim needs integer provider_id, cell, and technology"
            ) from None
        # Range-check before the batcher: an out-of-range key reaching
        # the coalesced scorer would 500 and poison its batchmates.
        try:
            validate_key_range(*payload[:3])
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        payloads.append(payload)
    _require_cold_path(
        ctx, next((p[3] for p in payloads if p[3] is not None), None)
    )
    results = ctx.version.batcher.score_many(
        payloads, cache_keys=payloads, deadline=ctx.deadline
    )
    return {"results": results}


# -- v2 resource routes -------------------------------------------------------


def _v2_claim(ctx: RequestContext):
    record = _claim_record(
        ctx,
        ctx.int_path("provider_id"),
        ctx.int_path("cell"),
        ctx.int_path("technology"),
        ctx.query["state"],
    )
    return {"record": record, "model_version": ctx.version.name}


def _v2_claims_list(ctx: RequestContext):
    limit = ctx.query["limit"]
    if not 1 <= limit <= MAX_RESULT_ROWS:
        raise BadRequest(f"limit must be in [1, {MAX_RESULT_ROWS}]")
    state = ctx.query["state"]
    state_idx = state_index(state) if state is not None else None
    version = ctx.version
    fingerprint = filter_fingerprint(
        provider_id=ctx.query["provider_id"],
        state_idx=state_idx,
        technology=ctx.query["technology"],
        cell=ctx.query["cell"],
    )
    store = version.store
    after_rank = 0
    token = ctx.query["cursor"]
    if token is not None:
        cursor = decode_cursor(token)
        if cursor.version != version.name:
            raise BadRequest(
                f"cursor was issued for model version {cursor.version!r} "
                f"but the current default is {version.name!r}; restart "
                "the walk"
            )
        if cursor.etag != store.etag:
            raise BadRequest(
                f"cursor was issued for a different build of model "
                f"version {version.name!r}; restart the walk"
            )
        if cursor.fingerprint != fingerprint:
            raise BadRequest("cursor does not match the request filters")
        after_rank = cursor.rank
    rows, next_rank, total = store.page_suspicious(
        after_rank=after_rank,
        limit=limit,
        provider_id=ctx.query["provider_id"],
        state_idx=state_idx,
        technology=ctx.query["technology"],
        cell=ctx.query["cell"],
    )
    next_cursor = (
        None
        if next_rank is None
        else encode_cursor(version.name, next_rank, fingerprint, store.etag)
    )
    if not ctx.tracing:
        # Hot path at full-walk scale: record fragments are invariant for
        # a given store build, so each is JSON-encoded once (store-level
        # cache) and pages splice bytes instead of re-encoding rows.
        return RawJsonResult(
            page_envelope_json(
                store.records_json(rows), next_cursor, total, version.name
            )
        )
    # The canonical Page shape (schemas.Page.to_dict), assembled from the
    # store's record dicts directly — this is a hot path at full-walk
    # scale, so no dataclass round-trip per row.
    return {
        "items": store.records(rows),
        "next_cursor": next_cursor,
        "total": total,
        "model_version": version.name,
    }


def _v2_batch_score(ctx: RequestContext):
    request = BatchScoreRequest.from_dict(ctx.body, max_claims=MAX_RESULT_ROWS)
    _require_cold_path(
        ctx, next((k.state for k in request.claims if k.state is not None), None)
    )
    results, degraded = ctx.version.score_keys(
        list(request.claims), deadline=ctx.deadline
    )
    return {
        "results": results,
        "model_version": ctx.version.name,
        "degraded": degraded,
    }


def _v2_priority(ctx: RequestContext):
    """``GET /v2/analytics/priority`` — the audit-priority walk.

    Pages the composite (suspicion + overstatement + challenge-density)
    ranking of (state, provider) groups in descending priority, with the
    same cursor contract as the claims walk: cursors bind to the model
    version, the store build (etag), and the filter fingerprint.
    """
    limit = ctx.query["limit"]
    if not 1 <= limit <= MAX_RESULT_ROWS:
        raise BadRequest(f"limit must be in [1, {MAX_RESULT_ROWS}]")
    state = ctx.query["state"]
    state_idx = state_index(state) if state is not None else None
    version = ctx.version
    store = version.store
    # "resource" keys the fingerprint so a claims-walk cursor carrying
    # only a state filter can never validate against this route.
    fingerprint = filter_fingerprint(resource="priority", state_idx=state_idx)
    after_rank = 0
    token = ctx.query["cursor"]
    if token is not None:
        cursor = decode_cursor(token)
        if cursor.version != version.name:
            raise BadRequest(
                f"cursor was issued for model version {cursor.version!r} "
                f"but the current default is {version.name!r}; restart "
                "the walk"
            )
        if cursor.etag != store.etag:
            raise BadRequest(
                f"cursor was issued for a different build of model "
                f"version {version.name!r}; restart the walk"
            )
        if cursor.fingerprint != fingerprint:
            raise BadRequest("cursor does not match the request filters")
        after_rank = cursor.rank
    records, next_rank, total = ctx.service.priority_page(
        after_rank=after_rank, limit=limit, state=state, version=version.name
    )
    next_cursor = (
        None
        if next_rank is None
        else encode_cursor(version.name, next_rank, fingerprint, store.etag)
    )
    return {
        "items": records,
        "next_cursor": next_cursor,
        "total": total,
        "model_version": version.name,
    }


def _v2_provider(ctx: RequestContext):
    pid = ctx.int_path("provider_id")
    summary = ctx.service.provider_summary(pid, version=ctx.version.name)
    return {**summary, "model_version": ctx.version.name}


def _v2_state(ctx: RequestContext):
    summary = ctx.service.state_summary(ctx.path["abbr"], version=ctx.version.name)
    return {**summary, "model_version": ctx.version.name}


def _v2_models(ctx: RequestContext):
    return ctx.service.registry.describe()


def _v2_activate(ctx: RequestContext):
    registry = ctx.service.registry
    previous = registry.default_name
    try:
        version = registry.activate(ctx.path["name"])
    except KeyError as exc:
        raise NotFound(str(exc.args[0])) from None
    return {"default": version.name, "previous": previous}


def build_router() -> Router:
    """The full route table: v2 resources plus the frozen v1 adapters."""
    router = Router()
    router.add("GET", "/healthz", _healthz, admit=False)
    router.add("GET", "/readyz", _readyz, admit=False)
    router.add(
        "GET",
        "/metrics",
        _metrics_endpoint,
        admit=False,
        query=(QueryParam("format"),),
    )
    # v2 — resource-oriented, versioned, paginated.
    router.add(
        "GET",
        "/v2/claims/{provider_id}/{cell}/{technology}",
        _v2_claim,
        query=(QueryParam("state"),),
    )
    router.add(
        "GET",
        "/v2/claims",
        _v2_claims_list,
        query=_CLAIM_FILTERS
        + (
            QueryParam("limit", "int", default=DEFAULT_PAGE_LIMIT),
            QueryParam("cursor"),
        ),
    )
    router.add("POST", "/v2/claims:batchScore", _v2_batch_score)
    router.add(
        "GET",
        "/v2/analytics/priority",
        _v2_priority,
        query=(
            QueryParam("state"),
            QueryParam("limit", "int", default=DEFAULT_PAGE_LIMIT),
            QueryParam("cursor"),
        ),
    )
    router.add("GET", "/v2/providers/{provider_id}", _v2_provider)
    router.add("GET", "/v2/states/{abbr}", _v2_state)
    router.add("GET", "/v2/models", _v2_models, admit=False)
    router.add("POST", "/v2/models/{name}:activate", _v2_activate, admit=False)
    # v1 — deprecated thin adapters, bitwise-frozen responses.
    router.add("GET", "/v1/stats", _v1_stats, admit=False)
    router.add(
        "GET",
        "/v1/claim",
        _v1_claim,
        query=(
            QueryParam("provider_id", "int", required=True),
            QueryParam("cell", "int", required=True),
            QueryParam("technology", "int", required=True),
            QueryParam("state"),
        ),
    )
    router.add(
        "GET",
        "/v1/top",
        _v1_top,
        query=(QueryParam("k", "int", default=10),) + _CLAIM_FILTERS,
    )
    # ``:path`` captures + raw (undecoded) segments keep the old
    # prefix/suffix matching exactly: degenerate paths
    # (/v1/provider//summary, /v1/provider/1/2/summary) stay 400s with
    # the historical messages, and percent-escapes are not interpreted.
    router.add(
        "GET",
        "/v1/provider/{provider_id:path}/summary",
        _v1_provider_summary,
        decode_path=False,
    )
    router.add(
        "GET",
        "/v1/state/{abbr:path}/summary",
        _v1_state_summary,
        decode_path=False,
    )
    router.add("POST", "/v1/score", _v1_score)
    return router


class AuditHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`AuditService`."""

    daemon_threads = True
    # The stdlib default listen backlog is 5: under an overload's
    # reconnect bursts, the SYN queue overflows and clients stall a full
    # retransmit timeout (~1s) — exactly when fast 429s matter most.
    request_queue_size = 128

    def __init__(
        self,
        address,
        service: AuditService,
        verbose: bool = False,
        resilience: ResilienceConfig | None = None,
        access_log: Callable[[dict], None] | None = None,
        reuse_port: bool = False,
        bind_and_activate: bool = True,
        metrics_view: Callable[[], dict | None] | None = None,
    ):
        self.service = service
        self.router = build_router()
        self.verbose = verbose
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        #: The service's metric registry — admission, per-route request
        #: counters, and latency histograms all land here so ``/metrics``
        #: serves one consistent view per service.
        self.metrics = service.registry.metrics
        self.admission = self.resilience.build_admission(metrics=self.metrics)
        #: Optional structured access-log sink: called with one dict per
        #: completed request (also logged as a JSON line when verbose).
        self.access_log = access_log
        #: Pre-fork pool hooks: ``reuse_port`` lets N workers each bind a
        #: listening socket on one shared port; ``metrics_view`` (a
        #: zero-arg callable returning merged ``export_state`` dumps, or
        #: None on failure) makes ``GET /metrics`` answer for the whole
        #: fleet instead of just this process.
        self.reuse_port = reuse_port
        self.metrics_view = metrics_view
        super().__init__(
            address, _AuditRequestHandler, bind_and_activate=bind_and_activate
        )

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def adopt_socket(self, sock: socket.socket) -> None:
        """Serve on an inherited, already-listening socket.

        The pre-fork fallback when ``SO_REUSEPORT`` is unavailable: the
        parent binds + listens once and every forked worker adopts the
        same socket.  Construct with ``bind_and_activate=False``; the
        adopted socket replaces the unbound placeholder."""
        self.socket.close()
        self.socket = sock
        self.server_address = sock.getsockname()
        host, port = self.server_address[:2]
        self.server_name = host
        self.server_port = port


class _AuditRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2"
    protocol_version = "HTTP/1.1"
    # Responses go out as two small writes (headers, then body).  With
    # Nagle on, the body write sits behind the peer's delayed ACK —
    # a flat ~40ms tax on every sequential keep-alive request.
    disable_nagle_algorithm = True

    #: Per-request observability state (set at the top of ``_dispatch``;
    #: class-level defaults keep early failure paths safe).
    _request_id: str | None = None
    _obs_status: int = 500
    _frozen_v1: bool = False

    # -- plumbing -----------------------------------------------------------

    def setup(self) -> None:
        # StreamRequestHandler applies self.timeout to the connection in
        # super().setup(): a client that stalls mid-request then raises
        # TimeoutError from the read instead of pinning this thread.
        cfg = getattr(self.server, "resilience", None)
        if cfg is not None and cfg.socket_timeout_s is not None:
            self.timeout = cfg.socket_timeout_s
        super().setup()

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload, headers: dict | None = None) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json", headers
        )

    def _send_text(self, status: int, result: PlainTextResult) -> None:
        self._send_bytes(
            status, result.text.encode("utf-8"), result.content_type, None
        )

    def _send_bytes(
        self, status: int, body: bytes, content_type: str, headers: dict | None
    ) -> None:
        self._obs_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # An error path left the request body unread: tell the client
            # this keep-alive socket is done rather than desyncing it.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, headers: dict | None = None) -> None:
        payload: dict = {"error": message}
        # The v1 wire format is frozen at exactly {"error": "..."} (golden
        # tests); everywhere else the error body echoes the request id so
        # a shed/timeout is correlatable with the access log.
        if self._request_id is not None and not self._frozen_v1:
            payload["request_id"] = self._request_id
        self._send_json(status, payload, headers=headers)

    def _retry_after(self, exc: Exception | None = None) -> dict:
        """``Retry-After`` header for shed/unavailable responses.

        RFC 9110 §10.2.3 only allows integer delta-seconds, so the
        configured float is *ceiled*: rounding 2.5s down to 2 (banker's
        rounding) would invite clients back before the window the server
        asked for has passed.
        """
        seconds = getattr(exc, "retry_after_s", None)
        if seconds is None:
            cfg = getattr(self.server, "resilience", None)
            seconds = cfg.retry_after_s if cfg is not None else 1.0
        return {"Retry-After": str(max(1, math.ceil(seconds)))}

    def _request_deadline(self) -> Deadline | None:
        """This request's budget: the ``X-Request-Deadline-Ms`` header
        when the client sent one, else the server default."""
        raw = self.headers.get("X-Request-Deadline-Ms")
        if raw is not None:
            try:
                ms = int(raw)
            except ValueError:
                raise BadRequest(
                    "X-Request-Deadline-Ms must be an integer number of "
                    "milliseconds"
                ) from None
            if ms <= 0:
                raise BadRequest("X-Request-Deadline-Ms must be positive")
            return Deadline.after(ms / 1000.0)
        cfg = getattr(self.server, "resilience", None)
        if cfg is not None and cfg.default_deadline_s is not None:
            return Deadline.after(cfg.default_deadline_s)
        return None

    def _discard_body(self) -> None:
        """Consume an unread request body so the keep-alive socket stays
        usable after an error response; close instead when the body is
        large (not worth reading to save a reconnect) or unreadable.

        This is what keeps shedding cheap under overload: a 429 that
        closed the connection would force every retry through a fresh
        TCP handshake against an already-saturated accept queue.
        """
        raw = self.headers.get("Content-Length")
        try:
            length = int(raw) if raw is not None else 0
        except ValueError:
            self.close_connection = True
            return
        if not 0 <= length <= MAX_DRAIN_BODY_BYTES:
            self.close_connection = True
            return
        try:
            drained = self.rfile.read(length)
        except (TimeoutError, OSError):
            self.close_connection = True
            return
        if len(drained) != length:  # truncated: the socket is poisoned
            self.close_connection = True

    def _body_length(self) -> int:
        """Validated Content-Length (400 on garbage, 413 on oversize).

        Every error path here leaves the request body unread, so the
        connection must not be reused: stale body bytes would be parsed
        as the next request line on this keep-alive socket.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise BadRequest("Content-Length must be an integer") from None
        if length < 0:
            self.close_connection = True
            raise BadRequest("Content-Length must be >= 0")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise PayloadTooLarge(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return length

    # -- dispatch -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        self._request_id = new_request_id()
        self._obs_status = 500
        self._frozen_v1 = url.path.startswith("/v1/")
        # The matched route's name; "unmatched" keeps 404 noise from
        # exploding the per-route label cardinality.
        route_label = "unmatched"
        start = time.perf_counter()
        # Until the request body has been drained, an error response must
        # close the connection: leftover body bytes on a keep-alive
        # socket would be parsed as the next request line.
        body_pending = method == "POST"
        ticket = None
        try:
            try:
                matched = self.server.router.match(method, url.path)
                if matched is None:
                    if body_pending:
                        self._discard_body()
                    self._error(404, f"no route for {url.path}")
                    return
                route, path_params = matched
                route_label = route.name
                if route.decode_path:
                    # Captured segments arrive percent-encoded (the SDK
                    # quotes them); decode like parse_qs does for query
                    # values.  The frozen v1 routes opt out.
                    path_params = {k: unquote(v) for k, v in path_params.items()}
                raw_query = parse_qs(url.query)
                query = parse_query(raw_query, route.query)
                # ``?trace=1`` opts a (non-frozen) route into request
                # tracing: the span tree rides back on the response body.
                want_trace = (
                    not self._frozen_v1
                    and raw_query.get("trace", ["0"])[-1] in ("1", "true")
                )
                tracing = activate_trace(self._request_id) if want_trace else None
                tracer = tracing.__enter__() if tracing is not None else None
                try:
                    with obs_span("request", route=route.name, method=method):
                        deadline = self._request_deadline()
                        admission = getattr(self.server, "admission", None)
                        if route.admit and admission is not None:
                            # Admission happens BEFORE the body is read: a
                            # shed request costs a route match and a queue
                            # probe, not a 16 MiB body parse.  The unread
                            # body forces a connection close on the 429
                            # path (handled below via body_pending).
                            try:
                                key = self.server.service.registry.default_name
                            except RuntimeError:
                                raise ServiceUnavailable(
                                    "no default model version registered"
                                ) from None
                            with obs_span("admission"):
                                ticket = admission.admit(key, deadline)
                        body = None
                        if method == "POST":
                            length = self._body_length()
                            with obs_span("parse_body", bytes=length):
                                try:
                                    body = json.loads(
                                        self.rfile.read(length) or b"{}"
                                    )
                                except json.JSONDecodeError as exc:
                                    body_pending = False
                                    raise BadRequest(
                                        f"invalid JSON body: {exc}"
                                    ) from None
                            body_pending = False
                        ctx = RequestContext(
                            service=self.server.service,
                            path=path_params,
                            query=query,
                            body=body,
                            deadline=deadline,
                            admission=getattr(self.server, "admission", None),
                            metrics_view=getattr(self.server, "metrics_view", None),
                            tracing=tracer is not None,
                        )
                        with obs_span("handler", route=route.name):
                            result = route.handler(ctx)
                    if tracer is not None and isinstance(result, dict):
                        if "model_version" in result:
                            tracer.annotate(model_version=result["model_version"])
                        if "degraded" in result:
                            tracer.annotate(degraded=result["degraded"])
                        result = {**result, "trace": tracer.to_dict()}
                finally:
                    if tracing is not None:
                        tracing.__exit__(None, None, None)
                if isinstance(result, PlainTextResult):
                    self._send_text(200, result)
                elif isinstance(result, RawJsonResult):
                    self._send_bytes(200, result.body, "application/json", None)
                else:
                    self._send_json(200, result)
            finally:
                if ticket is not None:
                    ticket.release()
        except TimeoutError:
            # The client stalled sending its body (socket read timeout):
            # answer 408 and drop the connection — the body is truncated,
            # so the socket cannot be reused.
            self.close_connection = True
            self._error(
                408, "timed out reading the request body", self._retry_after()
            )
        except (ServiceOverloaded, ServiceUnavailable) as exc:
            if body_pending:
                self._discard_body()
            self._error(exc.status, str(exc), self._retry_after(exc))
        except ApiError as exc:
            if body_pending:
                self._discard_body()
            self._error(exc.status, str(exc))
        except DeadlineExceeded as exc:
            # The budget died after admission (queued batch, slow flush):
            # transient server-side congestion, so 503 + Retry-After —
            # never a 500, and never a half-scored body.
            self._count_deadline_expired(route_label)
            if body_pending:
                self._discard_body()
            self._error(503, str(exc), self._retry_after(exc))
        except (ColdPathDegraded, InjectedFault) as exc:
            # Infrastructure faults on paths with no precomputed result
            # to degrade to (e.g. a single cold claim): transient, 503.
            if body_pending:
                self._discard_body()
            self._error(503, f"transient serving failure: {exc}", self._retry_after(exc))
        except (SchemaError, ValueError, OverflowError) as exc:
            # OverflowError backstops integer inputs that pass the
            # "is an integer" checks but overflow a numpy cast further
            # down (e.g. a 20-digit provider id in a summary filter) —
            # malformed input is a 400, never a 500.
            if body_pending:
                self._discard_body()
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            if body_pending:
                self._discard_body()
            self._error(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._record_request(
                method, url.path, route_label, time.perf_counter() - start
            )

    # -- per-request telemetry ----------------------------------------------

    def _count_deadline_expired(self, route_label: str) -> None:
        metrics = getattr(self.server, "metrics", None)
        if metrics is not None:
            metrics.counter("http_deadline_expired_total", route=route_label).inc()

    def _record_request(
        self, method: str, path: str, route_label: str, elapsed: float
    ) -> None:
        """Per-route request metrics plus one structured access-log entry."""
        status = self._obs_status
        metrics = getattr(self.server, "metrics", None)
        if metrics is not None:
            metrics.counter(
                "http_requests_total",
                route=route_label,
                method=method,
                status=str(status),
            ).inc()
            metrics.histogram("http_request_seconds", route=route_label).observe(
                elapsed
            )
        sink = getattr(self.server, "access_log", None)
        if sink is None and not getattr(self.server, "verbose", False):
            return
        entry = {
            "request_id": self._request_id,
            "method": method,
            "path": path,
            "route": route_label,
            "status": status,
            "duration_ms": round(elapsed * 1e3, 3),
            "client": self.client_address[0],
        }
        if callable(sink):
            sink(entry)
        if getattr(self.server, "verbose", False):
            self.log_message("%s", json.dumps(entry))


def make_server(
    service: AuditService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    resilience: ResilienceConfig | None = None,
    access_log: Callable[[dict], None] | None = None,
) -> AuditHTTPServer:
    """Bind an :class:`AuditHTTPServer` (``port=0`` picks a free port).

    ``resilience`` tunes the overload-safety knobs (admission bounds,
    default deadline, socket timeout); the default config keeps existing
    behavior with a bounded worst case.

    ``access_log``, when given, receives one structured dict per
    completed request (request_id, route, status, duration_ms, ...);
    with ``verbose`` the same entries are logged as JSON lines.

    The caller drives the loop: ``server.serve_forever()`` (typically on
    a daemon thread) and ``server.shutdown()`` + ``server.server_close()``
    to stop.
    """
    return AuditHTTPServer(
        (host, port),
        service,
        verbose=verbose,
        resilience=resilience,
        access_log=access_log,
    )
