"""Dependency-free JSON HTTP API over :class:`~repro.serve.service.AuditService`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly the shape the micro-batcher exploits:
concurrent single-claim handlers block on Futures while their requests
coalesce into one vectorized batch per flush.

Dispatch is a declarative route table (:mod:`repro.serve.router`): each
route declares its method, path pattern with ``{param}`` captures, and a
typed query-param spec.  Request/response payloads follow the typed
schemas of :mod:`repro.serve.schemas`, and every data route serves from
one atomic :class:`~repro.serve.registry.ModelVersion` snapshot, so
responses stay internally consistent across hot-swaps.

v2 routes (resource-oriented, the current surface)
--------------------------------------------------

====================================================  =======================
Route                                                 Response
====================================================  =======================
``GET /v2/claims/{provider_id}/{cell}/{technology}``  one claim's record
``[?state=XX]``                                       (``state`` enables the
                                                      cold path); 404 unknown
``GET /v2/claims?[filters]&limit=&cursor=``           cursor-paginated walk
                                                      of the suspicion order
                                                      (filters: provider_id,
                                                      state, technology,
                                                      cell)
``POST /v2/claims:batchScore``                        bulk scoring; body
                                                      ``{"claims": [...]}``
``GET /v2/providers/{provider_id}``                   provider score profile
``GET /v2/states/{abbr}``                             state score profile
``GET /v2/models``                                    registry versions +
                                                      per-version stats
``POST /v2/models/{name}:activate``                   atomic default swap
``GET /healthz``                                      liveness + limits
====================================================  =======================

v1 routes (deprecated, frozen)
------------------------------

``/v1/stats``, ``/v1/claim``, ``/v1/top``, ``/v1/provider/{id}/summary``,
``/v1/state/{abbr}/summary``, and ``POST /v1/score`` are kept as thin
adapters over the same stack with **bitwise-identical** response bodies
(pinned by the golden compatibility tests).  New clients should use v2:
it adds pagination, model versioning, and typed schemas that v1 will
never grow.

Every failure is a JSON body ``{"error": "..."}`` — 400 for malformed
parameters, bodies, or unknown states; 404 for unknown routes and
claims; 413 for oversized bodies.  A traceback never reaches the wire.

Example session (see ``examples/audit_service.py`` for a scripted one)::

    server = make_server(service, port=8350)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    # curl 'http://127.0.0.1:8350/v2/claims?state=TX&limit=10'
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.registry import ModelVersion, state_index, validate_key_range
from repro.serve.router import (
    ApiError,
    BadRequest,
    NotFound,
    PayloadTooLarge,
    QueryParam,
    Router,
    parse_query,
)
from repro.serve.schemas import (
    BatchScoreRequest,
    SchemaError,
    decode_cursor,
    encode_cursor,
    filter_fingerprint,
)
from repro.serve.service import AuditService

__all__ = ["AuditHTTPServer", "make_server", "build_router"]

#: Cap on top-k, page limits, and bulk-scoring request size — enforced
#: uniformly across the v1 and v2 read/score endpoints.
MAX_RESULT_ROWS = 10_000

#: Cap on POST body size (a full 10k-claim bulk request fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Page size of ``GET /v2/claims`` when the client does not pass one.
DEFAULT_PAGE_LIMIT = 100


@dataclass
class RequestContext:
    """Everything one matched request needs, version-snapshotted."""

    service: AuditService
    path: dict[str, str]
    query: dict
    body: object | None = None
    _version: ModelVersion | None = field(default=None, repr=False)

    @property
    def version(self) -> ModelVersion:
        """The model version serving this request — resolved once, so the
        whole response is consistent with exactly one registry entry."""
        if self._version is None:
            self._version = self.service.registry.default
            self._version.count_request()
        return self._version

    def int_path(self, name: str, label: str | None = None) -> int:
        raw = self.path[name]
        try:
            return int(raw)
        except ValueError:
            raise BadRequest(
                f"{label or f'path parameter {name!r}'} must be an integer"
            ) from None


# -- shared pieces ------------------------------------------------------------

_COLD_UNAVAILABLE = (
    "cold-path scoring (state given) is unavailable: "
    "service has no live feature builder"
)

_CLAIM_FILTERS = (
    QueryParam("provider_id", "int"),
    QueryParam("state"),
    QueryParam("technology", "int"),
    QueryParam("cell", "int"),
)


def _require_cold_path(ctx: RequestContext, state) -> None:
    if state is not None and not ctx.version.cold_path_available:
        raise BadRequest(_COLD_UNAVAILABLE)


def _claim_record(ctx: RequestContext, provider_id, cell, technology, state):
    """Shared single-claim lookup; ``NotFound`` for unknown claims."""
    _require_cold_path(ctx, state)
    record = ctx.version.score_claim(provider_id, cell, technology, state)
    if record is None:
        raise NotFound(
            "claim not in the score store (pass state=XX to score it "
            "as a hypothetical filing)"
        )
    return record


# -- meta endpoints -----------------------------------------------------------


def _healthz(ctx: RequestContext):
    return {
        "status": "ok",
        "n_claims": len(ctx.service.registry.default.store),
        "limits": {
            "max_result_rows": MAX_RESULT_ROWS,
            "max_body_bytes": MAX_BODY_BYTES,
            "default_page_limit": DEFAULT_PAGE_LIMIT,
        },
    }


def _v1_stats(ctx: RequestContext):
    return ctx.service.stats()


# -- v1 adapters (frozen wire format) ----------------------------------------


def _v1_claim(ctx: RequestContext):
    q = ctx.query
    return _claim_record(
        ctx, q["provider_id"], q["cell"], q["technology"], q["state"]
    )


def _v1_top(ctx: RequestContext):
    k = ctx.query["k"]
    if not 0 <= k <= MAX_RESULT_ROWS:
        raise BadRequest(f"k must be in [0, {MAX_RESULT_ROWS}]")
    return {
        "results": ctx.service.top_suspicious(
            k=k,
            provider_id=ctx.query["provider_id"],
            state=ctx.query["state"],
            technology=ctx.query["technology"],
            cell=ctx.query["cell"],
            version=ctx.version.name,
        )
    }


def _v1_provider_summary(ctx: RequestContext):
    pid = ctx.int_path("provider_id", label="provider id")
    return ctx.service.provider_summary(pid, version=ctx.version.name)


def _v1_state_summary(ctx: RequestContext):
    return ctx.service.state_summary(ctx.path["abbr"], version=ctx.version.name)


def _v1_score(ctx: RequestContext):
    doc = ctx.body
    if not isinstance(doc, dict):
        raise BadRequest('body must be a JSON object {"claims": [...]}')
    claims = doc.get("claims")
    if not isinstance(claims, list):
        raise BadRequest('body must be {"claims": [...]}')
    if len(claims) > MAX_RESULT_ROWS:
        raise BadRequest(f"at most {MAX_RESULT_ROWS} claims per request")
    payloads = []
    for entry in claims:
        if not isinstance(entry, dict):
            raise BadRequest("each claim must be an object")
        state = entry.get("state")
        if state is not None and not isinstance(state, str):
            raise BadRequest("claim state must be a string state abbreviation")
        try:
            payload = (
                int(entry["provider_id"]),
                int(entry["cell"]),
                int(entry["technology"]),
                state,
            )
        except (KeyError, TypeError, ValueError):
            raise BadRequest(
                "each claim needs integer provider_id, cell, and technology"
            ) from None
        # Range-check before the batcher: an out-of-range key reaching
        # the coalesced scorer would 500 and poison its batchmates.
        try:
            validate_key_range(*payload[:3])
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        payloads.append(payload)
    _require_cold_path(
        ctx, next((p[3] for p in payloads if p[3] is not None), None)
    )
    results = ctx.version.batcher.score_many(payloads, cache_keys=payloads)
    return {"results": results}


# -- v2 resource routes -------------------------------------------------------


def _v2_claim(ctx: RequestContext):
    record = _claim_record(
        ctx,
        ctx.int_path("provider_id"),
        ctx.int_path("cell"),
        ctx.int_path("technology"),
        ctx.query["state"],
    )
    return {"record": record, "model_version": ctx.version.name}


def _v2_claims_list(ctx: RequestContext):
    limit = ctx.query["limit"]
    if not 1 <= limit <= MAX_RESULT_ROWS:
        raise BadRequest(f"limit must be in [1, {MAX_RESULT_ROWS}]")
    state = ctx.query["state"]
    state_idx = state_index(state) if state is not None else None
    version = ctx.version
    fingerprint = filter_fingerprint(
        provider_id=ctx.query["provider_id"],
        state_idx=state_idx,
        technology=ctx.query["technology"],
        cell=ctx.query["cell"],
    )
    store = version.store
    after_rank = 0
    token = ctx.query["cursor"]
    if token is not None:
        cursor = decode_cursor(token)
        if cursor.version != version.name:
            raise BadRequest(
                f"cursor was issued for model version {cursor.version!r} "
                f"but the current default is {version.name!r}; restart "
                "the walk"
            )
        if cursor.etag != store.etag:
            raise BadRequest(
                f"cursor was issued for a different build of model "
                f"version {version.name!r}; restart the walk"
            )
        if cursor.fingerprint != fingerprint:
            raise BadRequest("cursor does not match the request filters")
        after_rank = cursor.rank
    rows, next_rank, total = store.page_suspicious(
        after_rank=after_rank,
        limit=limit,
        provider_id=ctx.query["provider_id"],
        state_idx=state_idx,
        technology=ctx.query["technology"],
        cell=ctx.query["cell"],
    )
    next_cursor = (
        None
        if next_rank is None
        else encode_cursor(version.name, next_rank, fingerprint, store.etag)
    )
    # The canonical Page shape (schemas.Page.to_dict), assembled from the
    # store's record dicts directly — this is a hot path at full-walk
    # scale, so no dataclass round-trip per row.
    return {
        "items": store.records(rows),
        "next_cursor": next_cursor,
        "total": total,
        "model_version": version.name,
    }


def _v2_batch_score(ctx: RequestContext):
    request = BatchScoreRequest.from_dict(ctx.body, max_claims=MAX_RESULT_ROWS)
    _require_cold_path(
        ctx, next((k.state for k in request.claims if k.state is not None), None)
    )
    results = ctx.version.score_keys(list(request.claims))
    return {"results": results, "model_version": ctx.version.name}


def _v2_provider(ctx: RequestContext):
    pid = ctx.int_path("provider_id")
    summary = ctx.service.provider_summary(pid, version=ctx.version.name)
    return {**summary, "model_version": ctx.version.name}


def _v2_state(ctx: RequestContext):
    summary = ctx.service.state_summary(ctx.path["abbr"], version=ctx.version.name)
    return {**summary, "model_version": ctx.version.name}


def _v2_models(ctx: RequestContext):
    return ctx.service.registry.describe()


def _v2_activate(ctx: RequestContext):
    registry = ctx.service.registry
    previous = registry.default_name
    try:
        version = registry.activate(ctx.path["name"])
    except KeyError as exc:
        raise NotFound(str(exc.args[0])) from None
    return {"default": version.name, "previous": previous}


def build_router() -> Router:
    """The full route table: v2 resources plus the frozen v1 adapters."""
    router = Router()
    router.add("GET", "/healthz", _healthz)
    # v2 — resource-oriented, versioned, paginated.
    router.add(
        "GET",
        "/v2/claims/{provider_id}/{cell}/{technology}",
        _v2_claim,
        query=(QueryParam("state"),),
    )
    router.add(
        "GET",
        "/v2/claims",
        _v2_claims_list,
        query=_CLAIM_FILTERS
        + (
            QueryParam("limit", "int", default=DEFAULT_PAGE_LIMIT),
            QueryParam("cursor"),
        ),
    )
    router.add("POST", "/v2/claims:batchScore", _v2_batch_score)
    router.add("GET", "/v2/providers/{provider_id}", _v2_provider)
    router.add("GET", "/v2/states/{abbr}", _v2_state)
    router.add("GET", "/v2/models", _v2_models)
    router.add("POST", "/v2/models/{name}:activate", _v2_activate)
    # v1 — deprecated thin adapters, bitwise-frozen responses.
    router.add("GET", "/v1/stats", _v1_stats)
    router.add(
        "GET",
        "/v1/claim",
        _v1_claim,
        query=(
            QueryParam("provider_id", "int", required=True),
            QueryParam("cell", "int", required=True),
            QueryParam("technology", "int", required=True),
            QueryParam("state"),
        ),
    )
    router.add(
        "GET",
        "/v1/top",
        _v1_top,
        query=(QueryParam("k", "int", default=10),) + _CLAIM_FILTERS,
    )
    # ``:path`` captures + raw (undecoded) segments keep the old
    # prefix/suffix matching exactly: degenerate paths
    # (/v1/provider//summary, /v1/provider/1/2/summary) stay 400s with
    # the historical messages, and percent-escapes are not interpreted.
    router.add(
        "GET",
        "/v1/provider/{provider_id:path}/summary",
        _v1_provider_summary,
        decode_path=False,
    )
    router.add(
        "GET",
        "/v1/state/{abbr:path}/summary",
        _v1_state_summary,
        decode_path=False,
    )
    router.add("POST", "/v1/score", _v1_score)
    return router


class AuditHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`AuditService`."""

    daemon_threads = True

    def __init__(self, address, service: AuditService, verbose: bool = False):
        self.service = service
        self.router = build_router()
        self.verbose = verbose
        super().__init__(address, _AuditRequestHandler)


class _AuditRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/2"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # An error path left the request body unread: tell the client
            # this keep-alive socket is done rather than desyncing it.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _body_length(self) -> int:
        """Validated Content-Length (400 on garbage, 413 on oversize).

        Every error path here leaves the request body unread, so the
        connection must not be reused: stale body bytes would be parsed
        as the next request line on this keep-alive socket.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise BadRequest("Content-Length must be an integer") from None
        if length < 0:
            self.close_connection = True
            raise BadRequest("Content-Length must be >= 0")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise PayloadTooLarge(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return length

    # -- dispatch -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        # Until the request body has been drained, an error response must
        # close the connection: leftover body bytes on a keep-alive
        # socket would be parsed as the next request line.
        body_pending = method == "POST"
        try:
            matched = self.server.router.match(method, url.path)
            if matched is None:
                if body_pending:
                    self.close_connection = True
                self._error(404, f"no route for {url.path}")
                return
            route, path_params = matched
            if route.decode_path:
                # Captured segments arrive percent-encoded (the SDK
                # quotes them); decode like parse_qs does for query
                # values.  The frozen v1 routes opt out.
                path_params = {k: unquote(v) for k, v in path_params.items()}
            query = parse_query(parse_qs(url.query), route.query)
            body = None
            if method == "POST":
                length = self._body_length()
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError as exc:
                    body_pending = False
                    raise BadRequest(f"invalid JSON body: {exc}") from None
                body_pending = False
            ctx = RequestContext(
                service=self.server.service,
                path=path_params,
                query=query,
                body=body,
            )
            self._send_json(200, route.handler(ctx))
        except ApiError as exc:
            if body_pending:
                self.close_connection = True
            self._error(exc.status, str(exc))
        except (SchemaError, ValueError, OverflowError) as exc:
            # OverflowError backstops integer inputs that pass the
            # "is an integer" checks but overflow a numpy cast further
            # down (e.g. a 20-digit provider id in a summary filter) —
            # malformed input is a 400, never a 500.
            if body_pending:
                self.close_connection = True
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            if body_pending:
                self.close_connection = True
            self._error(500, f"{type(exc).__name__}: {exc}")


def make_server(
    service: AuditService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> AuditHTTPServer:
    """Bind an :class:`AuditHTTPServer` (``port=0`` picks a free port).

    The caller drives the loop: ``server.serve_forever()`` (typically on
    a daemon thread) and ``server.shutdown()`` + ``server.server_close()``
    to stop.
    """
    return AuditHTTPServer((host, port), service, verbose=verbose)
