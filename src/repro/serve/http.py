"""Dependency-free JSON HTTP API over :class:`~repro.serve.service.AuditService`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is exactly the shape the micro-batcher exploits:
concurrent ``GET /v1/claim`` handlers block on Futures while their
requests coalesce into one vectorized batch per flush.

Routes
------

==============================================  =============================
Route                                           Response
==============================================  =============================
``GET /healthz``                                liveness + store size
``GET /v1/stats``                               service + batcher counters
``GET /v1/claim?provider_id=&cell=``            one claim's score record
``&technology=[&state=XX]``                     (``state`` enables the cold
                                                path for unknown claims);
                                                404 for unknown claims
``GET /v1/top?[k=10][&provider_id=]``           top-k suspicious claims
``[&state=][&technology=][&cell=]``             matching the filters
``GET /v1/provider/{id}/summary``               provider score profile
``GET /v1/state/{abbr}/summary``                state score profile
``POST /v1/score``                              bulk scoring; JSON body
                                                ``{"claims": [{...}, ...]}``,
                                                each claim a key dict with
                                                optional ``state``
==============================================  =============================

Every failure is a JSON body ``{"error": "..."}`` — 400 for malformed
parameters, bodies, or unknown states; 404 for unknown routes and
claims; 413 for oversized bodies.  A traceback never reaches the wire.

Example session (see ``examples/audit_service.py`` for a scripted one)::

    server = make_server(service, port=8350)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    # curl 'http://127.0.0.1:8350/v1/top?k=10&state=TX'
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import AuditService

__all__ = ["AuditHTTPServer", "make_server"]

#: Cap on /v1/top's k and on bulk-scoring request size.
MAX_RESULT_ROWS = 10_000

#: Cap on POST body size (a full 10k-claim bulk request fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024


class _BadRequest(ValueError):
    """Maps to a 400 response with the message as the error body."""


class _PayloadTooLarge(ValueError):
    """Maps to a 413 response with the message as the error body."""


def _int_param(params: dict, name: str, default=None, required: bool = False):
    values = params.get(name)
    if not values:
        if required:
            raise _BadRequest(f"missing required parameter {name!r}")
        return default
    try:
        return int(values[0])
    except ValueError:
        raise _BadRequest(f"parameter {name!r} must be an integer") from None


def _str_param(params: dict, name: str, default=None):
    values = params.get(name)
    return values[0] if values else default


class AuditHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`AuditService`."""

    daemon_threads = True

    def __init__(self, address, service: AuditService, verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _AuditRequestHandler)


class _AuditRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # An error path left the request body unread: tell the client
            # this keep-alive socket is done rather than desyncing it.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
        service: AuditService = self.server.service
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json(
                    200, {"status": "ok", "n_claims": len(service.store)}
                )
            elif url.path == "/v1/stats":
                self._send_json(200, service.stats())
            elif url.path == "/v1/claim":
                self._claim(service, params)
            elif url.path == "/v1/top":
                self._top(service, params)
            elif url.path.startswith("/v1/provider/") and url.path.endswith(
                "/summary"
            ):
                pid = url.path[len("/v1/provider/") : -len("/summary")]
                try:
                    pid = int(pid)
                except ValueError:
                    raise _BadRequest("provider id must be an integer") from None
                self._send_json(200, service.provider_summary(pid))
            elif url.path.startswith("/v1/state/") and url.path.endswith(
                "/summary"
            ):
                abbr = url.path[len("/v1/state/") : -len("/summary")]
                self._send_json(200, service.state_summary(abbr))
            else:
                self._error(404, f"no route for {url.path}")
        except (_BadRequest, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _body_length(self) -> int:
        """Validated Content-Length (400 on garbage, 413 on oversize).

        Every error path here leaves the request body unread, so the
        connection must not be reused: stale body bytes would be parsed
        as the next request line on this keep-alive socket.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise _BadRequest("Content-Length must be an integer") from None
        if length < 0:
            self.close_connection = True
            raise _BadRequest("Content-Length must be >= 0")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise _PayloadTooLarge(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        return length

    def do_POST(self) -> None:  # noqa: N802
        service: AuditService = self.server.service
        url = urlsplit(self.path)
        try:
            if url.path != "/v1/score":
                # The body stays unread on this branch too — don't let a
                # keep-alive client reuse the desynced socket.
                self.close_connection = True
                self._error(404, f"no route for {url.path}")
                return
            length = self._body_length()
            try:
                doc = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON body: {exc}") from None
            if not isinstance(doc, dict):
                raise _BadRequest('body must be a JSON object {"claims": [...]}')
            claims = doc.get("claims")
            if not isinstance(claims, list):
                raise _BadRequest('body must be {"claims": [...]}')
            if len(claims) > MAX_RESULT_ROWS:
                raise _BadRequest(
                    f"at most {MAX_RESULT_ROWS} claims per request"
                )
            payloads, keys = [], []
            for entry in claims:
                if not isinstance(entry, dict):
                    raise _BadRequest("each claim must be an object")
                state = entry.get("state")
                if state is not None and not isinstance(state, str):
                    raise _BadRequest(
                        "claim state must be a string state abbreviation"
                    )
                try:
                    payload = (
                        int(entry["provider_id"]),
                        int(entry["cell"]),
                        int(entry["technology"]),
                        state,
                    )
                except (KeyError, TypeError, ValueError):
                    raise _BadRequest(
                        "each claim needs integer provider_id, cell, "
                        "and technology"
                    ) from None
                payloads.append(payload)
                keys.append(payload)
            if any(p[3] is not None for p in payloads) and (
                service.builder is None or service.classifier is None
            ):
                raise _BadRequest(
                    "cold-path scoring (state given) is unavailable: "
                    "service has no live feature builder"
                )
            results = service.batcher.score_many(payloads, cache_keys=keys)
            self._send_json(200, {"results": results})
        except _PayloadTooLarge as exc:
            self._error(413, str(exc))
        except (_BadRequest, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    # -- endpoints ----------------------------------------------------------

    def _claim(self, service: AuditService, params: dict) -> None:
        provider_id = _int_param(params, "provider_id", required=True)
        cell = _int_param(params, "cell", required=True)
        technology = _int_param(params, "technology", required=True)
        state = _str_param(params, "state")
        if state is not None and (
            service.builder is None or service.classifier is None
        ):
            raise _BadRequest(
                "cold-path scoring (state given) is unavailable: "
                "service has no live feature builder"
            )
        record = service.score_claim(provider_id, cell, technology, state)
        if record is None:
            self._error(
                404,
                "claim not in the score store (pass state=XX to score it "
                "as a hypothetical filing)",
            )
            return
        self._send_json(200, record)

    def _top(self, service: AuditService, params: dict) -> None:
        k = _int_param(params, "k", default=10)
        if not 0 <= k <= MAX_RESULT_ROWS:
            raise _BadRequest(f"k must be in [0, {MAX_RESULT_ROWS}]")
        records = service.top_suspicious(
            k=k,
            provider_id=_int_param(params, "provider_id"),
            state=_str_param(params, "state"),
            technology=_int_param(params, "technology"),
            cell=_int_param(params, "cell"),
        )
        self._send_json(200, {"results": records})


def make_server(
    service: AuditService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> AuditHTTPServer:
    """Bind an :class:`AuditHTTPServer` (``port=0`` picks a free port).

    The caller drives the loop: ``server.serve_forever()`` (typically on
    a daemon thread) and ``server.shutdown()`` + ``server.server_close()``
    to stop.
    """
    return AuditHTTPServer((host, port), service, verbose=verbose)
