"""Model registry: named (model, score store) versions with atomic hot-swap.

Serving two model versions side by side — last month's model while this
month's warms up, a champion against a challenger — needs more than one
global ``(classifier, store)`` pair.  :class:`ModelRegistry` holds any
number of named :class:`ModelVersion` entries and designates one as the
**default** that anonymous traffic resolves to.

Atomicity is structural, not locked-per-request: a :class:`ModelVersion`
bundles *everything* a request touches — the score store, the optional
live classifier + feature builder, and its **own**
:class:`~repro.serve.batcher.MicroBatcher` (so cached results can never
leak across versions) — and is immutable after registration.  Readers
take one reference (:attr:`ModelRegistry.default`), an atomic pointer
read, and serve the whole request from that snapshot; ``activate`` swaps
the pointer in one assignment.  No request can ever observe a
half-swapped pair, and no cache invalidation is needed on swap.

Per-version counters (requests served, batcher stats) feed the
``GET /v2/models`` endpoint.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from repro.dataset.observations import ObservationColumns
from repro.fcc.states import STATES
from repro.ml.gbdt import _sigmoid
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import MicroBatcher
from repro.serve.resilience import (
    SEAM_COLD_SCORE,
    SEAM_STORE_READ,
    CircuitBreaker,
    ColdPathDegraded,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
)
from repro.serve.schemas import ClaimKey, ScoreRecord
from repro.serve.store import ClaimScoreStore

__all__ = ["ModelRegistry", "ModelVersion", "state_index"]

_STATE_IDX = {s.abbr: i for i, s in enumerate(STATES)}

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1
_UINT64_MAX = 2**64 - 1


def state_index(state: str) -> int:
    """STATES index for an abbreviation; ``ValueError`` on unknown."""
    try:
        return _STATE_IDX[state.upper()]
    except KeyError:
        raise ValueError(f"unknown state {state!r}") from None


def validate_key_range(provider_id: int, cell: int, technology: int) -> None:
    """Reject claim keys the columnar dtypes cannot hold.

    Checked *before* a key reaches any numpy cast or the micro-batcher
    queue: an out-of-range key would otherwise raise ``OverflowError``
    inside the coalesced batch scorer — a 500 instead of a 400, failing
    innocent batchmates flushed alongside it.
    """
    if not (
        _INT64_MIN <= provider_id <= _INT64_MAX
        and _INT64_MIN <= technology <= _INT64_MAX
    ):
        raise ValueError(
            "provider_id and technology must fit in a signed 64-bit integer"
        )
    if not 0 <= cell <= _UINT64_MAX:
        raise ValueError("cell must be a non-negative integer below 2**64")


class ModelVersion:
    """One immutable serving version: store + optional live model + batcher.

    All scoring paths of one version live here — the micro-batched
    single-claim path, the vectorized bulk path, and the cold path for
    hypothetical filings — so a request bound to a version snapshot is
    internally consistent by construction.
    """

    def __init__(
        self,
        name: str,
        store: ClaimScoreStore,
        classifier=None,
        builder=None,
        model=None,
        max_batch: int = 1024,
        max_delay_s: float = 0.002,
        cache_size: int = 4096,
        fault_plan: FaultPlan | None = None,
        breaker: CircuitBreaker | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if not name or "/" in name:
            raise ValueError(f"invalid version name {name!r}")
        self.name = str(name)
        self.store = store
        self.classifier = classifier
        self.builder = builder
        #: The full NBMIntegrityModel when built from one (enables the
        #: labelled slice reports of repro.core.reports).
        self.model = model
        #: Deterministic fault injection at this version's serving seams
        #: (chaos tests only; None in production).
        self.fault_plan = fault_plan
        #: Circuit breaker around the cold scoring path; while open, cold
        #: slots resolve to ColdPathDegraded instead of attempting to
        #: score, and read paths downgrade to degraded responses.
        self.breaker = breaker
        #: This version's serving metrics.  Versions registered through a
        #: ModelRegistry share its registry (one ``/metrics`` view per
        #: service); standalone versions get a private one.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if breaker is not None:
            breaker.bind_metrics(self.metrics, version=self.name)
        self._requests_c = self.metrics.counter(
            "model_requests_total", version=self.name
        )
        self._scores_pre = self.metrics.counter(
            "model_scores_total", version=self.name, path="precomputed"
        )
        self._scores_cold = self.metrics.counter(
            "model_scores_total", version=self.name, path="cold"
        )
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            cache_size=cache_size,
            fault_plan=fault_plan,
            metrics=self.metrics,
            version=self.name,
        )

    # -- introspection ------------------------------------------------------

    @property
    def cold_path_available(self) -> bool:
        return self.classifier is not None and self.builder is not None

    def count_request(self, n: int = 1) -> None:
        self._requests_c.inc(n)

    @property
    def requests(self) -> int:
        return self._requests_c.value

    def describe(self, default: bool = False) -> dict:
        """The ``GET /v2/models`` entry for this version."""
        doc = {
            "name": self.name,
            "default": bool(default),
            "n_claims": len(self.store),
            "cold_path_available": self.cold_path_available,
            "requests": self.requests,
            "batcher": self.batcher.stats.as_dict(),
        }
        if self.breaker is not None:
            doc["breaker"] = self.breaker.describe()
        return doc

    def close(self) -> None:
        self.batcher.close()

    # -- single-claim path (micro-batched) ----------------------------------

    def score_claim_async(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
        deadline: Deadline | None = None,
    ):
        """Enqueue one claim lookup on this version's batcher."""
        if deadline is not None:
            deadline.require("claim request")  # don't queue dead work
        if state is not None:
            state = state.upper()
            state_index(state)  # validate before queueing
            if not self.cold_path_available:
                raise RuntimeError(
                    "cold-path scoring requires a live classifier and "
                    "FeatureBuilder (service was loaded without one)"
                )
        payload = (int(provider_id), int(cell), int(technology), state)
        validate_key_range(*payload[:3])  # before queueing, like the state
        return self.batcher.submit(payload, cache_key=payload, deadline=deadline)

    def score_claim(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
        deadline: Deadline | None = None,
    ) -> dict | None:
        """Synchronous :meth:`score_claim_async` (submits, flushes, waits)."""
        fut = self.score_claim_async(
            provider_id, cell, technology, state, deadline=deadline
        )
        if not fut.done():
            self.batcher.flush()
        return fut.result()

    # -- bulk paths ---------------------------------------------------------

    @staticmethod
    def _key_columns(triples) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Parallel (pid, cell, tech) arrays from key tuples."""
        n = len(triples)
        return (
            np.fromiter((t[0] for t in triples), dtype=np.int64, count=n),
            np.fromiter((t[1] for t in triples), dtype=np.uint64, count=n),
            np.fromiter((t[2] for t in triples), dtype=np.int64, count=n),
        )

    def _gather(
        self, provider_id, cell, technology
    ) -> tuple[np.ndarray, list[dict | None]]:
        """Composite-index rows + records for parallel key arrays.

        The one shared resolution step under every bulk path: a single
        vectorized ``positions`` probe, misses as ``None``.
        """
        with obs_trace.span("store_lookup") as span:
            if self.fault_plan is not None:
                self.fault_plan.fire(SEAM_STORE_READ)
            pos = self.store.positions(
                np.asarray(provider_id, dtype=np.int64),
                np.asarray(cell, dtype=np.uint64),
                np.asarray(technology, dtype=np.int64),
            )
            hits = int((pos >= 0).sum())
            if span is not None:
                span.attrs.update(keys=int(pos.size), hits=hits)
            records = [
                self.store.record(int(p)) if p >= 0 else None for p in pos
            ]
        if hits:
            self._scores_pre.inc(hits)
        return pos, records

    def score_claims(self, provider_id, cell, technology) -> list[dict | None]:
        """Vectorized store lookup for arrays of claim keys (no cold path)."""
        return self._gather(provider_id, cell, technology)[1]

    def score_keys(
        self, keys: list[ClaimKey], deadline: Deadline | None = None
    ) -> tuple[list[dict | None], bool]:
        """Score typed claim keys: one vectorized gather for precomputed
        keys, with cold-capable misses riding the micro-batcher.

        The v2 batch-endpoint path: unlike the v1 bulk path (every key
        through the batcher's Future machinery), keys already in the
        store skip the queue entirely.

        Returns ``(results, degraded)``.  ``degraded`` flips when cold
        slots could not be scored for *infrastructure* reasons — the
        circuit breaker is open, the request's budget ran out before the
        cold flush, or an injected fault hit the scorer: those slots
        resolve to ``None`` and the precomputed remainder still serves.
        A cold slot whose live scoring fails on *bad data* still raises,
        deliberately matching the v1 bulk path — client errors are 400s,
        not silent gaps.
        """
        if not keys:
            return [], False
        # Validate every key up front — ranges always, and carried
        # states even on keys that hit the store.  A typo'd state must
        # fail now, not on the first miss; and anything raising
        # mid-submit below would strand already-queued batchmates with
        # no waiter to drain them.
        for key in keys:
            validate_key_range(key.provider_id, key.cell, key.technology)
            if key.state is not None:
                state_index(key.state)
        if deadline is not None:
            deadline.require("batch request")
        pos, results = self._gather(*self._key_columns([k.payload for k in keys]))
        cold = [i for i, p in enumerate(pos) if p < 0 and keys[i].state is not None]
        degraded = False
        if cold:
            futures = []
            try:
                for i in cold:
                    futures.append(
                        (
                            i,
                            self.score_claim_async(
                                *keys[i].payload, deadline=deadline
                            ),
                        )
                    )
            except DeadlineExceeded:
                # Budget died mid-submit: slots not yet queued stay None;
                # the already-queued ones drain through the flush below.
                degraded = True
            self.batcher.flush()
            for i, fut in futures:
                try:
                    results[i] = fut.result()
                except (ColdPathDegraded, DeadlineExceeded, InjectedFault):
                    results[i] = None
                    degraded = True
        return results, degraded

    # -- the coalesced batch scorer -----------------------------------------

    def _score_batch(self, payloads: list) -> list:
        """Resolve one coalesced batch: store gathers + one cold batch.

        Precomputed keys resolve through a single composite-index lookup;
        the cold remainder (explicit ``state``, missing from the store) is
        vectorized and scored in one classifier pass, with percentiles
        placed on the precomputed distribution.
        """
        pid, cell, tech = self._key_columns(payloads)
        pos, results = self._gather(pid, cell, tech)
        cold = [
            i for i, p in enumerate(pos) if p < 0 and payloads[i][3] is not None
        ]
        if not cold:
            return results
        if not self.cold_path_available:
            raise RuntimeError(
                "cold-path scoring requires a live classifier and FeatureBuilder"
            )
        if self.breaker is not None and not self.breaker.allow():
            # Breaker open: fail the cold slots fast without attempting to
            # score.  The precomputed slots of this batch are untouched —
            # graceful degradation, not a batch-wide failure.
            fail = ColdPathDegraded("cold-path circuit breaker is open")
            for i in cold:
                results[i] = fail
            return results
        states = np.array([payloads[i][3] for i in cold], dtype=object)
        try:
            margin = self._cold_margins(pid[cold], cell[cold], tech[cold], states)
        except InjectedFault as exc:
            # An infrastructure fault (as opposed to bad claim data): it
            # counts against the breaker, and the cold slots degrade.
            if self.breaker is not None:
                self.breaker.record_failure()
            fail = ColdPathDegraded(f"cold scoring unavailable: {exc}")
            for i in cold:
                results[i] = fail
            return results
        except Exception:
            # A malformed hypothetical (unknown provider/technology) must
            # not poison the coalesced batch it flushed with: rescore the
            # cold payloads one at a time, turning each failure into that
            # payload's own error (the batcher delivers exception
            # instances per slot and never caches them).
            margin = None
        if margin is not None:
            if self.breaker is not None:
                self.breaker.record_success()
            for j, i in enumerate(cold):
                results[i] = self._cold_record(payloads[i], float(margin[j]))
            return results
        infra_failures = 0
        for j, i in enumerate(cold):
            try:
                one = self._cold_margins(
                    pid[i : i + 1], cell[i : i + 1], tech[i : i + 1], states[j : j + 1]
                )
                results[i] = self._cold_record(payloads[i], float(one[0]))
            except InjectedFault as exc:
                infra_failures += 1
                results[i] = ColdPathDegraded(f"cold scoring unavailable: {exc}")
            except Exception as exc:
                # Bad claim data fails just this slot and never trips the
                # breaker: clients cannot open it with malformed input.
                results[i] = ValueError(
                    f"cold scoring failed for claim "
                    f"(provider_id={int(pid[i])}, cell={int(cell[i])}, "
                    f"technology={int(tech[i])}): {exc}"
                )
        if self.breaker is not None:
            if infra_failures:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        return results

    def _cold_margins(
        self,
        pid: np.ndarray,
        cell: np.ndarray,
        tech: np.ndarray,
        states: np.ndarray,
    ) -> np.ndarray:
        """Live margins for hypothetical filings (one vectorized pass)."""
        with obs_trace.span("cold_score", keys=int(pid.size)):
            if self.fault_plan is not None:
                self.fault_plan.fire(SEAM_COLD_SCORE)
            cols = ObservationColumns(
                provider_id=pid,
                cell=cell,
                technology=tech,
                state=states,
                unserved=np.zeros(pid.size, dtype=np.int64),
            )
            margins = self.classifier.predict_margin(
                self.builder.vectorize_columns(cols)
            )
        self._scores_cold.inc(int(pid.size))
        return margins

    def _cold_record(self, payload: tuple, margin: float) -> dict:
        return ScoreRecord(
            provider_id=payload[0],
            cell=payload[1],
            technology=payload[2],
            state=payload[3],
            score=float(_sigmoid(np.array([margin]))[0]),
            margin=margin,
            percentile=float(self.store.margin_percentile(np.array([margin]))[0]),
            rank=None,
            precomputed=False,
        ).to_dict()


class ModelRegistry:
    """Named model versions + an atomically swappable default.

    ``max_batch`` / ``max_delay_s`` / ``cache_size`` are the batcher
    defaults applied to every version registered through this registry.
    """

    def __init__(
        self,
        max_batch: int = 1024,
        max_delay_s: float = 0.002,
        cache_size: int = 4096,
        metrics: MetricsRegistry | None = None,
    ):
        self._batcher_config = {
            "max_batch": int(max_batch),
            "max_delay_s": float(max_delay_s),
            "cache_size": int(cache_size),
        }
        #: One MetricsRegistry per model registry: every version (and the
        #: HTTP server fronting this registry) records here, so two
        #: services in one process never mix serving series.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._versions: dict[str, ModelVersion] = {}
        self._lock = threading.Lock()
        #: The default version. A bare reference: readers snapshot it in
        #: one atomic read, activate() replaces it in one assignment.
        self._default: ModelVersion | None = None
        #: Maintenance tracking for /readyz: while a hot-swap or a store
        #: load is in flight, the registry reports not-ready (in-flight
        #: requests keep serving from their snapshots regardless).
        self._maintenance_depth = 0
        self._maintenance_reason: str | None = None

    # -- registration -------------------------------------------------------

    def add(
        self,
        name: str,
        store: ClaimScoreStore,
        classifier=None,
        builder=None,
        model=None,
        default: bool | None = None,
        fault_plan: FaultPlan | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> ModelVersion:
        """Register a version; the first one becomes the default unless
        ``default`` says otherwise."""
        version = ModelVersion(
            name,
            store,
            classifier=classifier,
            builder=builder,
            model=model,
            fault_plan=fault_plan,
            breaker=breaker,
            metrics=self.metrics,
            **self._batcher_config,
        )
        with self._lock:
            if version.name in self._versions:
                raise ValueError(f"version {version.name!r} already registered")
            self._versions[version.name] = version
            if default or (default is None and self._default is None):
                self._default = version
        return version

    def load(
        self,
        name: str,
        path: str,
        builder=None,
        default: bool | None = None,
    ) -> ModelVersion:
        """Register a version from an artifact bundle directory.

        The bundle must contain both the model artifacts and the saved
        score store.  ``builder``, when given a compatible live
        :class:`FeatureBuilder`, is re-warmed from the bundle's encoder
        state and enables cold-path scoring for this version.
        """
        from repro.serve.artifacts import load_model_artifacts

        with self.maintenance(f"loading model version {name!r}"):
            artifacts = load_model_artifacts(path, builder=builder)
            store = ClaimScoreStore.load(path)
            return self.add(
                name,
                store,
                classifier=artifacts.classifier,
                builder=builder,
                default=default,
            )

    # -- resolution ---------------------------------------------------------

    @property
    def default(self) -> ModelVersion:
        """An atomic snapshot of the current default version."""
        version = self._default
        if version is None:
            n = len(self._versions)
            raise RuntimeError(
                "registry has no default version "
                + (
                    f"({n} registered; call activate() to pick one)"
                    if n
                    else "(none registered)"
                )
            )
        return version

    @property
    def default_name(self) -> str:
        return self.default.name

    def get(self, name: str) -> ModelVersion:
        try:
            return self._versions[name]
        except KeyError:
            raise KeyError(f"unknown model version {name!r}") from None

    def resolve(self, name: str | None) -> ModelVersion:
        """``None`` -> the default snapshot; a name -> that version."""
        return self.default if name is None else self.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    # -- hot swap -----------------------------------------------------------

    def stage(self, name: str) -> dict:
        """Phase one of a two-phase (fleet-wide) swap: validate and warm
        ``name`` without flipping the default.

        Touches the version's store so the swap's first requests don't
        pay the cold cost, and returns an identity descriptor the pool
        coordinator compares across workers — every member must have
        staged a byte-identical store (same ``etag``) before any of them
        is told to commit, or the swap aborts with no default changed.
        """
        version = self.get(name)
        return {
            "name": version.name,
            "n_claims": len(version.store),
            "etag": version.store.etag,
        }

    def activate(self, name: str) -> ModelVersion:
        """Atomically make ``name`` the default version.

        In-flight requests that already snapshotted the old default keep
        serving from it, complete and internally consistent; requests
        arriving after the swap see only the new version.
        """
        with self.maintenance(f"activating model version {name!r}"):
            with self._lock:
                version = self._versions.get(name)
                if version is None:
                    raise KeyError(f"unknown model version {name!r}")
                self._default = version
            return version

    # -- readiness ----------------------------------------------------------

    @contextmanager
    def maintenance(self, reason: str):
        """Mark the registry not-ready for the duration (``/readyz`` flips).

        Reentrant across concurrent operations: readiness returns once
        the *last* in-flight maintenance window closes.
        """
        with self._lock:
            self._maintenance_depth += 1
            self._maintenance_reason = reason
        try:
            yield
        finally:
            with self._lock:
                self._maintenance_depth -= 1
                if self._maintenance_depth == 0:
                    self._maintenance_reason = None

    @property
    def ready(self) -> bool:
        return self._maintenance_depth == 0 and self._default is not None

    def readiness(self) -> dict:
        """The ``/readyz`` payload: ready flag plus the blocking reason."""
        with self._lock:
            depth = self._maintenance_depth
            reason = self._maintenance_reason
        if depth > 0:
            return {"ready": False, "reason": reason or "maintenance in progress"}
        if self._default is None:
            return {"ready": False, "reason": "no default model version"}
        return {"ready": True, "reason": None}

    # -- introspection / lifecycle ------------------------------------------

    def describe(self) -> dict:
        """The ``GET /v2/models`` payload."""
        default = self._default
        with self._lock:
            versions = sorted(self._versions.values(), key=lambda v: v.name)
        return {
            "default": None if default is None else default.name,
            "versions": [v.describe(default=v is default) for v in versions],
        }

    def close(self) -> None:
        with self._lock:
            versions = list(self._versions.values())
        for version in versions:
            version.close()
