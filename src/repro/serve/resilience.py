"""Overload safety for the serving stack: admission, deadlines, breakers.

The audit service is judged the way broadband-measurement infrastructure
is judged: on staying *correct under partial failure*.  This module is
the substrate the HTTP layer, registry, and micro-batcher share to make
overload a first-class, well-typed outcome instead of an unbounded queue:

=========================  ==================================================
Piece                      Role
=========================  ==================================================
:class:`Deadline`          a per-request time budget, threaded from the HTTP
                           handler through the registry into
                           :meth:`MicroBatcher.submit` — blown budgets are
                           dropped (:class:`DeadlineExceeded`), never scored
:class:`AdmissionController`  bounded per-version request queues in front of
                           the router; a full queue or a budget blown while
                           queued sheds the request
                           (:class:`ServiceOverloaded` → 429 + Retry-After)
:class:`CircuitBreaker`    trips after repeated cold-path failures; while
                           open, cold scoring fails fast and precomputed
                           queries keep serving *degraded*
                           (:class:`ColdPathDegraded`) instead of failing
:class:`FaultPlan`         deterministic fault injection at the serving
                           seams (store reads, cold scoring, batch flushes)
                           — the chaos tests' instrument
:class:`ResilienceConfig`  the HTTP server's knobs (admission bounds,
                           default deadline, socket read timeout)
=========================  ==================================================

Everything here is stdlib + monotonic clocks; the clock is injectable so
breaker and deadline semantics are unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.serve.router import ApiError

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CircuitBreaker",
    "ColdPathDegraded",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceConfig",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "SEAM_BATCH_FLUSH",
    "SEAM_COLD_SCORE",
    "SEAM_STORE_READ",
    "chaos_plan",
    "chaos_plan_names",
]


# -- failure vocabulary -------------------------------------------------------


class ServiceOverloaded(ApiError):
    """Request shed by admission control -> 429 + ``Retry-After``."""

    status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ServiceUnavailable(ApiError):
    """Transient inability to serve (deadline blown in queue, breaker
    open on a cold-only request, registry mid-maintenance) -> 503."""

    status = 503

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceeded(Exception):
    """The request's time budget ran out before it could be scored."""


class ColdPathDegraded(Exception):
    """Cold-path scoring is unavailable (breaker open or scoring fault).

    The batcher delivers instances of this per cold slot; read paths that
    also have precomputed results turn it into a ``degraded: true``
    response instead of failing the whole request.
    """


class InjectedFault(RuntimeError):
    """An error raised on purpose by a :class:`FaultPlan` seam."""


# -- deadlines ----------------------------------------------------------------


class Deadline:
    """An absolute point on the monotonic clock a request must beat.

    Created once at the edge (the HTTP handler) and passed by reference
    down the stack, so every layer measures the *same* budget.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: float, clock=time.monotonic):
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(cls, timeout_s: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``timeout_s`` seconds from now."""
        return cls(clock() + float(timeout_s), clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def require(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(f"{what} deadline exceeded")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def merge_deadlines(a: Deadline | None, b: Deadline | None) -> Deadline | None:
    """The *laxest* of two deadlines (coalesced batch slots keep serving
    while any attached waiter still has budget); ``None`` means no limit."""
    if a is None or b is None:
        return None
    return a if a.expires_at >= b.expires_at else b


# -- admission control --------------------------------------------------------


class AdmissionStats:
    """Counters and gauges for one admission gate (per version name).

    Backed by ``admission_*`` instruments in a
    :class:`~repro.obs.metrics.MetricsRegistry` (the single source of
    truth); the attribute names and ``as_dict()`` keys are the stable
    view the property tests and ``/healthz`` have always seen.
    """

    def __init__(
        self, metrics: MetricsRegistry | None = None, version: str = ""
    ) -> None:
        m = metrics if metrics is not None else MetricsRegistry()
        self._admitted = m.counter("admission_admitted_total", version=version)
        self._shed_queue_full = m.counter(
            "admission_shed_total", version=version, reason="queue_full"
        )
        self._shed_deadline = m.counter(
            "admission_shed_total", version=version, reason="deadline"
        )
        #: High-water marks; the property tests pin them to the capacities.
        self._peak_running = m.gauge("admission_peak_running", version=version)
        self._peak_queued = m.gauge("admission_peak_queued", version=version)

    def record_admitted(self, running: int) -> None:
        self._admitted.inc()
        self._peak_running.set_max(running)

    def record_queued(self, queued: int) -> None:
        self._peak_queued.set_max(queued)

    def record_shed(self, reason: str) -> None:
        if reason == "queue_full":
            self._shed_queue_full.inc()
        else:
            self._shed_deadline.inc()

    @property
    def admitted(self) -> int:
        return self._admitted.value

    @property
    def shed_queue_full(self) -> int:
        return self._shed_queue_full.value

    @property
    def shed_deadline(self) -> int:
        return self._shed_deadline.value

    @property
    def peak_running(self) -> int:
        return int(self._peak_running.value)

    @property
    def peak_queued(self) -> int:
        return int(self._peak_queued.value)

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "peak_running": self.peak_running,
            "peak_queued": self.peak_queued,
        }


class _Gate:
    """One bounded queue: at most ``max_concurrent`` running requests,
    at most ``max_queue`` waiting for a slot."""

    def __init__(
        self,
        max_concurrent: int,
        max_queue: int,
        metrics: MetricsRegistry | None = None,
        version: str = "",
    ):
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.running = 0
        self.queued = 0
        self.stats = AdmissionStats(metrics, version=version)
        self.cond = threading.Condition()


class _Ticket:
    """Proof of admission; release exactly once (context-manager friendly)."""

    __slots__ = ("_gate", "_released")

    def __init__(self, gate: _Gate):
        self._gate = gate
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        gate = self._gate
        with gate.cond:
            gate.running -= 1
            gate.cond.notify()

    def __enter__(self) -> "_Ticket":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """Bounded per-version request queues with deadline-aware shedding.

    ``admit(key)`` either returns a ticket (release it when the request
    finishes), or raises :class:`ServiceOverloaded`:

    * immediately, when the version's wait queue is already full;
    * after queueing, when the request's deadline (or ``max_wait_s``)
      expires before a slot frees up — a request that would blow its
      budget anyway is shed while it is still cheap.

    Invariants (pinned by the property tests): ``running`` never exceeds
    ``max_concurrent``, ``queued`` never exceeds ``max_queue``, and every
    ``admit`` call resolves to exactly one of admitted / shed.
    """

    def __init__(
        self,
        max_concurrent: int = 64,
        max_queue: int = 256,
        max_wait_s: float = 5.0,
        retry_after_s: float = 1.0,
        metrics: MetricsRegistry | None = None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = int(max_concurrent)
        self.max_queue = int(max_queue)
        self.max_wait_s = float(max_wait_s)
        self.retry_after_s = float(retry_after_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._gates: dict[str, _Gate] = {}
        self._gates_lock = threading.Lock()

    def _gate(self, key: str) -> _Gate:
        gate = self._gates.get(key)
        if gate is None:
            with self._gates_lock:
                gate = self._gates.setdefault(
                    key,
                    _Gate(
                        self.max_concurrent,
                        self.max_queue,
                        metrics=self.metrics,
                        version=key,
                    ),
                )
        return gate

    def admit(self, key: str, deadline: Deadline | None = None) -> _Ticket:
        gate = self._gate(key)
        with gate.cond:
            if gate.running < gate.max_concurrent:
                gate.running += 1
                gate.stats.record_admitted(gate.running)
                return _Ticket(gate)
            if gate.queued >= gate.max_queue:
                gate.stats.record_shed("queue_full")
                raise ServiceOverloaded(
                    f"overloaded: {gate.running} requests in flight and "
                    f"{gate.queued} queued for version {key!r}",
                    retry_after_s=self.retry_after_s,
                )
            gate.queued += 1
            gate.stats.record_queued(gate.queued)
            try:
                budget = self.max_wait_s
                if deadline is not None:
                    budget = min(budget, deadline.remaining())
                expires = time.monotonic() + budget
                while gate.running >= gate.max_concurrent:
                    remaining = expires - time.monotonic()
                    if remaining <= 0 or not gate.cond.wait(timeout=remaining):
                        if gate.running < gate.max_concurrent:
                            break  # woke with a free slot at the buzzer
                        gate.stats.record_shed("deadline")
                        raise ServiceOverloaded(
                            "overloaded: request deadline expired while "
                            f"queued for version {key!r}",
                            retry_after_s=self.retry_after_s,
                        )
                gate.running += 1
                gate.stats.record_admitted(gate.running)
                return _Ticket(gate)
            finally:
                gate.queued -= 1

    def depth(self, key: str) -> dict:
        gate = self._gate(key)
        with gate.cond:
            return {
                "running": gate.running,
                "queued": gate.queued,
                **gate.stats.as_dict(),
            }

    def describe(self) -> dict:
        """The ``/healthz`` payload: limits plus per-version gate depths."""
        with self._gates_lock:
            keys = sorted(self._gates)
        return {
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "max_wait_s": self.max_wait_s,
            "versions": {key: self.depth(key) for key in keys},
        }


# -- circuit breaker ----------------------------------------------------------


class CircuitBreaker:
    """A classic three-state breaker around the cold scoring path.

    *Closed* counts consecutive failures; ``failure_threshold`` of them
    trips it *open*, where :meth:`allow` fails fast (no scoring attempt)
    until ``reset_after_s`` has passed.  Then one *half-open* probe is
    let through: success closes the breaker, failure re-opens it for
    another full window.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0
        self._probing = False
        self._metrics: MetricsRegistry | None = None
        self._metric_labels: dict[str, str] = {}

    def bind_metrics(self, metrics: MetricsRegistry, **labels: str) -> None:
        """Record state transitions into ``metrics`` from now on.

        Called by the model registry when the breaker is attached to a
        version, so ``breaker_transitions_total`` lands in the same
        registry as the version's other serving metrics.
        """
        self._metrics = metrics
        self._metric_labels = {str(k): str(v) for k, v in labels.items()}

    def _set_state_locked(self, new_state: str) -> None:
        if new_state == self._state:
            return
        self._state = new_state
        if self._metrics is not None:
            self._metrics.counter(
                "breaker_transitions_total", to=new_state, **self._metric_labels
            ).inc()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._set_state_locked(self.HALF_OPEN)
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May a cold scoring attempt proceed right now?"""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True  # exactly one probe per window
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._set_state_locked(self.CLOSED)
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == self.HALF_OPEN:
                self._trip_locked()
                return
            self._failures += 1
            if state == self.CLOSED and self._failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._set_state_locked(self.OPEN)
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        self._trips += 1

    def describe(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_after_s": self.reset_after_s,
                "trips": self._trips,
            }


# -- fault injection ----------------------------------------------------------

#: Instrumented seams.  Store reads cover every gather against the
#: precomputed arrays; cold scoring covers the live-classifier path;
#: batch flush covers the micro-batcher's coalesced scoring call.
SEAM_STORE_READ = "store_read"
SEAM_COLD_SCORE = "cold_score"
SEAM_BATCH_FLUSH = "batch_flush"

_SEAMS = (SEAM_STORE_READ, SEAM_COLD_SCORE, SEAM_BATCH_FLUSH)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: at seam ``seam``, calls ``first``,
    ``first + every``, ``first + 2*every``, ... delay for ``delay_s``
    and/or raise :class:`InjectedFault`."""

    seam: str
    #: ``"delay"`` sleeps ``delay_s``; ``"error"`` raises after any delay.
    kind: str = "error"
    delay_s: float = 0.0
    every: int = 2
    first: int = 0
    message: str = "injected fault"

    def __post_init__(self):
        if self.seam not in _SEAMS:
            raise ValueError(f"unknown fault seam {self.seam!r} (use {_SEAMS})")
        if self.kind not in ("delay", "error"):
            raise ValueError("fault kind must be 'delay' or 'error'")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.first < 0:
            raise ValueError("first must be >= 0")

    def fires_on(self, call_index: int) -> bool:
        return call_index >= self.first and (call_index - self.first) % self.every == 0


class FaultPlan:
    """A deterministic schedule of faults across the serving seams.

    Deterministic by construction: each seam keeps a call counter, and a
    spec fires purely as a function of that counter — no wall clock, no
    RNG — so a chaos test replays the exact same fault sequence every
    run.  Thread-safe; counters are shared across all threads touching
    the seam (the interleaving of *requests* stays scheduler-dependent,
    which is exactly the nondeterminism the chaos invariants must
    survive).
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...], name: str = ""):
        self.name = name
        self.specs = tuple(specs)
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {seam: 0 for seam in _SEAMS}
        self._fired: dict[str, int] = {seam: 0 for seam in _SEAMS}

    def fire(self, seam: str) -> None:
        """Called by an instrumented seam; may sleep and/or raise."""
        if seam not in self._calls:
            raise ValueError(f"unknown fault seam {seam!r}")
        with self._lock:
            index = self._calls[seam]
            self._calls[seam] += 1
            hits = [s for s in self.specs if s.seam == seam and s.fires_on(index)]
            if hits:
                self._fired[seam] += 1
        error = None
        for spec in hits:
            if spec.delay_s > 0:
                time.sleep(spec.delay_s)
            if spec.kind == "error" and error is None:
                error = InjectedFault(f"{spec.message} (seam={seam}, call={index})")
        if error is not None:
            raise error

    def counts(self) -> dict:
        """``{seam: {"calls": n, "fired": m}}`` — chaos-test bookkeeping."""
        with self._lock:
            return {
                seam: {"calls": self._calls[seam], "fired": self._fired[seam]}
                for seam in _SEAMS
            }


#: The committed chaos plans the tier-1 smoke runs (and anyone can reuse).
#: Factories, not instances: plans carry counters, so every test run gets
#: a fresh, fully deterministic schedule.
_CHAOS_PLANS = {
    # Cold scoring flaky + slow store reads: exercises the breaker and
    # the degraded-response contract while precomputed reads stay up.
    "cold_flaky": lambda: FaultPlan(
        (
            FaultSpec(seam=SEAM_COLD_SCORE, kind="error", every=2, first=0,
                      message="cold scorer crashed"),
            FaultSpec(seam=SEAM_STORE_READ, kind="delay", delay_s=0.005,
                      every=7, first=3),
        ),
        name="cold_flaky",
    ),
    # Dense store-read failures (an unreadable shard file under an
    # mmap-backed store): every precomputed gather is at risk, so this
    # plan pins the degraded-read contract — reads stay `degraded` or
    # 503, never 500, and never serve a torn result.
    "store_read_flaky": lambda: FaultPlan(
        (
            FaultSpec(seam=SEAM_STORE_READ, kind="error", every=4, first=2,
                      message="shard file unreadable"),
            FaultSpec(seam=SEAM_STORE_READ, kind="delay", delay_s=0.003,
                      every=5, first=0),
        ),
        name="store_read_flaky",
    ),
    # Batcher stalls + occasional store-read faults: exercises deadline
    # drops and the 503-never-500 mapping on infrastructure errors.
    "flush_stall": lambda: FaultPlan(
        (
            FaultSpec(seam=SEAM_BATCH_FLUSH, kind="delay", delay_s=0.02,
                      every=4, first=1),
            FaultSpec(seam=SEAM_STORE_READ, kind="error", every=9, first=5,
                      message="store read failed"),
        ),
        name="flush_stall",
    ),
}


def chaos_plan(name: str) -> FaultPlan:
    """A fresh instance of one of the committed chaos plans."""
    try:
        return _CHAOS_PLANS[name]()
    except KeyError:
        raise KeyError(
            f"unknown chaos plan {name!r} (have {sorted(_CHAOS_PLANS)})"
        ) from None


def chaos_plan_names() -> list[str]:
    return sorted(_CHAOS_PLANS)


# -- server configuration -----------------------------------------------------


@dataclass(frozen=True)
class ResilienceConfig:
    """The HTTP server's overload-safety knobs.

    The defaults are deliberately generous — existing deployments keep
    their behavior, only gaining a bounded worst case.  Benchmarks and
    chaos tests tighten them to force shedding.
    """

    #: Bounded per-version gate: requests running / waiting per version.
    max_concurrent: int = 64
    max_queue: int = 256
    #: Hard cap on time spent waiting for an admission slot.
    max_queue_wait_s: float = 5.0
    #: Per-request budget when the client sends no X-Request-Deadline-Ms.
    default_deadline_s: float = 30.0
    #: Socket read timeout: a stalled client gets a 408, not a thread.
    socket_timeout_s: float | None = 30.0
    #: Advisory Retry-After on 429/503 responses.
    retry_after_s: float = 1.0
    #: Master switch for the admission gate (deadlines still apply).
    admission_enabled: bool = True

    def build_admission(
        self, metrics: MetricsRegistry | None = None
    ) -> AdmissionController | None:
        if not self.admission_enabled:
            return None
        return AdmissionController(
            max_concurrent=self.max_concurrent,
            max_queue=self.max_queue,
            max_wait_s=self.max_queue_wait_s,
            retry_after_s=self.retry_after_s,
            metrics=metrics,
        )
