"""Declarative HTTP routing for the audit API.

The v1 server dispatched with hand-rolled ``do_GET``/``do_POST`` if/else
chains over raw query dicts; this module replaces that with a declarative
route table: each :class:`Route` is a (method, path pattern, typed
query-param spec, handler) row, and :class:`Router` matches an incoming
request to exactly one row plus its extracted path parameters.

Path patterns use ``{param}`` captures (``/v2/claims/{provider_id}/{cell}
/{technology}``); literal text — including Google-style custom-method
suffixes like ``/v2/claims:batchScore`` — matches verbatim.  A plain
capture never spans a ``/``; a ``{param:path}`` capture spans anything
(including nothing), which the frozen v1 summary adapters use to keep
their historical prefix/suffix matching — degenerate paths like
``/v1/provider//summary`` must keep answering 400 (bad id), not 404.

Query parameters are *specified*, not fished out of the dict ad hoc:
each :class:`QueryParam` declares a name, a type (``int`` or ``str``),
and required/default semantics.  :func:`parse_query` enforces the spec —
including rejecting **repeated** parameters (``?state=TX&state=CA``),
which the old ``_str_param`` helpers silently resolved to the first
value.

Failures are typed: :class:`BadRequest` (400), :class:`NotFound` (404),
:class:`RequestTimeout` (408), and :class:`PayloadTooLarge` (413) all
derive from :class:`ApiError`, which carries the HTTP status the server
maps the message to.  The overload statuses (429/503) live in
:mod:`repro.serve.resilience`, next to the machinery that raises them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "ApiError",
    "BadRequest",
    "NotFound",
    "PayloadTooLarge",
    "QueryParam",
    "RequestTimeout",
    "Route",
    "Router",
    "parse_query",
]


class ApiError(Exception):
    """An HTTP-mappable failure: ``status`` + the error-body message."""

    status = 500


class BadRequest(ApiError):
    """Malformed parameters or body -> 400."""

    status = 400


class NotFound(ApiError):
    """Unknown route or resource -> 404."""

    status = 404


class RequestTimeout(ApiError):
    """The client stalled sending its request body -> 408."""

    status = 408


class PayloadTooLarge(ApiError):
    """Request body over the size cap -> 413."""

    status = 413


@dataclass(frozen=True)
class QueryParam:
    """One declared query parameter: name, type, and presence semantics."""

    name: str
    #: ``"int"`` or ``"str"``.
    kind: str = "str"
    required: bool = False
    default: object = None

    def parse(self, raw: str):
        if self.kind == "int":
            try:
                return int(raw)
            except ValueError:
                raise BadRequest(
                    f"parameter {self.name!r} must be an integer"
                ) from None
        return raw


def parse_query(params: dict[str, list[str]], spec: tuple[QueryParam, ...]) -> dict:
    """Resolve a ``parse_qs`` dict against a route's query spec.

    Undeclared parameters are ignored (clients may send tracing extras);
    declared parameters must appear at most once — a repeated parameter
    is ambiguous and fails loudly rather than silently taking the first
    value.
    """
    out: dict = {}
    for param in spec:
        values = params.get(param.name)
        if not values:
            if param.required:
                raise BadRequest(f"missing required parameter {param.name!r}")
            out[param.name] = param.default
            continue
        if len(values) > 1:
            raise BadRequest(
                f"parameter {param.name!r} was given {len(values)} times; "
                "pass it at most once"
            )
        out[param.name] = param.parse(values[0])
    return out


#: ``{param}`` / ``{param:path}`` captures inside a path pattern.
_CAPTURE_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)(:path)?\}")


def _compile_pattern(pattern: str) -> re.Pattern:
    """Compile ``/v2/claims/{provider_id}/...`` into an anchored regex.

    Plain captures are non-greedy and stop at ``/``, so a literal suffix
    after a capture (``/{name}:activate``) stays out of the captured
    value; ``{param:path}`` captures greedily across anything, empty
    included.
    """
    parts: list[str] = []
    pos = 0
    for match in _CAPTURE_RE.finditer(pattern):
        parts.append(re.escape(pattern[pos : match.start()]))
        body = ".*" if match.group(2) else "[^/]+?"
        parts.append(f"(?P<{match.group(1)}>{body})")
        pos = match.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    """One row of the route table."""

    method: str
    pattern: str
    handler: Callable
    query: tuple[QueryParam, ...] = ()
    name: str = ""
    #: Percent-decode captured path segments before the handler runs.
    #: The frozen v1 adapters turn this off: their historical dispatch
    #: saw raw segments, and their wire behavior must not move.
    decode_path: bool = True
    #: Subject to admission control.  Meta routes (health, readiness,
    #: model listing/activation) opt out: an operator must be able to
    #: observe and fix an overloaded server *through* the overload.
    admit: bool = True
    regex: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "regex", _compile_pattern(self.pattern))


class Router:
    """An ordered route table; first matching row wins."""

    def __init__(self, routes: list[Route] | None = None):
        self._routes: list[Route] = list(routes or ())

    def add(
        self,
        method: str,
        pattern: str,
        handler: Callable,
        query: tuple[QueryParam, ...] = (),
        name: str = "",
        decode_path: bool = True,
        admit: bool = True,
    ) -> Route:
        route = Route(
            method=method.upper(),
            pattern=pattern,
            handler=handler,
            query=tuple(query),
            name=name or pattern,
            decode_path=decode_path,
            admit=admit,
        )
        self._routes.append(route)
        return route

    @property
    def routes(self) -> tuple[Route, ...]:
        return tuple(self._routes)

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]] | None:
        """The first route matching (method, path), plus raw path params."""
        method = method.upper()
        for route in self._routes:
            if route.method != method:
                continue
            found = route.regex.match(path)
            if found is not None:
                return route, found.groupdict()
        return None
