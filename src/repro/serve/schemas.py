"""Typed request/response schemas for the audit API (v2 wire contract).

Every payload that crosses the HTTP boundary has a frozen dataclass here
with explicit validation and a canonical JSON encoding, shared by the
server (:mod:`repro.serve.http`), the service facade, and the Python SDK
(:mod:`repro.client`) — replacing the ad-hoc dicts the v1 layer passed
around.  Validation failures raise :class:`SchemaError` (a ``ValueError``
subclass), which the HTTP layer maps to a 400 with the message as the
error body.

==========================  ==================================================
Type                        Wire shape
==========================  ==================================================
:class:`ClaimKey`           ``{"provider_id", "cell", "technology"[, "state"]}``
:class:`ScoreRecord`        one claim's score record (precomputed records
                            carry the claim aggregates; cold records do not)
:class:`Page`               ``{"items", "next_cursor", "total",
                            "model_version"}``
:class:`BatchScoreRequest`  ``{"claims": [ClaimKey, ...]}``
:class:`BatchScoreResponse` ``{"results": [ScoreRecord|null, ...],
                            "model_version", "degraded"}``
:class:`ErrorBody`          ``{"error": "..."}`` (v1 and v2 share it)
==========================  ==================================================

Cursors (:func:`encode_cursor` / :func:`decode_cursor`) are opaque
url-safe base64 tokens pinning four things: the **rank** in the
suspicion order where the next page starts, the **model version** the
walk started on (a hot-swap mid-walk is detected, never silently mixed),
the version's **store etag** (a restart that reloads a retrained store
under the same version name is detected too), and a **fingerprint** of
the filter set (a cursor cannot be replayed against different filters).
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field

__all__ = [
    "SchemaError",
    "ClaimKey",
    "ScoreRecord",
    "Page",
    "ErrorBody",
    "BatchScoreRequest",
    "BatchScoreResponse",
    "Cursor",
    "encode_cursor",
    "decode_cursor",
    "filter_fingerprint",
]

#: Bump when the cursor payload changes incompatibly.
CURSOR_SCHEMA = 1


class SchemaError(ValueError):
    """A request or response payload failed schema validation."""


def _require_int(value, where: str) -> int:
    """Coerce a JSON value to int; bools and floats are *not* integers."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SchemaError(f"{where} must be an integer")
    try:
        return int(value)
    except ValueError:
        raise SchemaError(f"{where} must be an integer") from None


def _require_number(value, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{where} must be a number")
    return float(value)


def _require_object(value, where: str) -> dict:
    if not isinstance(value, dict):
        raise SchemaError(f"{where} must be a JSON object")
    return value


# -- claim keys ---------------------------------------------------------------


@dataclass(frozen=True)
class ClaimKey:
    """One (provider, hex cell, technology) claim key.

    ``state`` marks the key *cold-capable*: a key absent from the score
    store is then scored live as a hypothetical filing in that state.
    """

    provider_id: int
    cell: int
    technology: int
    state: str | None = None

    @classmethod
    def from_dict(cls, doc, where: str = "claim") -> "ClaimKey":
        doc = _require_object(doc, where)
        state = doc.get("state")
        if state is not None and not isinstance(state, str):
            raise SchemaError(
                f"{where}.state must be a string state abbreviation"
            )
        return cls(
            provider_id=_require_int(
                doc.get("provider_id"), f"{where}.provider_id"
            ),
            cell=_require_int(doc.get("cell"), f"{where}.cell"),
            technology=_require_int(doc.get("technology"), f"{where}.technology"),
            state=state,
        )

    def to_dict(self) -> dict:
        doc = {
            "provider_id": self.provider_id,
            "cell": self.cell,
            "technology": self.technology,
        }
        if self.state is not None:
            doc["state"] = self.state
        return doc

    @property
    def payload(self) -> tuple:
        """The batcher payload tuple (also the LRU cache key)."""
        return (self.provider_id, self.cell, self.technology, self.state)


# -- score records ------------------------------------------------------------

#: Claim-aggregate fields present on precomputed records only.
_DETAIL_FIELDS = (
    "claimed_count",
    "max_download_mbps",
    "max_upload_mbps",
    "low_latency",
)


@dataclass(frozen=True)
class ScoreRecord:
    """One claim's score record.

    Precomputed records (``precomputed=True``) carry the claim's filing
    aggregates; *cold* records — hypothetical filings scored live — carry
    ``None`` for those fields and have no rank in the suspicion order.
    """

    provider_id: int
    cell: int
    technology: int
    state: str | None
    score: float
    margin: float
    percentile: float
    rank: int | None
    precomputed: bool
    claimed_count: int | None = None
    max_download_mbps: float | None = None
    max_upload_mbps: float | None = None
    low_latency: bool | None = None

    def to_dict(self) -> dict:
        """Canonical JSON object (bitwise-stable key order).

        The key order matches the v1 wire format exactly — claim
        aggregates (when present) sit between ``rank`` and
        ``precomputed`` — so the v1 adapters and the v2 routes share one
        encoder.
        """
        doc = {
            "provider_id": self.provider_id,
            "cell": self.cell,
            "technology": self.technology,
            "state": self.state,
            "score": self.score,
            "margin": self.margin,
            "percentile": self.percentile,
            "rank": self.rank,
        }
        if self.claimed_count is not None:
            doc["claimed_count"] = self.claimed_count
            doc["max_download_mbps"] = self.max_download_mbps
            doc["max_upload_mbps"] = self.max_upload_mbps
            doc["low_latency"] = self.low_latency
        doc["precomputed"] = self.precomputed
        return doc

    @classmethod
    def from_dict(cls, doc, where: str = "record") -> "ScoreRecord":
        doc = _require_object(doc, where)
        state = doc.get("state")
        if state is not None and not isinstance(state, str):
            raise SchemaError(f"{where}.state must be a string or null")
        rank = doc.get("rank")
        precomputed = doc.get("precomputed")
        if not isinstance(precomputed, bool):
            raise SchemaError(f"{where}.precomputed must be a boolean")
        details: dict = {}
        if doc.get("claimed_count") is not None:
            details = {
                "claimed_count": _require_int(
                    doc["claimed_count"], f"{where}.claimed_count"
                ),
                "max_download_mbps": _require_number(
                    doc.get("max_download_mbps"), f"{where}.max_download_mbps"
                ),
                "max_upload_mbps": _require_number(
                    doc.get("max_upload_mbps"), f"{where}.max_upload_mbps"
                ),
                "low_latency": bool(doc.get("low_latency")),
            }
        return cls(
            provider_id=_require_int(doc.get("provider_id"), f"{where}.provider_id"),
            cell=_require_int(doc.get("cell"), f"{where}.cell"),
            technology=_require_int(doc.get("technology"), f"{where}.technology"),
            state=state,
            score=_require_number(doc.get("score"), f"{where}.score"),
            margin=_require_number(doc.get("margin"), f"{where}.margin"),
            percentile=_require_number(doc.get("percentile"), f"{where}.percentile"),
            rank=None if rank is None else _require_int(rank, f"{where}.rank"),
            precomputed=precomputed,
            **details,
        )

    @property
    def key(self) -> ClaimKey:
        return ClaimKey(self.provider_id, self.cell, self.technology)


# -- pagination ---------------------------------------------------------------


@dataclass(frozen=True)
class Page:
    """One page of the claim list walk (descending suspicion order)."""

    items: tuple[ScoreRecord, ...]
    #: Opaque cursor for the next page; ``None`` on the final page.
    next_cursor: str | None
    #: Total rows matching the filters under this model version.
    total: int
    #: Registry version every item of this page was served from.
    model_version: str

    def to_dict(self) -> dict:
        return {
            "items": [record.to_dict() for record in self.items],
            "next_cursor": self.next_cursor,
            "total": self.total,
            "model_version": self.model_version,
        }

    @classmethod
    def from_dict(cls, doc, where: str = "page") -> "Page":
        doc = _require_object(doc, where)
        items = doc.get("items")
        if not isinstance(items, list):
            raise SchemaError(f"{where}.items must be a list")
        next_cursor = doc.get("next_cursor")
        if next_cursor is not None and not isinstance(next_cursor, str):
            raise SchemaError(f"{where}.next_cursor must be a string or null")
        version = doc.get("model_version")
        if not isinstance(version, str):
            raise SchemaError(f"{where}.model_version must be a string")
        return cls(
            items=tuple(
                ScoreRecord.from_dict(item, f"{where}.items[{i}]")
                for i, item in enumerate(items)
            ),
            next_cursor=next_cursor,
            total=_require_int(doc.get("total"), f"{where}.total"),
            model_version=version,
        )


# -- errors -------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorBody:
    """The uniform failure payload: ``{"error": "..."}``.

    v2 responses additionally carry the server-generated ``request_id``
    (also echoed in the ``X-Request-Id`` header and the access log) so a
    failure can be correlated end to end; the frozen v1 wire format
    stays exactly ``{"error": "..."}``.
    """

    error: str
    request_id: str | None = None

    def to_dict(self) -> dict:
        if self.request_id is None:
            return {"error": self.error}
        return {"error": self.error, "request_id": self.request_id}

    @classmethod
    def from_dict(cls, doc, where: str = "error body") -> "ErrorBody":
        doc = _require_object(doc, where)
        message = doc.get("error")
        if not isinstance(message, str):
            raise SchemaError(f"{where}.error must be a string")
        request_id = doc.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise SchemaError(f"{where}.request_id must be a string")
        return cls(error=message, request_id=request_id)


# -- batch scoring ------------------------------------------------------------


@dataclass(frozen=True)
class BatchScoreRequest:
    """``POST /v2/claims:batchScore`` body: a list of claim keys."""

    claims: tuple[ClaimKey, ...] = field(default_factory=tuple)

    @classmethod
    def from_dict(cls, doc, max_claims: int | None = None) -> "BatchScoreRequest":
        if not isinstance(doc, dict) or not isinstance(doc.get("claims"), list):
            raise SchemaError('body must be {"claims": [...]}')
        claims = doc["claims"]
        if max_claims is not None and len(claims) > max_claims:
            raise SchemaError(f"at most {max_claims} claims per request")
        return cls(
            claims=tuple(
                ClaimKey.from_dict(entry, f"claims[{i}]")
                for i, entry in enumerate(claims)
            )
        )

    def to_dict(self) -> dict:
        return {"claims": [key.to_dict() for key in self.claims]}


@dataclass(frozen=True)
class BatchScoreResponse:
    """Batch results, positionally aligned with the request keys.

    ``None`` marks a key absent from the store that carried no ``state``
    (so the cold path never ran for it) — **unless** ``degraded`` is
    true, in which case ``None`` may also mark a cold-capable key the
    server could not score right now (circuit breaker open, deadline
    blown, scoring fault): the precomputed results around it are still
    exact, and the caller should retry only the gaps.
    """

    results: tuple[ScoreRecord | None, ...]
    model_version: str
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "results": [
                None if record is None else record.to_dict()
                for record in self.results
            ],
            "model_version": self.model_version,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, doc, where: str = "response") -> "BatchScoreResponse":
        doc = _require_object(doc, where)
        results = doc.get("results")
        if not isinstance(results, list):
            raise SchemaError(f"{where}.results must be a list")
        version = doc.get("model_version")
        if not isinstance(version, str):
            raise SchemaError(f"{where}.model_version must be a string")
        degraded = doc.get("degraded", False)
        if not isinstance(degraded, bool):
            raise SchemaError(f"{where}.degraded must be a boolean")
        return cls(
            results=tuple(
                None
                if item is None
                else ScoreRecord.from_dict(item, f"{where}.results[{i}]")
                for i, item in enumerate(results)
            ),
            model_version=version,
            degraded=degraded,
        )


# -- cursors ------------------------------------------------------------------


@dataclass(frozen=True)
class Cursor:
    """Decoded pagination cursor: where the next page starts, and on what."""

    version: str
    rank: int
    fingerprint: str
    #: Content fingerprint of the version's score store at mint time.
    etag: str = ""


def filter_fingerprint(**filters) -> str:
    """Stable fingerprint of a filter set, embedded in cursors.

    ``None`` values (absent filters) are dropped, so the fingerprint is
    insensitive to how the absence was spelled.
    """
    canonical = {k: v for k, v in sorted(filters.items()) if v is not None}
    return json.dumps(canonical, separators=(",", ":"), sort_keys=True)


def encode_cursor(version: str, rank: int, fingerprint: str, etag: str = "") -> str:
    payload = json.dumps(
        {
            "s": CURSOR_SCHEMA,
            "v": version,
            "r": int(rank),
            "f": fingerprint,
            "e": etag,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return base64.urlsafe_b64encode(payload).rstrip(b"=").decode("ascii")


def decode_cursor(token: str) -> Cursor:
    """Decode an opaque cursor; any malformation is a :class:`SchemaError`."""
    if not isinstance(token, str) or not token:
        raise SchemaError("cursor must be a non-empty string")
    padded = token + "=" * (-len(token) % 4)
    try:
        doc = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
    except (binascii.Error, UnicodeDecodeError, json.JSONDecodeError, ValueError):
        raise SchemaError("cursor is not a valid page token") from None
    if not isinstance(doc, dict) or doc.get("s") != CURSOR_SCHEMA:
        raise SchemaError("cursor is not a valid page token")
    version = doc.get("v")
    fingerprint = doc.get("f")
    rank = doc.get("r")
    etag = doc.get("e", "")
    if (
        not isinstance(version, str)
        or not isinstance(fingerprint, str)
        or not isinstance(etag, str)
        or isinstance(rank, bool)
        or not isinstance(rank, int)
        or rank < 0
    ):
        raise SchemaError("cursor is not a valid page token")
    return Cursor(version=version, rank=rank, fingerprint=fingerprint, etag=etag)
