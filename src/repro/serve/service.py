"""The audit-service facade: query methods over a model registry.

:class:`AuditService` is the object the HTTP layer (and any embedding
application) talks to.  Since the v2 redesign it no longer holds a
single global ``(classifier, store)`` pair: it binds through a
:class:`~repro.serve.registry.ModelRegistry` of named, immutable
:class:`~repro.serve.registry.ModelVersion` entries, each bundling

* a :class:`~repro.serve.store.ClaimScoreStore` answering precomputed
  lookups, percentiles, and filtered top-k / paginated suspicion queries;
* that version's own :class:`~repro.serve.batcher.MicroBatcher`
  coalescing concurrent single-claim requests — both precomputed lookups
  and *cold* requests (hypothetical filings absent from the store) —
  into one vectorized batch per flush;
* optionally, the live classifier + feature builder, which enable the
  cold path and the labelled slice reports of :mod:`repro.core.reports`.

Every query method snapshots one version (the registry default, or an
explicit ``version=`` name) and serves entirely from it, so responses
stay internally consistent across :meth:`activate` hot-swaps.

A service can be constructed four ways: :meth:`from_model` (live model,
builds the store), the plain constructor (pre-built store),
:meth:`from_artifacts` (a bundle directory written by :meth:`save` —
standalone serving with no world in memory), or :meth:`from_registry`
(a pre-populated multi-version registry).
"""

from __future__ import annotations

import numpy as np

from repro.fcc.states import STATES
from repro.serve.artifacts import save_model_artifacts
from repro.serve.registry import ModelRegistry, ModelVersion, state_index
from repro.serve.store import ClaimScoreStore

__all__ = ["AuditService"]

#: Name given to the version registered by the single-store constructors.
DEFAULT_VERSION = "default"


class AuditService:
    """Queryable claim-audit service over a registry of score stores."""

    def __init__(
        self,
        store: ClaimScoreStore | None = None,
        classifier=None,
        builder=None,
        model=None,
        threshold: float = 0.5,
        max_batch: int | None = None,
        max_delay_s: float | None = None,
        cache_size: int | None = None,
        registry: ModelRegistry | None = None,
        version_name: str | None = None,
        enrichment=None,
    ):
        self.threshold = float(threshold)
        # Service-level (not per-version): the measured-truth join is an
        # attribute of the world the claims came from, shared by every
        # version serving those claims.  Optional — without it the
        # priority surface degrades to its suspicion-only composite.
        self.enrichment = enrichment
        self._priority_cache: dict[tuple[str, str], object] = {}
        batcher_config = {
            key: value
            for key, value in (
                ("max_batch", max_batch),
                ("max_delay_s", max_delay_s),
                ("cache_size", cache_size),
            )
            if value is not None
        }
        if registry is not None:
            if store is not None:
                raise ValueError("pass either a store or a registry, not both")
            if batcher_config or version_name is not None or any(
                x is not None for x in (classifier, builder, model)
            ):
                # Silently dropping these would leave the caller believing
                # they configured something they did not.
                raise ValueError(
                    "store/classifier/builder/model, batcher settings, and "
                    "version_name apply only when the service builds its "
                    "own registry; configure them on the ModelRegistry "
                    "and its versions instead"
                )
            self.registry = registry
        else:
            if store is None:
                raise ValueError("an AuditService needs a store or a registry")
            self.registry = ModelRegistry(**batcher_config)
            self.registry.add(
                version_name if version_name is not None else DEFAULT_VERSION,
                store,
                classifier=classifier,
                builder=builder,
                model=model,
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_model(cls, model, store: ClaimScoreStore | None = None, **kwargs):
        """Build a service from a fitted :class:`NBMIntegrityModel`.

        Scores every distinct claim of the model's builder up front
        (unless a pre-built ``store`` is given).
        """
        if store is None:
            store = ClaimScoreStore.build(model.classifier, model.builder)
        return cls(
            store,
            classifier=model.classifier,
            builder=model.builder,
            model=model,
            **kwargs,
        )

    @classmethod
    def from_artifacts(cls, path: str, builder=None, **kwargs):
        """Load a standalone service from a bundle directory.

        The bundle must contain both the model artifacts and the saved
        score store (written by :meth:`save`).  ``builder``, when given a
        compatible live :class:`FeatureBuilder`, is re-warmed from the
        bundle's encoder state and enables cold-path scoring.
        """
        registry = ModelRegistry(
            **{
                k: kwargs.pop(k)
                for k in ("max_batch", "max_delay_s", "cache_size")
                if k in kwargs
            }
        )
        registry.load(
            kwargs.pop("version_name", DEFAULT_VERSION), path, builder=builder
        )
        return cls(registry=registry, **kwargs)

    @classmethod
    def from_sharded(cls, path: str, mmap: bool = True, **kwargs):
        """Serve a per-state sharded store bundle (store-only, no model).

        Loads :meth:`ClaimScoreStore.load_sharded` — memory-mapped
        read-only by default, so a national-scale bundle serves without
        materializing untouched shards — and registers it as the default
        version.  Lookups and cursor pagination reproduce the monolithic
        ``sus_order`` exactly (the sharded equivalence contract); the
        cold path needs a classifier and is unavailable here.
        """
        store = ClaimScoreStore.load_sharded(path, mmap=mmap)
        return cls(store, **kwargs)

    @classmethod
    def from_registry(cls, registry: ModelRegistry, **kwargs):
        """Bind a service to a pre-populated multi-version registry."""
        return cls(registry=registry, **kwargs)

    def save(self, path: str, feature_names=None) -> str:
        """Persist the default version (model artifacts + score store)
        into one bundle directory."""
        version = self.registry.default
        if version.classifier is None:
            raise RuntimeError("service has no classifier to save")
        if feature_names is None and version.builder is not None:
            feature_names = version.builder.feature_names
        save_model_artifacts(
            path,
            version.classifier,
            feature_names=feature_names,
            builder=version.builder,
        )
        version.store.save(path)
        return path

    # -- version management --------------------------------------------------

    def add_version(
        self,
        name: str,
        store: ClaimScoreStore,
        classifier=None,
        builder=None,
        model=None,
        default: bool | None = None,
        fault_plan=None,
        breaker=None,
    ) -> ModelVersion:
        """Register another named (model, store) version."""
        return self.registry.add(
            name,
            store,
            classifier=classifier,
            builder=builder,
            model=model,
            default=default,
            fault_plan=fault_plan,
            breaker=breaker,
        )

    def load_version(
        self, name: str, path: str, builder=None, default: bool | None = None
    ) -> ModelVersion:
        """Register a version loaded from an artifact bundle."""
        return self.registry.load(name, path, builder=builder, default=default)

    def activate(self, name: str) -> ModelVersion:
        """Atomically hot-swap the default version (see the registry docs)."""
        return self.registry.activate(name)

    def _resolve(self, version: str | None) -> ModelVersion:
        return self.registry.resolve(version)

    # -- default-version views (back-compat with the single-store facade) ----

    @property
    def store(self) -> ClaimScoreStore:
        return self.registry.default.store

    @property
    def classifier(self):
        return self.registry.default.classifier

    @property
    def builder(self):
        return self.registry.default.builder

    @property
    def model(self):
        return self.registry.default.model

    @property
    def batcher(self):
        return self.registry.default.batcher

    # -- single-claim path (micro-batched) ----------------------------------

    def score_claim_async(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
        version: str | None = None,
        deadline=None,
    ):
        """Enqueue one claim lookup; returns a Future resolving to the
        score record (or ``None`` for an unknown claim with no ``state``).

        Requests from concurrent callers coalesce into one vectorized
        batch per flush of the resolved version's batcher.  ``state``
        marks the request *cold-capable*: a claim absent from the store
        is then scored live as a hypothetical filing (requires a
        classifier and builder).
        """
        return self._resolve(version).score_claim_async(
            provider_id, cell, technology, state, deadline=deadline
        )

    def score_claim(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
        version: str | None = None,
        deadline=None,
    ) -> dict | None:
        """Synchronous :meth:`score_claim_async` (submits, flushes, waits)."""
        return self._resolve(version).score_claim(
            provider_id, cell, technology, state, deadline=deadline
        )

    # -- bulk path (direct, no queue) ---------------------------------------

    def score_claims(
        self, provider_id, cell, technology, version: str | None = None
    ) -> list[dict | None]:
        """Score a batch of claim keys in one vectorized store lookup.

        ``None`` marks keys absent from the store (bulk calls do not take
        the cold path — use :meth:`score_claim` with ``state`` for
        hypotheticals).
        """
        return self._resolve(version).score_claims(provider_id, cell, technology)

    # -- top-k, pagination, and summaries ------------------------------------

    def top_suspicious(
        self,
        k: int = 10,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
        version: str | None = None,
    ) -> list[dict]:
        """The k most suspicious claims matching the filters, as records."""
        store = self._resolve(version).store
        rows = store.top_suspicious(
            k=k,
            provider_id=provider_id,
            state_idx=state_index(state) if state is not None else None,
            technology=technology,
            cell=cell,
        )
        return store.records(rows)

    def _summary(self, store, mask: np.ndarray, head: dict, top_k: int) -> dict:
        n = int(np.count_nonzero(mask))
        if n == 0:
            return {**head, "n_claims": 0}
        scores = store.score[mask]
        top_rows = store.sus_order[mask[store.sus_order]][:top_k]
        return {
            **head,
            "n_claims": n,
            "mean_score": float(scores.mean()),
            "median_score": float(np.median(scores)),
            "max_score": float(scores.max()),
            "suspicious_share": float((scores >= self.threshold).mean()),
            "top_claims": store.records(top_rows),
        }

    def provider_summary(
        self, provider_id: int, top_k: int = 5, version: str | None = None
    ) -> dict:
        """Score profile of one provider's claims (threshold-based mix)."""
        store = self._resolve(version).store
        mask = store.claims.provider_id == np.int64(provider_id)
        return self._summary(store, mask, {"provider_id": int(provider_id)}, top_k)

    def state_summary(
        self, state: str, top_k: int = 5, version: str | None = None
    ) -> dict:
        """Score profile of one state's claims."""
        idx = state_index(state)
        store = self._resolve(version).store
        mask = store.claims.state_idx == np.int16(idx)
        return self._summary(store, mask, {"state": STATES[idx].abbr}, top_k)

    # -- audit-priority surface (repro.enrich.priority) -----------------------

    def priority_table(self, version: str | None = None):
        """The audit-priority table for a version's store, built lazily.

        Materialized once per (version, store etag) — a hot-swap or
        rebuild invalidates the cached table automatically because the
        new store carries a new etag.
        """
        resolved = self._resolve(version)
        store = resolved.store
        key = (resolved.name, store.etag)
        table = self._priority_cache.get(key)
        if table is None:
            from repro.enrich.priority import build_priority

            table = build_priority(store, enrichment=self.enrichment)
            self._priority_cache = {key: table}
        return table

    def priority_page(
        self,
        after_rank: int = 0,
        limit: int = 100,
        state: str | None = None,
        version: str | None = None,
    ) -> tuple[list[dict], int | None, int]:
        """One page of the descending audit-priority walk.

        Returns ``(records, next_rank, total)`` exactly like the store's
        suspicion pagination, with ranks in the unfiltered priority
        order.
        """
        table = self.priority_table(version)
        state_idx = state_index(state) if state is not None else None
        return table.page(
            after_rank=after_rank, limit=limit, state_idx=state_idx
        )

    # -- labelled reports (reuse repro.core.reports) ------------------------

    def slice_report(self, observations, slice_name: str, **kwargs):
        """Outcome-mix report for labelled observations (paper Tables 7–8).

        Delegates to :func:`repro.core.reports.slice_report`; requires the
        service to have been built :meth:`from_model` (labels and fresh
        vectorization need the live model + builder).
        """
        if self.model is None:
            raise RuntimeError(
                "labelled slice reports require a service built from_model()"
            )
        from repro.core.reports import slice_report as _slice_report

        return _slice_report(self.model, observations, slice_name, **kwargs)

    # -- monitoring ---------------------------------------------------------

    def stats(self) -> dict:
        """Default-version counters (the ``/v1/stats`` payload)."""
        version = self.registry.default
        return {
            "n_claims": len(version.store),
            "threshold": self.threshold,
            "cold_path_available": version.cold_path_available,
            "batcher": version.batcher.stats.as_dict(),
        }

    def close(self) -> None:
        self.registry.close()
