"""The audit-service facade: query methods over the score store.

:class:`AuditService` is the object the HTTP layer (and any embedding
application) talks to.  It composes the three serving pieces:

* a :class:`~repro.serve.store.ClaimScoreStore` answering precomputed
  lookups, percentiles, and filtered top-k suspicion queries;
* a :class:`~repro.serve.batcher.MicroBatcher` coalescing concurrent
  single-claim requests — both precomputed lookups and *cold* requests
  (hypothetical filings absent from the store) — into one vectorized
  batch per flush;
* optionally, the live classifier + feature builder, which enable the
  cold path and the labelled slice reports of :mod:`repro.core.reports`.

A service can be constructed three ways: :meth:`from_model` (live model,
builds the store), the plain constructor (pre-built store), or
:meth:`from_artifacts` (a bundle directory written by :meth:`save` —
standalone serving with no world in memory; cold scoring then requires
passing a live builder).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.observations import ObservationColumns
from repro.fcc.states import STATES
from repro.ml.gbdt import GradientBoostedClassifier, _sigmoid
from repro.serve.artifacts import load_model_artifacts, save_model_artifacts
from repro.serve.batcher import MicroBatcher
from repro.serve.store import ClaimScoreStore

__all__ = ["AuditService"]

_STATE_IDX = {s.abbr: i for i, s in enumerate(STATES)}


def _state_index(state: str) -> int:
    try:
        return _STATE_IDX[state.upper()]
    except KeyError:
        raise ValueError(f"unknown state {state!r}") from None


class AuditService:
    """Queryable claim-audit service over a precomputed score store."""

    def __init__(
        self,
        store: ClaimScoreStore,
        classifier: GradientBoostedClassifier | None = None,
        builder=None,
        model=None,
        threshold: float = 0.5,
        max_batch: int = 1024,
        max_delay_s: float = 0.002,
        cache_size: int = 4096,
    ):
        self.store = store
        self.classifier = classifier
        self.builder = builder
        #: The full NBMIntegrityModel when built from one (enables the
        #: labelled slice reports of repro.core.reports).
        self.model = model
        self.threshold = float(threshold)
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            cache_size=cache_size,
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_model(cls, model, store: ClaimScoreStore | None = None, **kwargs):
        """Build a service from a fitted :class:`NBMIntegrityModel`.

        Scores every distinct claim of the model's builder up front
        (unless a pre-built ``store`` is given).
        """
        if store is None:
            store = ClaimScoreStore.build(model.classifier, model.builder)
        return cls(
            store,
            classifier=model.classifier,
            builder=model.builder,
            model=model,
            **kwargs,
        )

    @classmethod
    def from_artifacts(cls, path: str, builder=None, **kwargs):
        """Load a standalone service from a bundle directory.

        The bundle must contain both the model artifacts and the saved
        score store (written by :meth:`save`).  ``builder``, when given a
        compatible live :class:`FeatureBuilder`, is re-warmed from the
        bundle's encoder state and enables cold-path scoring.
        """
        artifacts = load_model_artifacts(path, builder=builder)
        store = ClaimScoreStore.load(path)
        return cls(store, classifier=artifacts.classifier, builder=builder, **kwargs)

    def save(self, path: str, feature_names=None) -> str:
        """Persist model artifacts + score store into one bundle directory."""
        if self.classifier is None:
            raise RuntimeError("service has no classifier to save")
        if feature_names is None and self.builder is not None:
            feature_names = self.builder.feature_names
        save_model_artifacts(
            path, self.classifier, feature_names=feature_names, builder=self.builder
        )
        self.store.save(path)
        return path

    # -- single-claim path (micro-batched) ----------------------------------

    def score_claim_async(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
    ):
        """Enqueue one claim lookup; returns a Future resolving to the
        score record (or ``None`` for an unknown claim with no ``state``).

        Requests from concurrent callers coalesce into one vectorized
        batch per flush.  ``state`` marks the request *cold-capable*:
        a claim absent from the store is then scored live as a
        hypothetical filing (requires a classifier and builder).
        """
        if state is not None:
            state = state.upper()
            _state_index(state)  # validate before queueing
            if self.builder is None or self.classifier is None:
                raise RuntimeError(
                    "cold-path scoring requires a live classifier and "
                    "FeatureBuilder (service was loaded without one)"
                )
        payload = (int(provider_id), int(cell), int(technology), state)
        return self.batcher.submit(payload, cache_key=payload)

    def score_claim(
        self,
        provider_id: int,
        cell: int,
        technology: int,
        state: str | None = None,
    ) -> dict | None:
        """Synchronous :meth:`score_claim_async` (submits, flushes, waits)."""
        fut = self.score_claim_async(provider_id, cell, technology, state)
        if not fut.done():
            self.batcher.flush()
        return fut.result()

    # -- bulk path (direct, no queue) ---------------------------------------

    def score_claims(
        self, provider_id, cell, technology
    ) -> list[dict | None]:
        """Score a batch of claim keys in one vectorized store lookup.

        ``None`` marks keys absent from the store (bulk calls do not take
        the cold path — use :meth:`score_claim` with ``state`` for
        hypotheticals).
        """
        pos = self.store.positions(
            np.asarray(provider_id, dtype=np.int64),
            np.asarray(cell, dtype=np.uint64),
            np.asarray(technology, dtype=np.int64),
        )
        return [self.store.record(int(p)) if p >= 0 else None for p in pos]

    # -- the batch scorer ---------------------------------------------------

    def _score_batch(self, payloads: list) -> list:
        """Resolve one coalesced batch: store gathers + one cold batch.

        Precomputed keys resolve through a single composite-index lookup;
        the cold remainder (explicit ``state``, missing from the store) is
        vectorized and scored in one classifier pass, with percentiles
        placed on the precomputed distribution.
        """
        pid = np.fromiter((p[0] for p in payloads), dtype=np.int64, count=len(payloads))
        cell = np.fromiter((p[1] for p in payloads), dtype=np.uint64, count=len(payloads))
        tech = np.fromiter((p[2] for p in payloads), dtype=np.int64, count=len(payloads))
        pos = self.store.positions(pid, cell, tech)
        results: list[dict | None] = [
            self.store.record(int(p)) if p >= 0 else None for p in pos
        ]
        cold = [
            i for i, p in enumerate(pos) if p < 0 and payloads[i][3] is not None
        ]
        if not cold:
            return results
        if self.builder is None or self.classifier is None:
            raise RuntimeError(
                "cold-path scoring requires a live classifier and FeatureBuilder"
            )
        states = np.array([payloads[i][3] for i in cold], dtype=object)
        try:
            margin = self._cold_margins(pid[cold], cell[cold], tech[cold], states)
        except Exception:
            # A malformed hypothetical (unknown provider/technology) must
            # not poison the coalesced batch it flushed with: rescore the
            # cold payloads one at a time, turning each failure into that
            # payload's own error (the batcher delivers exception
            # instances per slot and never caches them).
            margin = None
        if margin is not None:
            for j, i in enumerate(cold):
                results[i] = self._cold_record(payloads[i], float(margin[j]))
            return results
        for j, i in enumerate(cold):
            try:
                one = self._cold_margins(
                    pid[i : i + 1], cell[i : i + 1], tech[i : i + 1], states[j : j + 1]
                )
                results[i] = self._cold_record(payloads[i], float(one[0]))
            except Exception as exc:
                results[i] = ValueError(
                    f"cold scoring failed for claim "
                    f"(provider_id={int(pid[i])}, cell={int(cell[i])}, "
                    f"technology={int(tech[i])}): {exc}"
                )
        return results

    def _cold_margins(
        self,
        pid: np.ndarray,
        cell: np.ndarray,
        tech: np.ndarray,
        states: np.ndarray,
    ) -> np.ndarray:
        """Live margins for hypothetical filings (one vectorized pass)."""
        cols = ObservationColumns(
            provider_id=pid,
            cell=cell,
            technology=tech,
            state=states,
            unserved=np.zeros(pid.size, dtype=np.int64),
        )
        return self.classifier.predict_margin(self.builder.vectorize_columns(cols))

    def _cold_record(self, payload: tuple, margin: float) -> dict:
        return {
            "provider_id": payload[0],
            "cell": payload[1],
            "technology": payload[2],
            "state": payload[3],
            "score": float(_sigmoid(np.array([margin]))[0]),
            "margin": margin,
            "percentile": float(self.store.margin_percentile(np.array([margin]))[0]),
            "rank": None,
            "precomputed": False,
        }

    # -- top-k and summaries ------------------------------------------------

    def top_suspicious(
        self,
        k: int = 10,
        provider_id: int | None = None,
        state: str | None = None,
        technology: int | None = None,
        cell: int | None = None,
    ) -> list[dict]:
        """The k most suspicious claims matching the filters, as records."""
        rows = self.store.top_suspicious(
            k=k,
            provider_id=provider_id,
            state_idx=_state_index(state) if state is not None else None,
            technology=technology,
            cell=cell,
        )
        return self.store.records(rows)

    def _summary(self, mask: np.ndarray, head: dict, top_k: int) -> dict:
        n = int(np.count_nonzero(mask))
        if n == 0:
            return {**head, "n_claims": 0}
        store = self.store
        scores = store.score[mask]
        top_rows = store.sus_order[mask[store.sus_order]][:top_k]
        return {
            **head,
            "n_claims": n,
            "mean_score": float(scores.mean()),
            "median_score": float(np.median(scores)),
            "max_score": float(scores.max()),
            "suspicious_share": float((scores >= self.threshold).mean()),
            "top_claims": store.records(top_rows),
        }

    def provider_summary(self, provider_id: int, top_k: int = 5) -> dict:
        """Score profile of one provider's claims (threshold-based mix)."""
        mask = self.store.claims.provider_id == np.int64(provider_id)
        return self._summary(mask, {"provider_id": int(provider_id)}, top_k)

    def state_summary(self, state: str, top_k: int = 5) -> dict:
        """Score profile of one state's claims."""
        idx = _state_index(state)
        mask = self.store.claims.state_idx == np.int16(idx)
        return self._summary(mask, {"state": STATES[idx].abbr}, top_k)

    # -- labelled reports (reuse repro.core.reports) ------------------------

    def slice_report(self, observations, slice_name: str, **kwargs):
        """Outcome-mix report for labelled observations (paper Tables 7–8).

        Delegates to :func:`repro.core.reports.slice_report`; requires the
        service to have been built :meth:`from_model` (labels and fresh
        vectorization need the live model + builder).
        """
        if self.model is None:
            raise RuntimeError(
                "labelled slice reports require a service built from_model()"
            )
        from repro.core.reports import slice_report as _slice_report

        return _slice_report(self.model, observations, slice_name, **kwargs)

    # -- monitoring ---------------------------------------------------------

    def stats(self) -> dict:
        """Service counters for the monitoring endpoint."""
        return {
            "n_claims": len(self.store),
            "threshold": self.threshold,
            "cold_path_available": self.classifier is not None
            and self.builder is not None,
            "batcher": self.batcher.stats.as_dict(),
        }

    def close(self) -> None:
        self.batcher.close()
