"""Precomputed per-claim score store (the serving read path).

The NBM's unit of consumption is the distinct (provider, cell,
technology) claim, and the set of claims only changes at filing
deadlines — so the serving layer scores **every** claim once, up front,
through the binned inference path, and answers queries from frozen
parallel arrays:

========================  ===================================================
Array                     Contents
========================  ===================================================
``margin`` / ``score``    raw log-odds and P(suspicious) per claim
``percentile``            empirical percentile of the claim's margin among
                          all claims (ties share a value; max is 100)
``sus_order``             claim rows in descending-suspicion order (ties
                          broken by claim row for determinism)
``sus_rank``              inverse of ``sus_order`` — 0 marks the most
                          suspicious claim
========================  ===================================================

Lookups key through the claim store's existing composite index
(:meth:`~repro.fcc.bdc.ClaimColumns.positions`), so a batch of claim keys
resolves to scores with a handful of fancy-indexed gathers.  Filtered
top-k queries (provider / state / technology / hex) walk ``sus_order``
through a boolean mask — one vectorized pass, no sorting at query time.

Percentiles are computed on margins, not probabilities: the sigmoid
saturates to exactly 1.0 at large margins, which would collapse distinct
suspicion levels into artificial ties.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.dataset.observations import ObservationColumns
from repro.fcc.bdc import ClaimColumns
from repro.fcc.states import STATES
from repro.ml.gbdt import GradientBoostedClassifier, _sigmoid
from repro.obs.metrics import get_metrics
from repro.serve.schemas import ScoreRecord

__all__ = ["ClaimScoreStore", "score_claim_blocks"]

# Store-level instruments live in the process-wide registry: a score
# store has no owning service, and build/load timings matter across all
# of them.  Resolved once at import; updates are lock-cheap.
_LOOKUPS = get_metrics().counter("store_lookups_total")
_LOOKUP_HITS = get_metrics().counter("store_lookup_hits_total")
_BUILD_SECONDS = get_metrics().histogram("store_build_seconds")

STORE_MANIFEST_NAME = "store.json"
STORE_ARRAYS_NAME = "store.npz"

#: Rows scored per vectorize-and-traverse block while building the store.
_BUILD_BLOCK_ROWS = 32_768

#: State abbreviation per STATES index, for claim-record rendering.
_STATE_ABBRS = np.array([s.abbr for s in STATES], dtype=object)


def score_claim_blocks(
    classifier: GradientBoostedClassifier,
    builder,
    claims: ClaimColumns,
    block_rows: int = _BUILD_BLOCK_ROWS,
    binned: bool = True,
) -> np.ndarray:
    """Margin per claim row, scored in bounded blocks.

    The single scoring kernel behind both :meth:`ClaimScoreStore.build`
    (monolithic, in-process) and the shard-parallel workers of
    :mod:`repro.store.parallel`.  Every row is vectorized and scored
    independently of its block, so any partition of the rows — blocks,
    shards, processes — produces bitwise-identical margins; the sharded
    equivalence suite pins that contract.
    """
    binner = classifier.binner
    ensemble = classifier.flat_ensemble
    if binned:
        ensemble.bind_binner(binner)
    n = len(claims)
    margin = np.empty(n)
    states = _STATE_ABBRS[claims.state_idx]
    step = max(1, int(block_rows))
    for start in range(0, n, step):
        stop = min(start + step, n)
        cols = ObservationColumns(
            provider_id=claims.provider_id[start:stop],
            cell=claims.cell[start:stop],
            technology=claims.technology[start:stop].astype(np.int64),
            state=states[start:stop],
            unserved=np.zeros(stop - start, dtype=np.int64),
        )
        X = builder.vectorize_columns(cols)
        if binned:
            margin[start:stop] = ensemble.predict_margin(
                binner.transform(X),
                base_margin=classifier.base_margin,
                binned=True,
            )
        else:
            margin[start:stop] = classifier.predict_margin(X)
    return margin


class ClaimScoreStore:
    """Frozen scores, percentiles, and suspicion orderings for all claims."""

    def __init__(self, claims: ClaimColumns, margin: np.ndarray):
        margin = np.asarray(margin, dtype=np.float64)
        if margin.ndim != 1 or margin.size != len(claims):
            raise ValueError(
                f"margin must be 1-D with {len(claims)} entries, "
                f"got shape {margin.shape}"
            )
        self.claims = claims
        self.margin = margin
        self.score = _sigmoid(margin)
        n = margin.size
        # Descending suspicion; stable sort breaks ties by claim row.
        self.sus_order = np.argsort(-margin, kind="stable")
        self.sus_rank = np.empty(n, dtype=np.int64)
        self.sus_rank[self.sus_order] = np.arange(n, dtype=np.int64)
        # Kept for O(log n) percentile placement of cold-path margins.
        self._sorted_margin = np.sort(margin)
        self.percentile = (
            100.0 * np.searchsorted(self._sorted_margin, margin, side="right") / n
            if n
            else np.empty(0)
        )
        for arr in (self.margin, self.score, self.sus_order, self.sus_rank,
                    self.percentile, self._sorted_margin):
            arr.setflags(write=False)
        self._etag: str | None = None
        self._record_json_cache: dict[int, bytes] = {}

    #: Derived arrays persisted by ``save_sharded`` so a single-shard
    #: bundle can serve without recomputing them per process (key ->
    #: required dtype).  All are deterministic functions of the margins.
    _DERIVED_SPECS = {
        "score": np.float64,
        "sus_order": np.int64,
        "sus_rank": np.int64,
        "sorted_margin": np.float64,
        "percentile": np.float64,
    }

    @classmethod
    def _from_saved_arrays(
        cls, claims: ClaimColumns, margin: np.ndarray, derived: dict
    ) -> "ClaimScoreStore":
        """Construct from persisted derived arrays, skipping recompute.

        The zero-copy pre-fork path: with an mmap-backed single-shard
        bundle every array — claims, margin, *and* the derived orderings
        — stays a read-only mapped page shared by all worker processes,
        instead of each fork rebuilding ~40 bytes/claim of private heap.
        """
        obj = cls.__new__(cls)
        margin = np.asarray(margin, dtype=np.float64)
        if margin.ndim != 1 or margin.size != len(claims):
            raise ValueError(
                f"margin must be 1-D with {len(claims)} entries, "
                f"got shape {margin.shape}"
            )
        obj.claims = claims
        obj.margin = margin
        arrays = {}
        for key, dtype in cls._DERIVED_SPECS.items():
            arr = np.asarray(derived[key], dtype=dtype)
            if arr.shape != margin.shape:
                raise ValueError(
                    f"derived array {key!r} has shape {arr.shape}, "
                    f"expected {margin.shape}"
                )
            arrays[key] = arr
        obj.score = arrays["score"]
        obj.sus_order = arrays["sus_order"]
        obj.sus_rank = arrays["sus_rank"]
        obj._sorted_margin = arrays["sorted_margin"]
        obj.percentile = arrays["percentile"]
        for arr in (obj.margin, obj.score, obj.sus_order, obj.sus_rank,
                    obj.percentile, obj._sorted_margin):
            if arr.flags.writeable:
                arr.setflags(write=False)
        obj._etag = None
        obj._record_json_cache = {}
        return obj

    def __len__(self) -> int:
        return int(self.margin.size)

    @property
    def etag(self) -> str:
        """Content fingerprint of this store's margins (lazy, cached).

        Pagination cursors embed it so a cursor minted against one
        *build* of a store cannot silently resume against another — a
        restart that reloads a retrained store under the same version
        name changes the etag even though the name matches.
        """
        if self._etag is None:
            digest = hashlib.sha1(np.int64(len(self)).tobytes())
            digest.update(self.margin.tobytes())
            self._etag = digest.hexdigest()[:16]
        return self._etag

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        classifier: GradientBoostedClassifier,
        builder,
        claims: ClaimColumns | None = None,
        block_rows: int = _BUILD_BLOCK_ROWS,
        binned: bool = True,
    ) -> "ClaimScoreStore":
        """Score every distinct claim of a columnar store once.

        Claims default to the builder's own claim store (every claim in
        the filing table).  Rows are vectorized straight from the claim
        arrays (:meth:`FeatureBuilder.vectorize_columns` — no per-claim
        ``Observation`` objects) and scored through the binned route-word
        path (:meth:`FlatEnsemble.bind_binner` +
        ``predict_margin(binned=True)``), block by block so peak memory
        stays bounded at NBM scale.  ``binned=False`` scores the same
        blocks through the float traversal instead — the reference the
        scenario harness compares the production path against bitwise.
        """
        if claims is None:
            claims = builder.claims
        with _BUILD_SECONDS.time():
            margin = score_claim_blocks(
                classifier, builder, claims, block_rows=block_rows, binned=binned
            )
            return cls(claims, margin)

    @classmethod
    def build_sharded(
        cls,
        classifier: GradientBoostedClassifier,
        builder,
        claims: ClaimColumns | None = None,
        shards=None,
        n_workers: int = 2,
        workdir: str | None = None,
        block_rows: int = _BUILD_BLOCK_ROWS,
        binned: bool = True,
    ) -> "ClaimScoreStore":
        """Score the claims shard-parallel across worker processes.

        Splits the claim table into per-state shards
        (:class:`repro.store.sharded.ShardedClaimColumns`; ``shards``
        picks the layout), saves the model artifacts plus a frozen
        feature-table bundle into ``workdir`` (a temporary directory by
        default), scores each shard in a ``multiprocessing`` worker that
        loads everything from those pickle-free bundles, and stitches
        the per-shard margin partials back into monolithic row order.
        Bitwise-identical to :meth:`build` — per-row scoring does not
        depend on batch composition (the equivalence suite enforces it).
        """
        from repro.store.parallel import build_sharded_margins
        from repro.store.sharded import ShardedClaimColumns

        if claims is None:
            claims = builder.claims
        sharded = ShardedClaimColumns.from_claims(claims, shards=shards)
        margin = build_sharded_margins(
            classifier,
            builder,
            sharded,
            n_workers=n_workers,
            workdir=workdir,
            block_rows=block_rows,
            binned=binned,
        )
        return cls(claims, margin)

    # -- lookups ------------------------------------------------------------

    def positions(
        self, provider_id: np.ndarray, cell: np.ndarray, technology: np.ndarray
    ) -> np.ndarray:
        """Claim row per key through the composite index (``-1`` = miss)."""
        pos = self.claims.positions(provider_id, cell, technology)
        _LOOKUPS.inc(int(pos.size))
        _LOOKUP_HITS.inc(int((pos >= 0).sum()))
        return pos

    def record(self, row: int) -> dict:
        """One claim's score record as a JSON-safe dict.

        This is the serving hot path (top-k, pages, and bulk scoring all
        build thousands of these per request), so the dict is built
        directly; the key order is the canonical wire shape of
        :class:`~repro.serve.schemas.ScoreRecord` — a unit test pins
        ``record(row) == typed_record(row).to_dict()`` so the two
        encoders cannot drift.
        """
        claims = self.claims
        return {
            "provider_id": int(claims.provider_id[row]),
            "cell": int(claims.cell[row]),
            "technology": int(claims.technology[row]),
            "state": str(_STATE_ABBRS[claims.state_idx[row]]),
            "score": float(self.score[row]),
            "margin": float(self.margin[row]),
            "percentile": float(self.percentile[row]),
            "rank": int(self.sus_rank[row]),
            "claimed_count": int(claims.claimed_count[row]),
            "max_download_mbps": float(claims.max_download_mbps[row]),
            "max_upload_mbps": float(claims.max_upload_mbps[row]),
            "low_latency": bool(claims.low_latency[row]),
            "precomputed": True,
        }

    def typed_record(self, row: int) -> ScoreRecord:
        """One claim's score record as a typed :class:`ScoreRecord`."""
        return ScoreRecord.from_dict(self.record(row))

    def records(self, rows: np.ndarray) -> list[dict]:
        return [self.record(int(r)) for r in np.asarray(rows, dtype=np.int64)]

    def record_json(self, row: int) -> bytes:
        """One claim's record pre-encoded as a JSON fragment (cached).

        A store's records are frozen for its lifetime, so each row is
        encoded at most once and paginated walks splice the cached bytes
        into the response envelope instead of re-serializing the dict on
        every page.  The fragment is byte-identical to ``json.dumps`` of
        :meth:`record` with default separators (a unit test pins it).
        Concurrent first encodes of the same row are benign: both threads
        compute identical bytes.
        """
        cached = self._record_json_cache.get(row)
        if cached is None:
            cached = json.dumps(self.record(row)).encode("utf-8")
            self._record_json_cache[row] = cached
        return cached

    def records_json(self, rows: np.ndarray) -> list[bytes]:
        """Pre-encoded JSON fragments for a batch of rows."""
        return [
            self.record_json(int(r)) for r in np.asarray(rows, dtype=np.int64)
        ]

    def margin_percentile(self, margin) -> np.ndarray:
        """Percentile of arbitrary margins against the stored distribution.

        The cold-path hook: a hypothetical claim's score is placed on the
        same empirical scale as the precomputed claims.
        """
        if not len(self):
            return np.zeros(np.asarray(margin, dtype=np.float64).size)
        idx = np.searchsorted(
            self._sorted_margin, np.asarray(margin, dtype=np.float64), side="right"
        )
        return 100.0 * idx / len(self)

    # -- top-k --------------------------------------------------------------

    def top_suspicious(
        self,
        k: int = 10,
        provider_id: int | None = None,
        state_idx: int | None = None,
        technology: int | None = None,
        cell: int | None = None,
    ) -> np.ndarray:
        """Claim rows of the k most suspicious claims matching the filters.

        Walks the precomputed descending order through one boolean mask;
        with no filters this is a pure slice of ``sus_order``.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        order = self.sus_order
        mask = self._filter_mask(provider_id, state_idx, technology, cell)
        if mask is None:
            return order[:k].copy()
        sel = order[mask[order]]
        return sel[:k]

    # -- cursor pagination ---------------------------------------------------

    def _filter_mask(
        self,
        provider_id: int | None = None,
        state_idx: int | None = None,
        technology: int | None = None,
        cell: int | None = None,
    ) -> np.ndarray | None:
        """Boolean claim mask for a filter set; ``None`` when unfiltered."""
        if (
            provider_id is None
            and state_idx is None
            and technology is None
            and cell is None
        ):
            return None
        claims = self.claims
        mask = np.ones(len(self), dtype=bool)
        if provider_id is not None:
            mask &= claims.provider_id == np.int64(provider_id)
        if state_idx is not None:
            mask &= claims.state_idx == np.int16(state_idx)
        if technology is not None:
            mask &= claims.technology == np.int16(technology)
        if cell is not None:
            mask &= claims.cell == np.uint64(cell)
        return mask

    def page_suspicious(
        self,
        after_rank: int = 0,
        limit: int = 100,
        provider_id: int | None = None,
        state_idx: int | None = None,
        technology: int | None = None,
        cell: int | None = None,
    ) -> tuple[np.ndarray, int | None, int]:
        """One page of the filtered descending-suspicion walk.

        Returns ``(rows, next_rank, total)``: up to ``limit`` claim rows
        whose suspicion rank is ``>= after_rank``, in descending
        suspicion; the rank where the next page starts (``None`` when
        this page exhausts the walk); and the total number of rows
        matching the filters.  Ranks are positions in the *unfiltered*
        suspicion order, so concatenating pages reproduces
        ``sus_order`` (masked by the filters) exactly — the pagination
        contract the API's cursors encode.

        A *filtered* page rebuilds the boolean mask, so a full filtered
        walk is O(n) per page.  That is a deliberate tradeoff: pages
        stay stateless (nothing server-side to invalidate on hot-swap)
        and the mask build is a handful of vectorized compares — revisit
        with a per-fingerprint mask cache if filtered walks at much
        larger n ever dominate.
        """
        if after_rank < 0:
            raise ValueError("after_rank must be >= 0")
        if limit < 1:
            raise ValueError("limit must be >= 1")
        n = len(self)
        mask = self._filter_mask(provider_id, state_idx, technology, cell)
        order = self.sus_order
        if mask is None:
            total = n
            rows = order[after_rank : after_rank + limit]
            stop = after_rank + rows.size
            return rows.copy(), (stop if stop < n else None), total
        total = int(np.count_nonzero(mask))
        tail = order[after_rank:]
        sel = tail[mask[tail]]
        rows = sel[:limit]
        if sel.size > rows.size:
            next_rank = int(self.sus_rank[rows[-1]]) + 1
        else:
            next_rank = None
        return rows.copy(), next_rank, total

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> str:
        """Write the store (claim columns + margins) into a bundle directory.

        Derived arrays (score, percentile, orderings) are deterministic
        from the margins, so only the margins are persisted; :meth:`load`
        recomputes the rest bit-identically.
        """
        os.makedirs(path, exist_ok=True)
        arrays = {
            f"claims/{name}": arr
            for name, arr in self.claims.export_arrays().items()
        }
        arrays["margin"] = self.margin
        with open(os.path.join(path, STORE_ARRAYS_NAME), "wb") as fh:
            np.savez_compressed(fh, **arrays)
        manifest = {
            "schema": 1,
            "kind": "claim-score-store",
            "n_claims": len(self),
            "arrays": STORE_ARRAYS_NAME,
        }
        with open(
            os.path.join(path, STORE_MANIFEST_NAME), "w", encoding="utf-8"
        ) as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ClaimScoreStore":
        """Rebuild a store from a bundle directory written by :meth:`save`."""
        with get_metrics().histogram("store_load_seconds", mode="eager").time():
            return cls._load_eager(path)

    @classmethod
    def _load_eager(cls, path: str) -> "ClaimScoreStore":
        manifest_path = os.path.join(path, STORE_MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no score-store manifest at {manifest_path}")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("kind") != "claim-score-store":
            raise ValueError(
                f"artifact kind {manifest.get('kind')!r} is not a score store"
            )
        arrays_path = os.path.join(path, manifest.get("arrays", STORE_ARRAYS_NAME))
        with np.load(arrays_path, allow_pickle=False) as payload:
            claim_arrays = {}
            margin = None
            for key in payload.files:
                group, _, name = key.partition("/")
                if group == "claims":
                    claim_arrays[name] = payload[key]
                elif key == "margin":
                    margin = payload[key]
        if margin is None:
            raise ValueError(f"{arrays_path} is missing the margin array")
        return cls(ClaimColumns.from_arrays(claim_arrays), margin)

    def save_sharded(
        self, path: str, shards=None, include_derived: bool = True
    ) -> str:
        """Write the store as a per-state sharded bundle (raw-mmap files).

        The claim columns shard through
        :class:`repro.store.sharded.ShardedClaimColumns` (``shards``
        picks the layout) and each shard carries its slice of the margin
        array.  A *single-shard* bundle additionally persists the
        derived arrays (score, orderings, percentiles) so
        :meth:`load_sharded` can serve them straight off the mapped
        pages — the pre-fork worker pool shares one page-cache copy
        instead of recomputing per process.  Multi-shard bundles skip
        them (the orderings are global, not per-shard) and recompute on
        load; ``include_derived=False`` forces the lean layout.
        """
        from repro.store.sharded import ShardedClaimColumns

        sharded = ShardedClaimColumns.from_claims(self.claims, shards=shards)
        extra_shard_arrays = {
            name: {"margin": self.margin[sharded.global_rows(name)]}
            for name in sharded.shard_names
        }
        names = sharded.shard_names
        if include_derived and len(names) == 1:
            rows = sharded.global_rows(names[0])
            # Shard row i holds global row rows[i]; sus_order/sus_rank
            # speak in row indices, so they only persist unchanged when
            # the mapping is the identity (always true for one shard of
            # canonically sorted claims — guarded, not assumed).
            if np.array_equal(rows, np.arange(rows.size, dtype=rows.dtype)):
                extra_shard_arrays[names[0]].update(
                    {
                        "score": self.score,
                        "sus_order": self.sus_order,
                        "sus_rank": self.sus_rank,
                        "sorted_margin": self._sorted_margin,
                        "percentile": self.percentile,
                    }
                )
        return sharded.save(
            path,
            extra_shard_arrays=extra_shard_arrays,
            extra_manifest={"store": {"kind": "claim-score-store"}},
        )

    @classmethod
    def load_sharded(cls, path: str, mmap: bool = True) -> "ClaimScoreStore":
        """Rebuild a store from a bundle written by :meth:`save_sharded`.

        With ``mmap=True`` the shard columns open as read-only
        memory-mapped views; a single-shard bundle serves *zero-copy*
        (claims and margin stay mmap-backed), while multi-shard bundles
        scatter shards back into monolithic row order.
        """
        from repro.store.sharded import ShardedClaimColumns

        mode = "mmap" if mmap else "eager"
        with get_metrics().histogram("store_load_seconds", mode=mode).time():
            return cls._load_sharded(path, mmap=mmap)

    @classmethod
    def _load_sharded(cls, path: str, mmap: bool) -> "ClaimScoreStore":
        from repro.store.sharded import ShardedClaimColumns

        sharded = ShardedClaimColumns.load(path, mmap=mmap)
        missing = [
            name
            for name in sharded.shard_names
            if "margin" not in sharded.extra_arrays.get(name, {})
        ]
        if missing:
            raise ValueError(
                f"sharded bundle at {path} has no margin payload for "
                f"shard(s) {missing[:5]} (was it written by save_sharded?)"
            )
        names = sharded.shard_names
        if len(names) == 1:
            name = names[0]
            extra = sharded.extra_arrays[name]
            if all(key in extra for key in cls._DERIVED_SPECS):
                return cls._from_saved_arrays(
                    sharded.shard(name), extra["margin"], extra
                )
            return cls(sharded.shard(name), extra["margin"])
        margin = np.empty(len(sharded))
        for name in names:
            margin[sharded.global_rows(name)] = sharded.extra_arrays[name][
                "margin"
            ]
        return cls(sharded.to_claims(), margin)
