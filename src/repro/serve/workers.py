"""Pre-fork worker pool: N processes serving one mmap'd score store.

One Python process cannot scale the audit API past a single core — the
GIL serializes handler threads, so a multi-core box serves batch-score
traffic no faster than a laptop.  :class:`WorkerPool` is the classic
pre-fork answer, shaped around what the rest of this package already
provides:

* **Shared pages, not copies** — every worker loads the *same* saved
  single-shard bundle with ``mmap=True``.  The claim columns, margins,
  and (since bundles persist them) the derived serving arrays are
  page-cache-backed and read-only: N workers cost one copy of the store
  in physical memory, and a forked worker is serving microseconds after
  ``exec``-free startup.  The :attr:`~repro.serve.store.ClaimScoreStore.etag`
  of the mapped bundle doubles as the fleet-consistency fingerprint.
* **Kernel-balanced accept** — each worker binds its own listening
  socket on the shared port with ``SO_REUSEPORT``, so the kernel spreads
  connections across workers with no userspace proxy.  The parent holds
  a bound-but-never-listening *probe* socket on the same port: it
  receives no connections, but it keeps the port reserved across worker
  deaths (nothing else can steal the address between a crash and the
  respawn).  Where ``SO_REUSEPORT`` is unavailable the pool falls back
  to the older pre-fork shape: the parent binds + listens once and every
  worker ``accept``\\ s on the inherited socket.
* **Two-phase hot swap** — :meth:`WorkerPool.activate` first asks every
  worker to *stage* the target version (validate, warm, and report the
  store's etag), aborts with nothing changed unless every worker staged
  a byte-identical store, and only then tells each worker to *commit*
  (the registry's atomic pointer flip).  Any single response therefore
  reflects exactly one version — the per-request snapshot guarantees of
  :class:`~repro.serve.registry.ModelRegistry` hold per worker, and the
  stage barrier guarantees no worker can ever commit a version the rest
  of the fleet does not have.
* **Supervision** — a monitor thread watches process sentinels and
  respawns dead workers with exponential backoff
  (``pool_worker_restarts_total``, ``pool_workers``); a respawned worker
  comes up already serving the pool's *current* default version, so a
  kill during a swap heals into the post-swap world.
* **Fleet metrics** — ``GET /metrics`` answered by any worker reports
  the whole pool: the worker upcalls the parent over its event pipe, the
  parent gathers every worker's
  :meth:`~repro.obs.metrics.MetricsRegistry.export_state` dump over the
  command pipes and merges them with
  :func:`~repro.obs.metrics.merge_states` (counters summed, histograms
  merged bucket-wise, gauges labelled per worker), and the reply rides
  back on the event pipe.  The upcall is deadlock-free by construction:
  HTTP handlers run on each worker's daemon threads while the control
  loop answering parent RPCs owns the worker's main thread.

Control plane
-------------

Each worker owns two duplex pipes.  The **command** pipe is the parent's
RPC channel (``ping`` / ``stage`` / ``commit`` / ``metrics`` / ``chaos``
/ ``describe`` / ``shutdown``), serialized by a per-worker lock with a
poll timeout so a dead worker degrades a fleet operation instead of
hanging it.  The **event** pipe carries worker-initiated traffic: the
``ready`` handshake after the server is listening, and the
``metrics_request`` upcall described above.

The pool prefers the ``fork`` start method (instant startup, inherited
mapped pages); on platforms without it, specs and sockets travel through
the spawn pickler instead.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _sentinel_wait

from repro.obs.metrics import MetricsRegistry, get_metrics, merge_states
from repro.serve.resilience import ResilienceConfig

__all__ = ["WorkerPool", "WorkerVersionSpec", "reuse_port_available"]

#: How long a worker must survive before its respawn backoff resets.
_BACKOFF_RESET_S = 5.0


def reuse_port_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` load balancing."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:  # pragma: no cover - platform-dependent
        return False
    return True


@dataclass(frozen=True)
class WorkerVersionSpec:
    """One model version every worker of the pool serves.

    ``path`` names a saved sharded store bundle
    (:meth:`~repro.serve.store.ClaimScoreStore.save_sharded`); workers
    load it with ``mmap=True`` so the pool shares one physical copy.
    ``chaos_plan`` (a :func:`~repro.serve.resilience.chaos_plan` name)
    and ``breaker`` (:class:`~repro.serve.resilience.CircuitBreaker`
    kwargs) exist for the fault-injection harness — plans are rebuilt
    *inside* each worker, since a fault plan's counters cannot cross a
    process boundary.
    """

    name: str
    path: str
    chaos_plan: str | None = None
    breaker: dict | None = None


class _Worker:
    """Parent-side record of one worker slot (respawns reuse the slot)."""

    __slots__ = (
        "index",
        "process",
        "cmd",
        "cmd_lock",
        "evt",
        "evt_thread",
        "ready",
        "started_at",
        "backoff_s",
    )

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.cmd = None
        self.cmd_lock = threading.Lock()
        self.evt = None
        self.evt_thread = None
        self.ready = threading.Event()
        self.started_at = 0.0
        self.backoff_s = 0.0


class WorkerPool:
    """N pre-forked HTTP workers over shared mmap'd score stores.

    ``specs`` lists every version the fleet serves; ``default`` (first
    spec when omitted) is active at startup and after every respawn.
    ``reuse_port=None`` auto-detects ``SO_REUSEPORT`` and falls back to
    the inherited-socket accept model; pass ``False`` to force the
    fallback (the tests do, to pin it).

    Use as a context manager or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        specs: list[WorkerVersionSpec],
        n_workers: int = 2,
        default: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        resilience: ResilienceConfig | None = None,
        reuse_port: bool | None = None,
        metrics: MetricsRegistry | None = None,
        restart_backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
    ):
        if not specs:
            raise ValueError("a WorkerPool needs at least one version spec")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("version spec names must be unique")
        self.specs = list(specs)
        self.n_workers = int(n_workers)
        self.host = host
        self.port = int(port)
        self.resilience = resilience
        self._default = default if default is not None else names[0]
        if self._default not in names:
            raise ValueError(f"default {self._default!r} is not a spec name")
        self.reuse_port = (
            reuse_port_available() if reuse_port is None else bool(reuse_port)
        )
        self._restart_backoff_s = float(restart_backoff_s)
        self._max_backoff_s = float(max_backoff_s)
        #: The pool's own registry: supervision + swap counters live
        #: here and ride into the fleet ``/metrics`` under
        #: ``worker="parent"`` gauge labels.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._workers_g = self.metrics.gauge("pool_workers")
        self._restarts_c = self.metrics.counter("pool_worker_restarts_total")
        self._swaps_committed = self.metrics.counter(
            "pool_swaps_total", outcome="committed"
        )
        self._swaps_aborted = self.metrics.counter(
            "pool_swaps_total", outcome="aborted"
        )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - no-fork platforms
            self._ctx = multiprocessing.get_context()
        self._workers: list[_Worker] = []
        self._workers_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._parent_sock: socket.socket | None = None
        self._monitor_thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def default_name(self) -> str:
        return self._default

    def start(self, ready_timeout_s: float = 60.0) -> "WorkerPool":
        """Bind the port, fork the fleet, wait for every worker's ready
        handshake, then start the supervision monitor."""
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        self._parent_sock = self._bind_parent_socket()
        self.port = self._parent_sock.getsockname()[1]
        self._workers = [_Worker(i) for i in range(self.n_workers)]
        for worker in self._workers:
            self._spawn(worker)
        deadline = time.monotonic() + ready_timeout_s
        for worker in self._workers:
            remaining = deadline - time.monotonic()
            if not worker.ready.wait(max(0.0, remaining)):
                process = worker.process
                alive = process is not None and process.is_alive()
                self.stop()
                raise RuntimeError(
                    f"worker {worker.index} never reported ready "
                    + ("(still starting)" if alive else
                       f"(exitcode {getattr(process, 'exitcode', None)})")
                )
        self._workers_g.set(self.n_workers)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="pool-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def stop(self) -> None:
        """Shut the fleet down: polite RPC first, then force."""
        self._stop_event.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        with self._workers_lock:
            workers = list(self._workers)
        for worker in workers:
            self._rpc(worker, {"op": "shutdown"}, timeout=2.0)
        for worker in workers:
            process = worker.process
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - force path
                    process.kill()
                    process.join(timeout=2.0)
            for conn in (worker.cmd, worker.evt):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
        if self._parent_sock is not None:
            self._parent_sock.close()
            self._parent_sock = None
        self._workers_g.set(0)

    # -- socket plumbing ----------------------------------------------------

    def _bind_parent_socket(self) -> socket.socket:
        """The parent's end of the shared port.

        ``SO_REUSEPORT`` mode: a bound, **non-listening** probe — it gets
        no connections (only listening sockets join the kernel's reuse
        group for TCP) but pins the address so the port cannot be stolen
        while a dead worker is between crash and respawn, and resolves
        ``port=0`` once for the whole fleet.  Fallback mode: the one
        listening socket every worker inherits and accepts on.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.host, self.port))
            else:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.host, self.port))
                sock.listen(128)
        except OSError:
            sock.close()
            raise
        return sock

    # -- process supervision ------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker slot with fresh control pipes."""
        cmd_parent, cmd_child = self._ctx.Pipe()
        evt_parent, evt_child = self._ctx.Pipe()
        listen_sock = None if self.reuse_port else self._parent_sock
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker.index,
                self.specs,
                self._default,
                self.host,
                self.port,
                self.reuse_port,
                listen_sock,
                self.resilience,
                cmd_child,
                evt_child,
            ),
            name=f"audit-worker-{worker.index}",
            daemon=True,
        )
        process.start()
        cmd_child.close()
        evt_child.close()
        worker.process = process
        worker.cmd = cmd_parent
        worker.evt = evt_parent
        worker.ready = threading.Event()
        worker.started_at = time.monotonic()
        worker.evt_thread = threading.Thread(
            target=self._evt_loop,
            args=(worker, evt_parent),
            name=f"pool-evt-{worker.index}",
            daemon=True,
        )
        worker.evt_thread.start()

    def _evt_loop(self, worker: _Worker, conn) -> None:
        """Drain one worker's event pipe: the ready handshake, and the
        fleet-metrics upcall (answered on the same pipe)."""
        while True:
            try:
                event = conn.recv()
            except (EOFError, OSError):
                return
            kind = event.get("event")
            if kind == "ready":
                worker.ready.set()
            elif kind == "metrics_request":
                try:
                    conn.send({"view": self._fleet_view()})
                except (BrokenPipeError, OSError):  # pragma: no cover
                    return

    def _monitor(self) -> None:
        """Watch process sentinels; respawn dead workers with backoff."""
        while not self._stop_event.is_set():
            with self._workers_lock:
                sentinels = {
                    w.process.sentinel: w
                    for w in self._workers
                    if w.process is not None and w.process.is_alive()
                }
            if not sentinels:
                if self._stop_event.wait(0.05):
                    return
                continue
            for sentinel in _sentinel_wait(list(sentinels), timeout=0.2):
                if self._stop_event.is_set():
                    return
                self._respawn(sentinels[sentinel])

    def _respawn(self, worker: _Worker) -> None:
        process = worker.process
        if process is not None:
            process.join(timeout=1.0)
        for conn in (worker.cmd, worker.evt):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        self._restarts_c.inc()
        self._workers_g.set(self._live_count())
        # Exponential backoff, reset after a stable stretch: a worker
        # crash-looping on startup must not busy-spin the fork path.
        if time.monotonic() - worker.started_at > _BACKOFF_RESET_S:
            worker.backoff_s = 0.0
        delay = worker.backoff_s or self._restart_backoff_s
        worker.backoff_s = min(self._max_backoff_s, delay * 2)
        if self._stop_event.wait(delay):
            return
        self._spawn(worker)
        worker.ready.wait(timeout=30.0)
        self._workers_g.set(self._live_count())

    def _live_count(self) -> int:
        with self._workers_lock:
            return sum(
                1
                for w in self._workers
                if w.process is not None and w.process.is_alive()
            )

    def worker_pids(self) -> list[int]:
        """PIDs of the currently-live workers (chaos tests kill these)."""
        with self._workers_lock:
            return [
                w.process.pid
                for w in self._workers
                if w.process is not None and w.process.is_alive()
            ]

    # -- RPC ----------------------------------------------------------------

    def _rpc(self, worker: _Worker, message: dict, timeout: float = 10.0):
        """One command-pipe round trip; ``None`` when the worker is gone
        or silent past the timeout (callers degrade, never hang)."""
        conn = worker.cmd
        if conn is None:
            return None
        with worker.cmd_lock:
            try:
                conn.send(message)
                if conn.poll(timeout):
                    return conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                return None
        return None

    def _ready_workers(self) -> list[_Worker]:
        with self._workers_lock:
            return [
                w
                for w in self._workers
                if w.process is not None
                and w.process.is_alive()
                and w.ready.is_set()
            ]

    def ping(self) -> list[int]:
        """PIDs of workers answering their command pipe right now."""
        pids = []
        for worker in self._ready_workers():
            reply = self._rpc(worker, {"op": "ping"}, timeout=5.0)
            if reply is not None and reply.get("ok"):
                pids.append(reply["pid"])
        return pids

    def describe(self) -> list[dict]:
        """Each live worker's view of itself (pid, default, versions)."""
        out = []
        for worker in self._ready_workers():
            reply = self._rpc(worker, {"op": "describe"}, timeout=5.0)
            if reply is not None and reply.get("ok"):
                reply.pop("ok")
                out.append({"index": worker.index, **reply})
        return out

    def chaos_counts(self) -> dict:
        """Summed per-version fault-plan counts across live workers."""
        total: dict = {}
        for worker in self._ready_workers():
            reply = self._rpc(worker, {"op": "chaos"}, timeout=5.0)
            if reply is None or not reply.get("ok"):
                continue
            for name, seams in reply["counts"].items():
                into = total.setdefault(name, {})
                for seam, counts in seams.items():
                    seam_into = into.setdefault(seam, {"fired": 0, "calls": 0})
                    seam_into["fired"] += counts.get("fired", 0)
                    seam_into["calls"] += counts.get("calls", 0)
        return total

    # -- two-phase hot swap -------------------------------------------------

    def activate(self, name: str) -> dict:
        """Fleet-wide two-phase default swap.

        Phase one *stages* ``name`` on every worker: each validates it
        knows the version, warms its store, and reports the store etag.
        Any failure — or any two workers staging **different** store
        bytes — aborts with every worker still on the old default.
        Phase two *commits*: each worker's registry performs its atomic
        pointer flip.  A commit RPC lost to a worker death is tolerated:
        the respawn comes up on the new default (recorded before the
        commit round exactly so crash-during-swap heals forward).
        """
        with self._swap_lock:
            workers = self._ready_workers()
            if not workers:
                self._swaps_aborted.inc()
                raise RuntimeError("no live workers to swap")
            staged = []
            for worker in workers:
                reply = self._rpc(worker, {"op": "stage", "name": name})
                if reply is None or not reply.get("ok"):
                    self._swaps_aborted.inc()
                    detail = (
                        "no reply" if reply is None else reply.get("error")
                    )
                    raise RuntimeError(
                        f"swap to {name!r} aborted: worker {worker.index} "
                        f"failed to stage ({detail}); default unchanged"
                    )
                staged.append(reply["desc"])
            etags = {desc["etag"] for desc in staged}
            if len(etags) != 1:
                self._swaps_aborted.inc()
                raise RuntimeError(
                    f"swap to {name!r} aborted: workers staged "
                    f"{len(etags)} distinct store builds; default unchanged"
                )
            self._default = name
            for worker in workers:
                reply = self._rpc(worker, {"op": "commit", "name": name})
                if reply is not None and not reply.get("ok"):
                    # A live worker refusing a version it just staged is
                    # a bug, not a transient — surface it loudly.
                    self._swaps_committed.inc()
                    raise RuntimeError(
                        f"worker {worker.index} failed to commit staged "
                        f"version {name!r}: {reply.get('error')}"
                    )
            self._swaps_committed.inc()
            return staged[0]

    # -- fleet metrics ------------------------------------------------------

    def _fleet_view(self) -> dict | None:
        """Merged ``export_state`` dumps for the whole pool, or ``None``
        when aggregation fails (workers then fall back to local views)."""
        service_states, process_states, labels = [], [], []
        for worker in self._ready_workers():
            reply = self._rpc(worker, {"op": "metrics"}, timeout=5.0)
            if reply is None or not reply.get("ok"):
                continue
            service_states.append(reply["service"])
            process_states.append(reply["process"])
            labels.append({"worker": worker.index})
        if not service_states:
            return None
        service_states.append(self.metrics.export_state())
        process_states.append(get_metrics().export_state())
        labels.append({"worker": "parent"})
        try:
            return {
                "service": merge_states(service_states, labels),
                "process": merge_states(process_states, labels),
                "workers": len(service_states) - 1,
            }
        except ValueError:  # pragma: no cover - defensive
            return None

    def fleet_metrics(self) -> dict | None:
        """The merged fleet view (what workers serve on ``GET /metrics``)."""
        return self._fleet_view()


# -- worker process ----------------------------------------------------------


def _worker_main(  # pragma: no cover - runs in forked subprocesses
    index: int,
    specs: list[WorkerVersionSpec],
    default_name: str,
    host: str,
    port: int,
    reuse_port: bool,
    listen_sock,
    resilience,
    cmd,
    evt,
) -> None:
    """One worker: mmap the stores, serve HTTP on daemon threads, answer
    parent RPCs on the main thread."""
    from repro.serve.http import AuditHTTPServer
    from repro.serve.registry import ModelRegistry
    from repro.serve.resilience import CircuitBreaker, chaos_plan
    from repro.serve.service import AuditService
    from repro.serve.store import ClaimScoreStore

    plans: dict = {}
    registry = ModelRegistry()
    for spec in specs:
        store = ClaimScoreStore.load_sharded(spec.path, mmap=True)
        plan = chaos_plan(spec.chaos_plan) if spec.chaos_plan else None
        if plan is not None:
            plans[spec.name] = plan
        breaker = (
            CircuitBreaker(**spec.breaker) if spec.breaker is not None else None
        )
        registry.add(spec.name, store, fault_plan=plan, breaker=breaker)
    registry.activate(default_name)
    service = AuditService.from_registry(registry)

    # The fleet-metrics upcall: HTTP handler threads funnel through one
    # lock so request/reply pairs on the event pipe never interleave.
    evt_lock = threading.Lock()

    def metrics_view() -> dict | None:
        with evt_lock:
            try:
                evt.send({"event": "metrics_request"})
                if evt.poll(5.0):
                    return evt.recv().get("view")
            except (EOFError, OSError):
                pass
            return None

    if reuse_port:
        server = AuditHTTPServer(
            (host, port),
            service,
            resilience=resilience,
            reuse_port=True,
            metrics_view=metrics_view,
        )
    else:
        server = AuditHTTPServer(
            (host, port),
            service,
            resilience=resilience,
            bind_and_activate=False,
            metrics_view=metrics_view,
        )
        server.adopt_socket(listen_sock)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    with evt_lock:
        evt.send(
            {"event": "ready", "pid": os.getpid(), "port": server.server_port}
        )
    try:
        while True:
            try:
                message = cmd.recv()
            except (EOFError, OSError):
                break
            op = message.get("op")
            try:
                if op == "ping":
                    reply = {"ok": True, "pid": os.getpid()}
                elif op == "stage":
                    reply = {
                        "ok": True,
                        "desc": registry.stage(message["name"]),
                    }
                elif op == "commit":
                    registry.activate(message["name"])
                    reply = {"ok": True, "default": registry.default_name}
                elif op == "metrics":
                    reply = {
                        "ok": True,
                        "service": registry.metrics.export_state(),
                        "process": get_metrics().export_state(),
                    }
                elif op == "chaos":
                    reply = {
                        "ok": True,
                        "counts": {
                            name: plan.counts() for name, plan in plans.items()
                        },
                    }
                elif op == "describe":
                    reply = {
                        "ok": True,
                        "pid": os.getpid(),
                        "default": registry.default_name,
                        "versions": registry.names(),
                    }
                elif op == "shutdown":
                    cmd.send({"ok": True})
                    break
                else:
                    reply = {"ok": False, "error": f"unknown op {op!r}"}
            except Exception as exc:
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                cmd.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        server.shutdown()
        server.server_close()
        service.close()
