"""Crowdsourced speed-test substrate (simulated): Ookla open-data tiles,
MLab NDT7 test rows, the IP-geolocation error model, and the directional
sample aggregation the enrichment layer builds truth maps from."""

from repro.speedtests.aggregate import (
    DirectionalSummary,
    directional_summary,
    valid_samples,
)
from repro.speedtests.geolocation import GeolocationEstimate, GeolocationModel
from repro.speedtests.mlab import MLabConfig, MLabTest, generate_mlab_tests
from repro.speedtests.ookla import OoklaConfig, generate_ookla_tiles

__all__ = [
    "DirectionalSummary",
    "directional_summary",
    "valid_samples",
    "GeolocationEstimate",
    "GeolocationModel",
    "MLabConfig",
    "MLabTest",
    "generate_mlab_tests",
    "OoklaConfig",
    "generate_ookla_tiles",
]
