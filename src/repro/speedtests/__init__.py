"""Crowdsourced speed-test substrate (simulated): Ookla open-data tiles,
MLab NDT7 test rows, and the IP-geolocation error model."""

from repro.speedtests.geolocation import GeolocationEstimate, GeolocationModel
from repro.speedtests.mlab import MLabConfig, MLabTest, generate_mlab_tests
from repro.speedtests.ookla import OoklaConfig, generate_ookla_tiles

__all__ = [
    "GeolocationEstimate",
    "GeolocationModel",
    "MLabConfig",
    "MLabTest",
    "generate_mlab_tests",
    "OoklaConfig",
    "generate_ookla_tiles",
]
