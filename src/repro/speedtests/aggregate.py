"""Directional speed-sample aggregation (the enrichment layer's kernel).

Measured-truth aggregation works per *direction*: a tile can carry
download samples, upload samples, both, or neither (e.g. every test from
a cell failed its upload leg, or a tier advertises no upload at all).
The paper-adjacent failure mode is silently coding an unmeasured
direction as ``0.0`` — a zero *measurement* means "measured and found
dead", which is the strongest possible overstatement evidence, while a
*missing* direction means "no evidence".  This module keeps the two
apart: an unmeasured direction aggregates to ``NaN`` (never a
divide-by-zero, never a fabricated ``0.0``), with the per-direction
sample count carried alongside so consumers can tell the cases apart
without sentinel comparisons.

Samples that are non-finite or non-positive are excluded before
aggregation: a throughput of ``0.0`` or below is a failed measurement
leg, not a speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DirectionalSummary", "directional_summary", "valid_samples"]

#: Upper quantile reported per direction (the truth-map "p90" columns).
_P90 = 0.9


@dataclass(frozen=True)
class DirectionalSummary:
    """Median/p90 aggregates of one tile's samples, per direction.

    Statistics of a direction with ``n_* == 0`` are ``NaN`` — explicit
    missing, distinct from a measured ``0.0``.
    """

    n_down: int
    median_down: float
    p90_down: float
    n_up: int
    median_up: float
    p90_up: float


def valid_samples(samples) -> np.ndarray:
    """Finite, positive samples as a float64 array (the measurable leg)."""
    arr = np.asarray(samples, dtype=np.float64).ravel()
    return arr[np.isfinite(arr) & (arr > 0.0)]


def _direction(samples) -> tuple[int, float, float]:
    arr = valid_samples(samples)
    if arr.size == 0:
        return 0, float("nan"), float("nan")
    return (
        int(arr.size),
        float(np.median(arr)),
        float(np.quantile(arr, _P90)),
    )


def directional_summary(down_mbps, up_mbps) -> DirectionalSummary:
    """Aggregate one tile's download/upload samples independently.

    Each direction that has at least one valid (finite, positive) sample
    yields its median and p90; a direction with none yields ``NaN``
    statistics and a zero count.  Down-only and up-only tiles are
    first-class — there is no shared denominator to divide by zero on.
    """
    n_down, median_down, p90_down = _direction(down_mbps)
    n_up, median_up, p90_up = _direction(up_mbps)
    return DirectionalSummary(
        n_down=n_down,
        median_down=median_down,
        p90_down=p90_down,
        n_up=n_up,
        median_up=median_up,
        p90_up=p90_up,
    )
