"""IP-geolocation error model for MLab tests.

MLab does not record user locations; it publishes an IP-geolocation
estimate with an *accuracy radius*.  The paper treats each test as "was run
somewhere within the accuracy radius of the estimate" and discards tests
with radii above 20 km.  This model reproduces those statistics: radii are
log-normal (median a few km, a heavy tail beyond 20 km), and the reported
point is displaced from the true location by a distance that is usually —
but not always — within the stated radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import destination_point

__all__ = ["GeolocationModel", "GeolocationEstimate"]


@dataclass(frozen=True)
class GeolocationEstimate:
    """An IP-geolocation fix: estimated point plus stated accuracy."""

    lat: float
    lng: float
    accuracy_radius_m: float


class GeolocationModel:
    """Draws geolocation estimates around true locations.

    Parameters
    ----------
    median_radius_m:
        Median stated accuracy radius.
    sigma:
        Log-normal shape parameter for the radius distribution.
    containment:
        Probability that the true location actually lies within the stated
        radius (commercial geolocation feeds overstate accuracy; a value
        slightly below 1 keeps the downstream intersection logic honest).
    """

    def __init__(
        self,
        median_radius_m: float = 4000.0,
        sigma: float = 0.9,
        containment: float = 0.92,
    ):
        if median_radius_m <= 0:
            raise ValueError("median_radius_m must be > 0")
        if not 0.0 < containment <= 1.0:
            raise ValueError("containment must be in (0, 1]")
        self.median_radius_m = median_radius_m
        self.sigma = sigma
        self.containment = containment

    def sample(
        self, rng: np.random.Generator, true_lat: float, true_lng: float
    ) -> GeolocationEstimate:
        """Draw one geolocation estimate for a test at a true location."""
        radius = float(
            np.exp(np.log(self.median_radius_m) + self.sigma * rng.standard_normal())
        )
        if rng.random() < self.containment:
            # Error uniform in the disk of the stated radius.
            error = radius * np.sqrt(rng.random())
        else:
            error = radius * float(rng.uniform(1.0, 2.5))
        bearing = float(rng.uniform(0.0, 360.0))
        lat, lng = destination_point(true_lat, true_lng, bearing, error)
        return GeolocationEstimate(lat=lat, lng=lng, accuracy_radius_m=radius)
