"""MLab NDT7 test rows (simulated).

Unlike Ookla's aggregated tiles, every NDT7 test is public as an individual
row carrying the client's ASN and an IP-geolocation estimate with an
accuracy radius.  The generative model: subscribers of a provider run NDT7
tests from truly-served locations; each test is stamped with one of the
provider's ASNs and a geolocation fix drawn from
:class:`~repro.speedtests.geolocation.GeolocationModel`.

Tests from providers with no ASN of their own (single-homed small ISPs)
appear under their upstream transit ASN — exactly the ambiguity the
paper's crosswalk has to live with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fcc.bdc import AvailabilityTable
from repro.fcc.fabric import Fabric
from repro.speedtests.geolocation import GeolocationModel
from repro.utils.rng import stream_rng

__all__ = ["MLabConfig", "MLabTest", "generate_mlab_tests"]


@dataclass(frozen=True)
class MLabTest:
    """One NDT7 test row (public fields only)."""

    test_id: int
    asn: int
    lat: float
    lng: float
    accuracy_radius_m: float
    download_mbps: float
    upload_mbps: float
    latency_ms: float


@dataclass(frozen=True)
class MLabConfig:
    """Knobs for the NDT7 generator."""

    #: Mean tests per truly-served BSL-claim over the window.
    tests_per_served_claim: float = 0.05
    #: Cap on tests per provider (the real dataset is long-tailed but the
    #: biggest eyeball networks dominate; this keeps generation bounded).
    max_tests_per_provider: int = 20000
    #: Fraction of advertised speed a typical NDT7 run achieves.
    achieved_speed_fraction: float = 0.5

    def validate(self) -> "MLabConfig":
        if self.tests_per_served_claim <= 0:
            raise ValueError("tests_per_served_claim must be > 0")
        return self


def generate_mlab_tests(
    fabric: Fabric,
    table: AvailabilityTable,
    provider_asns: dict[int, tuple[int, ...]],
    config: MLabConfig | None = None,
    geolocation: GeolocationModel | None = None,
    seed: int = 0,
) -> list[MLabTest]:
    """Generate NDT7 rows for providers with known ASN ownership.

    ``provider_asns`` is the *ground-truth* ownership map produced by the
    WHOIS registry simulator (providers without ASNs are absent or mapped
    to their transit ASN).
    """
    config = (config or MLabConfig()).validate()
    geolocation = geolocation or GeolocationModel()
    tests: list[MLabTest] = []
    test_id = 0
    served = table.truly_served

    for pid, asns in sorted(provider_asns.items()):
        if not asns:
            continue
        rng = stream_rng(seed, "mlab", pid)
        rows = np.where((table.provider_id == pid) & served)[0]
        if rows.size == 0:
            continue
        n_tests = min(
            int(rng.poisson(config.tests_per_served_claim * rows.size)),
            config.max_tests_per_provider,
        )
        if n_tests == 0:
            continue
        chosen = rng.choice(rows, size=n_tests, replace=True)
        for row in chosen:
            bsl = int(table.bsl_id[row])
            true_lat = float(fabric.lats[bsl])
            true_lng = float(fabric.lngs[bsl])
            fix = geolocation.sample(rng, true_lat, true_lng)
            advertised = float(table.max_download_mbps[row])
            down = advertised * config.achieved_speed_fraction * float(rng.uniform(0.4, 1.1))
            up = float(table.max_upload_mbps[row]) * config.achieved_speed_fraction * float(
                rng.uniform(0.4, 1.1)
            )
            latency = float(rng.uniform(8, 60))
            tests.append(
                MLabTest(
                    test_id=test_id,
                    asn=int(asns[int(rng.integers(len(asns)))]),
                    lat=fix.lat,
                    lng=fix.lng,
                    accuracy_radius_m=fix.accuracy_radius_m,
                    download_mbps=down,
                    upload_mbps=up,
                    latency_ms=latency,
                )
            )
            test_id += 1
    return tests
