"""Ookla Open Data Initiative (simulated): quarterly quadkey-tile aggregates.

Ookla's public dataset aggregates precise-GPS speed tests into zoom-16
Web Mercator tiles, reporting per-tile test counts, unique device counts,
mean throughputs, and mean latency — with no provider attribution.  The
generative model:

* tests originate at BSLs that are *truly served* by at least one
  terrestrial provider (people run speed tests on connections they have);
* participation is self-selected: per-location test intensity is Poisson,
  scaled up in denser (town) cells — matching the known urban skew of
  crowdsourced data;
* a small background of tests appears in unserved areas (mobile devices,
  satellite links), keeping the signal realistically imperfect;
* throughputs track advertised tiers with in-home degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fcc.bdc import AvailabilityTable
from repro.fcc.fabric import Fabric
from repro.geo import latlng_to_quadkey
from repro.geo.reproject import OoklaTileAggregate
from repro.utils.rng import stream_rng

__all__ = ["OoklaConfig", "generate_ookla_tiles"]


@dataclass(frozen=True)
class OoklaConfig:
    """Knobs for the Ookla open-data generator."""

    #: Mean devices running tests per truly-served BSL over the window.
    devices_per_served_bsl: float = 1.3
    #: Mean tests each participating device runs.
    tests_per_device: float = 2.2
    #: Mean devices per *unserved* BSL (mobile/satellite background noise).
    background_devices_per_bsl: float = 0.03
    #: Multiplier on participation in dense cells (urban skew).
    density_boost: float = 1.5
    #: BSL count per cell above which the density boost applies.
    density_threshold: int = 8
    #: Fraction of advertised speed a typical in-home test achieves.
    achieved_speed_fraction: float = 0.6

    def validate(self) -> "OoklaConfig":
        if self.devices_per_served_bsl <= 0:
            raise ValueError("devices_per_served_bsl must be > 0")
        if not 0 < self.achieved_speed_fraction <= 1:
            raise ValueError("achieved_speed_fraction must be in (0, 1]")
        return self


def _served_speed_by_bsl(table: AvailabilityTable) -> dict[int, float]:
    """Max advertised download (Mbps) among truly-served claims per BSL."""
    speeds: dict[int, float] = {}
    served = table.truly_served
    for row in np.where(served)[0]:
        bsl = int(table.bsl_id[row])
        speed = float(table.max_download_mbps[row])
        if speed > speeds.get(bsl, 0.0):
            speeds[bsl] = speed
    return speeds


def generate_ookla_tiles(
    fabric: Fabric,
    table: AvailabilityTable,
    config: OoklaConfig | None = None,
    seed: int = 0,
) -> list[OoklaTileAggregate]:
    """Generate one reporting window of Ookla tile aggregates."""
    config = (config or OoklaConfig()).validate()
    rng = stream_rng(seed, "ookla")
    served_speed = _served_speed_by_bsl(table)

    n = len(fabric)
    served_mask = np.zeros(n, dtype=bool)
    speed = np.zeros(n)
    for bsl, mbps in served_speed.items():
        served_mask[bsl] = True
        speed[bsl] = mbps

    # Per-cell density boost.
    cell_counts: dict[int, int] = {}
    for cell in fabric.occupied_cells:
        cell_counts[cell] = fabric.bsl_count_in_cell(cell)
    dense = np.array(
        [cell_counts[int(c)] >= config.density_threshold for c in fabric.cells]
    )

    lam = np.where(served_mask, config.devices_per_served_bsl, config.background_devices_per_bsl)
    lam = lam * np.where(dense, config.density_boost, 1.0)
    devices = rng.poisson(lam)
    active = np.where(devices > 0)[0]

    # Aggregate per quadkey tile.
    by_tile: dict[str, dict[str, float]] = {}
    for row in active:
        tile = latlng_to_quadkey(float(fabric.lats[row]), float(fabric.lngs[row]))
        tests = int(devices[row] + rng.poisson(config.tests_per_device * devices[row]))
        base = speed[row] if served_mask[row] else float(rng.uniform(5, 60))
        achieved_down = base * config.achieved_speed_fraction * float(rng.uniform(0.5, 1.2))
        achieved_up = achieved_down * float(rng.uniform(0.1, 0.8))
        latency = float(rng.uniform(8, 45)) if served_mask[row] else float(rng.uniform(30, 120))
        agg = by_tile.setdefault(
            tile, {"tests": 0.0, "devices": 0.0, "down": 0.0, "up": 0.0, "lat": 0.0}
        )
        weight = tests
        prev = agg["tests"]
        agg["tests"] += tests
        agg["devices"] += int(devices[row])
        # Running weighted means for throughput/latency.
        total = prev + weight
        if total > 0:
            agg["down"] += (achieved_down * 1000.0 - agg["down"]) * weight / total
            agg["up"] += (achieved_up * 1000.0 - agg["up"]) * weight / total
            agg["lat"] += (latency - agg["lat"]) * weight / total

    return [
        OoklaTileAggregate(
            quadkey=tile,
            tests=int(vals["tests"]),
            devices=int(vals["devices"]),
            avg_download_kbps=float(vals["down"]),
            avg_upload_kbps=float(vals["up"]),
            avg_latency_ms=float(vals["lat"]),
        )
        for tile, vals in sorted(by_tile.items())
    ]
