"""National-shard claim store: per-state mmap shards, streaming BDC
ingestion, and shard-parallel score-store builds.

==============================  ==============================================
Module                          Responsibility
==============================  ==============================================
:mod:`repro.store.sharded`      :class:`ShardedClaimColumns` — per-state
                                shards of the claim columns, persisted as
                                raw-mmap ``.npy`` files under a hashed,
                                crash-safe manifest
:mod:`repro.store.ingest`       streaming BDC-CSV ingestion with validation,
                                a rejected-rows sidecar, and exact
                                round-tripping
:mod:`repro.store.bundle`       world-detached feature-table bundles and
                                frozen-builder reconstruction for workers
:mod:`repro.store.parallel`     shard-parallel margin scoring across
                                ``multiprocessing`` workers
==============================  ==============================================

The subsystem's defining invariant — proven by the property-test layer
in ``tests/test_store_sharded.py`` — is that sharded build, lookup, and
pagination are *bitwise-identical* to the monolithic
:class:`~repro.serve.store.ClaimScoreStore` path.
"""

from repro.store.bundle import load_feature_tables, save_feature_tables
from repro.store.ingest import (
    BDC_CSV_FIELDS,
    IngestResult,
    ingest_csv,
    write_bdc_csv,
)
from repro.store.parallel import build_sharded_margins
from repro.store.sharded import SHARD_MANIFEST_NAME, ShardedClaimColumns

__all__ = [
    "BDC_CSV_FIELDS",
    "IngestResult",
    "SHARD_MANIFEST_NAME",
    "ShardedClaimColumns",
    "build_sharded_margins",
    "ingest_csv",
    "load_feature_tables",
    "save_feature_tables",
    "write_bdc_csv",
]
